//! Workload-consolidation study: how far can a host be oversubscribed
//! before each scheduling algorithm falls over?
//!
//! Cloud operators consolidate VMs onto fewer hosts to save energy and
//! cost (the paper's §I motivation). This example fixes a 4-PCPU host and
//! adds guests one at a time (alternating 3- and 2-VCPU VMs — a uniform
//! fleet of equal gangs would stay naturally lock-stepped under every
//! policy and hide the effect), measuring average VCPU utilization for
//! each algorithm — the knee of the curve is the practical consolidation
//! limit.
//!
//! ```sh
//! cargo run --release --example consolidation_study
//! ```

use vsched_core::{direct::DirectSim, PolicyKind, SystemConfig};

fn main() {
    let pcpus = 4;
    println!("host: {pcpus} PCPUs; guests: alternating 3/2-VCPU VMs, 1:5 sync ratio\n");
    println!(
        "{:<4} {:>12} {:>10} {:>10} {:>10}",
        "VMs", "VCPU:PCPU", "RRS", "SCS", "RCS"
    );
    for vms in 1..=6 {
        let sizes: Vec<usize> = (0..vms).map(|i| if i % 2 == 0 { 3 } else { 2 }).collect();
        let total: usize = sizes.iter().sum();
        let utils: Vec<f64> = PolicyKind::paper_trio()
            .iter()
            .map(|kind| {
                let mut b = SystemConfig::builder().pcpus(pcpus).sync_ratio(1, 5);
                for &n in &sizes {
                    b = b.vm(n);
                }
                let cfg = b.build().expect("valid config");
                let mut sim = DirectSim::new(cfg, kind.create(), 7 + vms as u64);
                sim.run(2_000).expect("warmup");
                sim.reset_metrics();
                sim.run(30_000).expect("measurement");
                sim.metrics().avg_vcpu_utilization()
            })
            .collect();
        println!(
            "{:<4} {:>12} {:>10.3} {:>10.3} {:>10.3}",
            vms,
            format!("{total}:{pcpus}"),
            utils[0],
            utils[1],
            utils[2],
        );
    }
    println!(
        "\nReading the table: below 1:1 oversubscription all algorithms are \
         equivalent;\npast it, co-scheduling holds VCPU utilization \
         (efficiency per guest) while\nround-robin pays growing \
         synchronization latency."
    );
}
