//! Mobius parity: "a model can be solved either analytically/numerically
//! or by simulation" (paper §II.A).
//!
//! This example exercises both solution paths of the SAN engine on a
//! Markovian model — an M/M/1/K queue — and cross-checks them against
//! each other and against the closed-form solution. The same machinery
//! validates the simulator that runs the (non-Markovian, clock-driven)
//! VCPU model.
//!
//! ```sh
//! cargo run --release --example markov_validation
//! ```

use vsched_des::Dist;
use vsched_san::{
    solve_steady_state, solve_transient, CtmcOptions, Model, ModelBuilder, Simulator,
};

/// M/M/1/K queue as a SAN: λ arrivals, μ services, capacity K.
fn mm1k(lambda: f64, mu: f64, k: i64) -> Model {
    let mut mb = ModelBuilder::new();
    let queue = mb.place("queue", 0).expect("fresh model");
    mb.activity("arrive")
        .expect("fresh model")
        .timed(Dist::exponential(1.0 / lambda).expect("positive mean"))
        .guard("capacity", move |m| m.tokens(queue) < k)
        .output_arc(queue, 1)
        .done()
        .expect("valid activity");
    mb.activity("serve")
        .expect("fresh model")
        .timed(Dist::exponential(1.0 / mu).expect("positive mean"))
        .input_arc(queue, 1)
        .done()
        .expect("valid activity");
    mb.build().expect("valid model")
}

fn main() {
    let (lambda, mu, k) = (1.0, 1.4, 8);
    let rho: f64 = lambda / mu;

    // Closed form: π_i ∝ ρ^i, L = Σ i π_i.
    let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
    let closed_l: f64 = (0..=k).map(|i| i as f64 * rho.powi(i as i32) / norm).sum();
    let closed_p_full = rho.powi(k as i32) / norm;

    // Numerical: CTMC steady state by uniformized power iteration.
    let mut model = mm1k(lambda, mu, k);
    let queue = model.place_by_name("queue").expect("place exists");
    let sol = solve_steady_state(&mut model, CtmcOptions::default()).expect("Markovian model");
    let numerical_l = sol.expected_reward(|m| m.tokens(queue) as f64);
    let numerical_p_full = sol.probability_where(|m| m.tokens(queue) == k);

    // Simulation: the same model on the discrete-event simulator.
    let mut sim = Simulator::new(mm1k(lambda, mu, k), 2024);
    let l_reward = sim.add_rate_reward("L", move |m| m.tokens(queue) as f64);
    let full_reward = sim.add_rate_reward("full", move |m| f64::from(m.tokens(queue) == k));
    sim.run_until(5_000.0).expect("warmup");
    sim.reset_rewards();
    sim.run_until(500_000.0).expect("measurement");
    let simulated_l = sim.rate_reward_average(l_reward);
    let simulated_p_full = sim.rate_reward_average(full_reward);

    println!("M/M/1/{k} queue, λ = {lambda}, μ = {mu} (ρ = {rho:.3})\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "", "closed form", "numerical", "simulation"
    );
    println!(
        "{:<28} {:>12.5} {:>12.5} {:>12.5}",
        "mean number in system L", closed_l, numerical_l, simulated_l
    );
    println!(
        "{:<28} {:>12.5} {:>12.5} {:>12.5}",
        "blocking probability P(K)", closed_p_full, numerical_p_full, simulated_p_full
    );
    println!(
        "\nstate space: {} tangible states, {} power iterations (converged: {})",
        sol.num_states(),
        sol.iterations(),
        sol.converged()
    );

    // Transient: approach to steady state.
    println!("\ntransient E[N(t)] by uniformization:");
    for &t in &[1.0, 5.0, 20.0, 100.0] {
        let mut m = mm1k(lambda, mu, k);
        let tr = solve_transient(&mut m, t, CtmcOptions::default()).expect("Markovian model");
        println!(
            "  t = {t:>5}: {:.5}",
            tr.expected_reward(|mk| mk.tokens(queue) as f64)
        );
    }
    println!("  t →   ∞: {numerical_l:.5}");
}
