//! Quickstart: assemble a virtualization system, pick a scheduling
//! algorithm, run a replicated experiment, read the three paper metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 8 topology: one 2-VCPU VM and two 1-VCPU VMs,
    // synchronization ratio 1:5, here with 2 physical CPUs.
    let config = SystemConfig::builder()
        .pcpus(2)
        .vm(2)
        .vm(1)
        .vm(1)
        .sync_ratio(1, 5)
        .timeslice(10)
        .build()?;

    println!("system: {}", config.describe());
    println!("running the three algorithms the paper evaluates…\n");

    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>12}",
        "policy", "reps", "VCPU avail", "VCPU util", "PCPU util"
    );
    for policy in PolicyKind::paper_trio() {
        let report = ExperimentBuilder::new(config.clone(), policy.clone())
            .engine(Engine::San) // the paper's SAN-based engine
            .warmup(1_000)
            .horizon(10_000)
            .run()?; // replicates until 95% CIs are < 0.1 wide
        println!(
            "{:<6} {:>6} {:>12.3} {:>12.3} {:>12.3}",
            policy.label(),
            report.replications,
            report.avg_vcpu_availability(),
            report.avg_vcpu_utilization(),
            report.avg_pcpu_utilization(),
        );
    }

    println!("\nper-VCPU availability under round-robin (fairness check):");
    let report = ExperimentBuilder::new(config.clone(), PolicyKind::RoundRobin)
        .engine(Engine::San)
        .warmup(1_000)
        .horizon(10_000)
        .run()?;
    for (id, ci) in config.vcpu_ids().iter().zip(&report.vcpu_availability) {
        println!("  {id}: {ci}");
    }
    Ok(())
}
