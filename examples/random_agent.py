#!/usr/bin/env python3
"""Random agent for the vsched-env JSON-lines protocol.

Spawned by `vsched tournament --agent` or `vsched env --agent`: reads the
environment's hello on stdin, replies with its own, then answers every
observation with a random legal decision — each unassigned ("Inactive")
VCPU may be placed on at most one idle PCPU. Seeded for reproducibility.

Usage:  vsched env configs/fig8_fairness.json --agent examples/random_agent.py
"""
import json
import random
import sys


def say(msg):
    sys.stdout.write(json.dumps(msg) + "\n")
    sys.stdout.flush()


json.loads(sys.stdin.readline())["hello"]  # env speaks first
say({"hello": {"proto": 1, "role": "agent", "name": "py-random",
               "fields": ["remaining_load"]}})
rng = random.Random(2013)

for line in sys.stdin:
    msg = json.loads(line)
    if msg == "bye" or "error" in msg:
        break
    obs = msg["obs"]
    if obs["done"]:
        continue  # terminal observation; wait for the trailing "bye"
    o = obs["observation"]
    runnable = [v["id"]["global"] for v in o["vcpus"] if v["status"] == "Inactive"]
    idle = [p["id"] for p in o["pcpus"] if p["assigned"] is None]
    rng.shuffle(runnable)
    say({"act": {"preemptions": [],
                 "assignments": [{"vcpu": v, "pcpu": p,
                                  "timeslice": o["default_timeslice"]}
                                 for v, p in zip(runnable, idle)]}})
