//! Plugging in a user-defined VCPU scheduling algorithm — the framework's
//! headline feature (the paper's C function-call interface, §III.B.5).
//!
//! This example implements a **barrier-draining** policy: when a VM is
//! blocked on a synchronization point (some sibling carries a sync-point
//! job), every preempted VCPU of that VM that still has outstanding work
//! is scheduled first, shortest remaining work first — the barrier clears
//! only when *all* outstanding jobs finish, so the whole blocked set is
//! fast-tracked, not just the lock holder. Everything else falls back to
//! round-robin.
//!
//! ```sh
//! cargo run --example custom_scheduler
//! ```

use vsched_core::{
    direct::DirectSim, PcpuView, PolicyKind, ScheduleDecision, SchedulingPolicy, SystemConfig,
    VcpuView,
};

/// Fast-tracks the outstanding jobs of barrier-blocked VMs, falling back
/// to round-robin order for everything else.
#[derive(Debug, Default)]
struct BarrierDrain {
    cursor: usize,
}

impl SchedulingPolicy for BarrierDrain {
    fn name(&self) -> &str {
        "barrier-drain"
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let mut idle: Vec<usize> = pcpus.iter().filter(|p| p.is_idle()).map(|p| p.id).collect();
        idle.reverse(); // pop() yields lowest index first
        let n = vcpus.len();
        if n == 0 {
            return decision;
        }

        // Pass 1: a VM with a sync-point job in flight is blocked at a
        // barrier; fast-track every preempted sibling with outstanding
        // work, shortest job first.
        let num_vms = vcpus.iter().map(|v| v.id.vm + 1).max().unwrap_or(0);
        let mut vm_blocked = vec![false; num_vms];
        for v in vcpus {
            if v.sync_point && v.remaining_load > 0 {
                vm_blocked[v.id.vm] = true;
            }
        }
        let mut urgent: Vec<&VcpuView> = vcpus
            .iter()
            .filter(|v| v.is_schedulable() && v.remaining_load > 0 && vm_blocked[v.id.vm])
            .collect();
        urgent.sort_by_key(|v| v.remaining_load);
        for v in urgent {
            let Some(p) = idle.pop() else {
                return decision;
            };
            // Grant exactly the remaining work (+1 tick of slack): the
            // PCPU frees the moment the job is done instead of idling
            // READY behind the barrier for the rest of a full slice.
            decision.assign(v.id.global, p, (v.remaining_load + 1).min(timeslice));
        }

        // Pass 2: everyone else, round-robin.
        for offset in 0..n {
            let g = (self.cursor + offset) % n;
            let v = &vcpus[g];
            let already = decision.assignments.iter().any(|a| a.vcpu == g);
            if !v.is_schedulable() || already {
                continue;
            }
            let Some(p) = idle.pop() else { break };
            decision.assign(g, p, timeslice);
            self.cursor = (g + 1) % n;
        }
        decision
    }
}

fn config() -> SystemConfig {
    // Oversubscribed and sync-heavy: 2+4 VCPUs on 4 PCPUs, 1:3 sync ratio.
    SystemConfig::builder()
        .pcpus(4)
        .vm(2)
        .vm(4)
        .sync_ratio(1, 3)
        .build()
        .expect("static config is valid")
}

fn run(policy: Box<dyn SchedulingPolicy>, label: &str) {
    let mut sim = DirectSim::new(config(), policy, 42);
    sim.run(2_000).expect("warmup");
    sim.reset_metrics();
    sim.run(50_000).expect("measurement");
    let m = sim.metrics();
    println!(
        "{label:<18} VCPU util {:.3}   PCPU util {:.3}   VCPU avail {:.3}",
        m.avg_vcpu_utilization(),
        m.avg_pcpu_utilization(),
        m.avg_vcpu_availability(),
    );
}

fn main() {
    println!("sync-heavy workload (1:3), 2+4 VCPUs on 4 PCPUs\n");
    run(PolicyKind::RoundRobin.create(), "round-robin");
    run(PolicyKind::StrictCo.create(), "strict co-sched");
    run(
        PolicyKind::relaxed_co_default().create(),
        "relaxed co-sched",
    );
    run(Box::new(BarrierDrain::default()), "barrier-drain");
    println!(
        "\nThe custom policy attacks the same synchronization latency the \
         co-schedulers do,\nbut by *draining* blocked VMs' outstanding work \
         with work-sized timeslices instead\nof gang-scheduling around it — \
         and on this workload it beats all three paper\nalgorithms while \
         keeping full PCPU utilization and RRS-level fairness. That is\nthe \
         point of the framework: a new idea, evaluated in milliseconds \
         through the\nsame one-trait interface the paper's C functions \
         provide."
    );
}
