//! Tick-level timelines: *watching* each scheduling algorithm work.
//!
//! Aggregate metrics say who wins; the Gantt view shows why. This example
//! traces 60 ticks of the oversubscribed Figure 10 setup (2+4 VCPUs on 4
//! PCPUs, sync 1:3) under each of the paper's algorithms and renders the
//! per-VCPU lanes.
//!
//! Legend: `.` descheduled · `r` READY (scheduled, idle — the wasted time
//! Figure 10 measures) · `#` BUSY · `S` BUSY on a synchronization job.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use vsched_core::{direct::DirectSim, PolicyKind, SystemConfig};

fn main() {
    let cfg = || {
        SystemConfig::builder()
            .pcpus(4)
            .vm(2)
            .vm(4)
            .sync_ratio(1, 3)
            .timeslice(12)
            .build()
            .expect("valid config")
    };
    println!("2+4 VCPUs on 4 PCPUs, sync 1:3, timeslice 12 — ticks 200..260\n");
    println!("legend: . descheduled   r ready/idle   # busy   S busy on sync job\n");
    for kind in PolicyKind::paper_trio() {
        let mut sim = DirectSim::new(cfg(), kind.create(), 404);
        // Trace from the start so the Gantt replay has complete state
        // history, then render only the steady-state window.
        sim.enable_trace(100_000);
        sim.run(260).expect("traced run");
        let trace = sim.take_trace().expect("trace enabled");
        println!("--- {} ---", kind.label());
        // VCPUs 0-1 form the 2-VCPU VM; 2-5 the 4-VCPU VM.
        print!("{}", trace.render_gantt(6, 200, 260));
        let m = sim.metrics();
        println!(
            "(window metrics: VCPU util {:.3}, PCPU util {:.3})\n",
            m.avg_vcpu_utilization(),
            m.avg_pcpu_utilization()
        );
    }
    println!(
        "Things to look for: under RRS, 'r' runs appear behind descheduled \
         sync jobs\n(siblings idling at a barrier while the holder waits for \
         its turn); under SCS,\nVMs occupy PCPUs in solid blocks (and VM 2's \
         four lanes move in lockstep);\nunder RCS, leaders get cut short \
         ('#' runs ending before the slice) so laggards\ncatch up."
    );
}
