//! Synchronization-latency anatomy: watching the VCPU-stacking /
//! preempted-lock-holder problem happen, tick by tick.
//!
//! The paper's §II.B explains *why* round-robin hurts SMP VMs: the VCPU
//! scheduler, unaware of guest-side critical sections (the "semantic
//! gap"), preempts a VCPU mid-critical-section; its siblings then spin at
//! the barrier until the holder is rescheduled. This example instruments a
//! single SMP VM and reports how long barriers stay blocked under each
//! algorithm, and how that shrinks as the sync ratio is relaxed.
//!
//! ```sh
//! cargo run --release --example smp_sync_latency
//! ```

use vsched_core::{direct::DirectSim, PolicyKind, SystemConfig};
use vsched_stats::P2Quantile;

/// Measures mean and P95 blocked-streak length (in ticks) of VM 0 and its
/// VCPU utilization.
fn measure(kind: &PolicyKind, sync: (u32, u32), seed: u64) -> (f64, f64, f64) {
    let cfg = SystemConfig::builder()
        .pcpus(4)
        .vm(2) // the SMP VM under observation
        .vm(4) // a noisy neighbour oversubscribing the host
        .sync_ratio(sync.0, sync.1)
        .build()
        .expect("valid config");
    let mut sim = DirectSim::new(cfg, kind.create(), seed);
    sim.run(2_000).expect("warmup");
    sim.reset_metrics();

    let mut streaks = Vec::new();
    let mut p95 = P2Quantile::new(0.95).expect("valid quantile");
    let mut current = 0u64;
    for _ in 0..30_000 {
        sim.tick().expect("tick");
        if sim.vm_blocked(0) {
            current += 1;
        } else if current > 0 {
            streaks.push(current);
            p95.push(current as f64);
            current = 0;
        }
    }
    let mean_streak = if streaks.is_empty() {
        0.0
    } else {
        streaks.iter().sum::<u64>() as f64 / streaks.len() as f64
    };
    let util = sim.metrics().avg_vcpu_utilization();
    (mean_streak, p95.estimate().unwrap_or(0.0), util)
}

fn main() {
    println!("SMP VM (2 VCPUs) + neighbour (4 VCPUs) on 4 PCPUs\n");
    for sync in [(1u32, 5u32), (1, 3), (1, 2)] {
        println!("sync ratio {}:{}", sync.0, sync.1);
        println!(
            "  {:<18} {:>22} {:>14} {:>12}",
            "policy", "mean barrier (ticks)", "P95 barrier", "VCPU util"
        );
        for kind in PolicyKind::paper_trio() {
            let (streak, p95, util) = measure(&kind, sync, 99);
            println!(
                "  {:<18} {:>22.1} {:>14.1} {:>12.3}",
                kind.label(),
                streak,
                p95,
                util
            );
        }
        println!();
    }
    println!(
        "Reading the table: RCS resolves barriers fastest in wall-clock time \
         (co-stop parks\nthe waiters and fast-tracks the lagging holder). SCS \
         shows the *longest* wall-clock\nbarrier residence — a barrier freezes \
         whenever the whole gang is descheduled — yet\nthe highest VCPU \
         utilization, because frozen waiters are INACTIVE, not burning\ntheir \
         scheduled time. RRS is the worst of both: its barriers stay resident \
         while\nwaiters spin READY behind a preempted lock holder."
    );
}
