//! The raw trace vocabulary: timestamped VM lifecycle events.
//!
//! A trace is a header ([`TraceMeta`]) plus a time-ordered stream of
//! [`RawEvent`]s. Each event carries **exactly one** action — an arrival
//! (with the VM's shape), a departure, or a load-level change. The
//! stream is validated and compiled into a
//! [`crate::schedule::TraceSchedule`] before anything touches an engine.

use serde::{Deserialize, Serialize};
use vsched_core::{CoreError, DistSpec, SyncMechanismSpec, VmSpec, WorkloadSpec};

use crate::load::LoadModel;

/// Trace-wide parameters: the physical platform and workload defaults
/// that arrival records may override per VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceMeta {
    /// Number of physical CPUs.
    pub pcpus: usize,
    /// Scheduler timeslice in ticks (default 30, as in the paper).
    #[serde(default = "default_timeslice")]
    pub timeslice: u64,
    /// Default job-load distribution for VMs that do not specify one
    /// (default: the paper's uniform `[5, 15)`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load: Option<DistSpec>,
    /// Default synchronization probability (default 0.2, the 1:5 ratio).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_probability: Option<f64>,
}

fn default_timeslice() -> u64 {
    30
}

impl TraceMeta {
    /// A meta block with `pcpus` PCPUs and paper-default everything else.
    #[must_use]
    pub fn new(pcpus: usize) -> Self {
        TraceMeta {
            pcpus,
            timeslice: default_timeslice(),
            load: None,
            sync_probability: None,
        }
    }

    /// The workload defaults this meta block implies.
    ///
    /// # Errors
    ///
    /// [`CoreError::Des`] if the default load distribution is invalid.
    pub fn default_workload(&self) -> Result<WorkloadSpec, CoreError> {
        let mut w = WorkloadSpec::paper_default();
        if let Some(spec) = &self.load {
            w.load = spec.to_dist()?;
        }
        if let Some(p) = self.sync_probability {
            w.sync_probability = p;
        }
        Ok(w)
    }
}

/// The shape of an arriving VM: topology plus workload characterization.
///
/// Everything except `vcpus` is optional and falls back to the trace's
/// [`TraceMeta`] defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VmShape {
    /// Number of VCPUs.
    pub vcpus: usize,
    /// Proportional-share weight (default 1).
    #[serde(default = "default_weight")]
    pub weight: u32,
    /// Job-load distribution override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load: Option<DistSpec>,
    /// Synchronization-probability override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_probability: Option<f64>,
    /// Deterministic sync pattern: every `k`-th workload synchronizes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_every: Option<u32>,
    /// Synchronization mechanism override (barrier or spinlock).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_mechanism: Option<SyncMechanismSpec>,
    /// Interarrival distribution; omitted means a saturated generator.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interarrival: Option<DistSpec>,
    /// How the VM's demand varies over its lifetime (default: constant
    /// full demand).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load_model: Option<LoadModel>,
}

fn default_weight() -> u32 {
    1
}

impl VmShape {
    /// A shape with `vcpus` VCPUs and all defaults.
    #[must_use]
    pub fn new(vcpus: usize) -> Self {
        VmShape {
            vcpus,
            weight: default_weight(),
            load: None,
            sync_probability: None,
            sync_every: None,
            sync_mechanism: None,
            interarrival: None,
            load_model: None,
        }
    }

    /// Resolves this shape against the trace defaults into a kernel
    /// [`VmSpec`].
    ///
    /// # Errors
    ///
    /// [`CoreError`] for invalid distribution parameters or a zero
    /// `sync_every`.
    pub fn to_vm_spec(&self, meta: &TraceMeta) -> Result<VmSpec, CoreError> {
        let mut w = meta.default_workload()?;
        if let Some(spec) = &self.load {
            w.load = spec.to_dist()?;
        }
        if let Some(p) = self.sync_probability {
            w.sync_probability = p;
        }
        if let Some(k) = self.sync_every {
            w = w.with_sync_every(k)?;
        }
        if let Some(m) = self.sync_mechanism {
            w.sync_mechanism = m.to_mechanism();
        }
        if let Some(spec) = &self.interarrival {
            w.interarrival = Some(spec.to_dist()?);
        }
        Ok(VmSpec {
            vcpus: self.vcpus,
            workload: w,
            weight: self.weight,
        })
    }
}

/// One line of a trace: a timestamped action on a named VM.
///
/// Exactly one of `arrive`, `set_load`, `depart` must be present —
/// enforced by [`RawEvent::validate`], not serde, so the error can carry
/// the file position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RawEvent {
    /// Tick at which the event takes effect (event boundary).
    pub time: u64,
    /// The VM's stable name within the trace.
    pub vm: String,
    /// The VM arrives with this shape.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub arrive: Option<VmShape>,
    /// The VM's demand changes to this per-mille level.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub set_load: Option<u32>,
    /// The VM departs (`true` is the only meaningful value; present for
    /// JSON spelling symmetry).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub depart: Option<bool>,
}

impl RawEvent {
    /// An arrival event.
    #[must_use]
    pub fn arrive(time: u64, vm: impl Into<String>, shape: VmShape) -> Self {
        RawEvent {
            time,
            vm: vm.into(),
            arrive: Some(shape),
            set_load: None,
            depart: None,
        }
    }

    /// A departure event.
    #[must_use]
    pub fn depart(time: u64, vm: impl Into<String>) -> Self {
        RawEvent {
            time,
            vm: vm.into(),
            arrive: None,
            set_load: None,
            depart: Some(true),
        }
    }

    /// A load-level change event.
    #[must_use]
    pub fn set_load(time: u64, vm: impl Into<String>, level: u32) -> Self {
        RawEvent {
            time,
            vm: vm.into(),
            arrive: None,
            set_load: Some(level),
            depart: None,
        }
    }

    /// Checks the exactly-one-action rule; returns the offending reason.
    ///
    /// # Errors
    ///
    /// A human-readable reason when zero or multiple actions are set, the
    /// VM name is empty, or `depart` is spelled `false`.
    pub fn validate(&self) -> Result<(), String> {
        let actions = usize::from(self.arrive.is_some())
            + usize::from(self.set_load.is_some())
            + usize::from(self.depart.is_some());
        if actions != 1 {
            return Err(format!(
                "event must have exactly one of arrive/set_load/depart, got {actions}"
            ));
        }
        if self.vm.is_empty() {
            return Err("event has an empty VM name".into());
        }
        if self.depart == Some(false) {
            return Err("`depart: false` is meaningless; omit the field".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_action() {
        assert!(RawEvent::arrive(0, "a", VmShape::new(1)).validate().is_ok());
        assert!(RawEvent::depart(5, "a").validate().is_ok());
        assert!(RawEvent::set_load(5, "a", 500).validate().is_ok());

        let mut both = RawEvent::depart(5, "a");
        both.set_load = Some(1);
        assert!(both.validate().is_err());

        let none = RawEvent {
            time: 0,
            vm: "a".into(),
            arrive: None,
            set_load: None,
            depart: None,
        };
        assert!(none.validate().is_err());
        assert!(RawEvent::depart(0, "").validate().is_err());

        let mut f = RawEvent::depart(0, "a");
        f.depart = Some(false);
        assert!(f.validate().is_err());
    }

    #[test]
    fn shape_resolves_defaults_and_overrides() {
        let meta = TraceMeta::new(4);
        let spec = VmShape::new(2).to_vm_spec(&meta).unwrap();
        assert_eq!(spec.vcpus, 2);
        assert_eq!(spec.weight, 1);
        assert!((spec.workload.sync_probability - 0.2).abs() < 1e-12);
        assert!(spec.workload.interarrival.is_none());

        let mut meta = TraceMeta::new(4);
        meta.sync_probability = Some(0.5);
        meta.load = Some(DistSpec::Deterministic { value: 8.0 });
        let mut shape = VmShape::new(1);
        shape.sync_probability = Some(0.1);
        let spec = shape.to_vm_spec(&meta).unwrap();
        assert!((spec.workload.sync_probability - 0.1).abs() < 1e-12);
        assert_eq!(spec.workload.load.mean(), 8.0);
    }

    #[test]
    fn event_json_round_trip() {
        let e = RawEvent::arrive(10, "web-1", VmShape::new(2));
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(
            json,
            r#"{"time":10,"vm":"web-1","arrive":{"vcpus":2,"weight":1}}"#
        );
        let back: RawEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
