//! Executing a compiled trace on either engine.
//!
//! [`TraceExperiment`] mirrors `vsched_core::ExperimentBuilder` for
//! trace-driven runs: replication `r` uses `seed + r`, builds the union
//! topology on the chosen engine (the SAN engine in its *dynamic* build
//! mode), retires every VM that is not present at tick 0, applies the
//! initial load levels, then runs the horizon in segments split at every
//! event boundary. At a boundary the metrics reset (if it is the warmup
//! boundary) happens first, then that instant's events apply in compiled
//! order. Replications run in parallel via `vsched-exec` and merge in
//! index order, so results are bit-identical at any `--jobs` — the
//! [`TraceReport::fingerprint`] makes that checkable from the CLI.

use vsched_core::direct::DirectSim;
use vsched_core::san_model::SanSystem;
use vsched_core::{CoreError, Engine, MetricsReport, PolicyKind, SampleMetrics, ShardMode};
use vsched_stats::ConfidenceInterval;

use crate::load::FULL_LEVEL;
use crate::schedule::{TraceAction, TraceSchedule};

/// Configures and runs a replicated trace-driven experiment.
#[derive(Debug, Clone)]
pub struct TraceExperiment {
    schedule: TraceSchedule,
    policy: PolicyKind,
    engine: Engine,
    warmup: u64,
    horizon: u64,
    seed: u64,
    replications: usize,
    parallel: bool,
    jobs: Option<usize>,
    shard_mode: ShardMode,
}

/// The result of a trace run: one [`SampleMetrics`] per replication plus
/// a fingerprint of every observation bit.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-replication metrics, in replication order.
    pub samples: Vec<SampleMetrics>,
    /// FNV-1a 64 over the IEEE-754 bits of every observation, in order.
    /// Equal fingerprints mean bit-identical runs.
    pub fingerprint: u64,
}

impl TraceReport {
    /// Mean of each observation column across replications.
    #[must_use]
    pub fn mean_observations(&self) -> Vec<f64> {
        let Some(first) = self.samples.first() else {
            return Vec::new();
        };
        let mut sums = first.to_observations();
        for s in &self.samples[1..] {
            for (a, x) in sums.iter_mut().zip(s.to_observations()) {
                *a += x;
            }
        }
        let n = self.samples.len() as f64;
        for a in &mut sums {
            *a /= n;
        }
        sums
    }

    /// Aggregates the per-replication samples into the same
    /// [`MetricsReport`] shape static experiments produce — confidence
    /// intervals per metric at `level` — so trace results flow through
    /// every existing renderer and the campaign result store unchanged.
    ///
    /// `num_vcpus`/`num_pcpus` come from the schedule's union topology
    /// ([`crate::TraceSchedule::config`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Stats`] with fewer than 2 replications (no interval).
    pub fn metrics_report(
        &self,
        num_vcpus: usize,
        num_pcpus: usize,
        level: f64,
    ) -> Result<MetricsReport, CoreError> {
        let arity = self
            .samples
            .first()
            .map_or(0, |s| s.to_observations().len());
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(self.samples.len()); arity];
        for s in &self.samples {
            for (c, x) in columns.iter_mut().zip(s.to_observations()) {
                c.push(x);
            }
        }
        let intervals: Vec<ConfidenceInterval> = columns
            .iter()
            .map(|c| ConfidenceInterval::from_samples(c, level))
            .collect::<Result<_, _>>()?;
        Ok(MetricsReport::from_intervals(
            intervals,
            num_vcpus,
            num_pcpus,
            self.samples.len(),
        ))
    }

    /// Mean PCPU utilization across replications and PCPUs.
    #[must_use]
    pub fn avg_pcpu_utilization(&self) -> f64 {
        let n = self.samples.len();
        self.samples
            .iter()
            .map(SampleMetrics::avg_pcpu_utilization)
            .sum::<f64>()
            / n.max(1) as f64
    }

    /// Mean VCPU availability across replications and VCPUs.
    #[must_use]
    pub fn avg_vcpu_availability(&self) -> f64 {
        let n = self.samples.len();
        self.samples
            .iter()
            .map(SampleMetrics::avg_vcpu_availability)
            .sum::<f64>()
            / n.max(1) as f64
    }
}

/// FNV-1a 64 over a byte stream (tiny, dependency-free).
fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Exec {
    Direct(Box<DirectSim>),
    San(Box<SanSystem>),
}

impl Exec {
    fn run(&mut self, ticks: u64) -> Result<(), CoreError> {
        match self {
            Exec::Direct(sim) => sim.run(ticks),
            Exec::San(sys) => sys.run(ticks),
        }
    }

    fn reset_metrics(&mut self) {
        match self {
            Exec::Direct(sim) => sim.reset_metrics(),
            Exec::San(sys) => sys.reset_metrics(),
        }
    }

    fn set_admitted(&mut self, vm: usize, admitted: bool) {
        match self {
            Exec::Direct(sim) => sim.set_admitted(vm, admitted),
            Exec::San(sys) => sys.set_admitted(vm, admitted),
        }
    }

    fn set_load_level(&mut self, vm: usize, level: u32) {
        match self {
            Exec::Direct(sim) => sim.set_load_level(vm, level),
            Exec::San(sys) => sys.set_load_level(vm, level),
        }
    }

    fn metrics(&self) -> SampleMetrics {
        match self {
            Exec::Direct(sim) => sim.metrics(),
            Exec::San(sys) => sys.metrics(),
        }
    }
}

impl TraceExperiment {
    /// Starts a trace experiment with no warmup, a horizon reaching
    /// 1 000 ticks past the last event, seed `0x5eed`, and 3
    /// replications.
    #[must_use]
    pub fn new(schedule: TraceSchedule, policy: PolicyKind) -> Self {
        let horizon = schedule.end_time() + 1_000;
        TraceExperiment {
            schedule,
            policy,
            engine: Engine::San,
            warmup: 0,
            horizon,
            seed: 0x5eed,
            replications: 3,
            parallel: true,
            jobs: None,
            shard_mode: ShardMode::Off,
        }
    }

    /// The compiled schedule this experiment runs.
    #[must_use]
    pub fn schedule(&self) -> &TraceSchedule {
        &self.schedule
    }

    /// Selects the execution engine (default [`Engine::San`]).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Warm-up ticks discarded from metrics. The trace clock is
    /// absolute — events during warmup still apply; only the metric
    /// accumulators reset at the boundary.
    #[must_use]
    pub fn warmup(mut self, ticks: u64) -> Self {
        self.warmup = ticks;
        self
    }

    /// Observed ticks after warmup (default: last event + 1 000).
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Base seed; replication `r` uses `seed + r`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of replications (default 3, minimum 1).
    #[must_use]
    pub fn replications(mut self, n: usize) -> Self {
        self.replications = n;
        self
    }

    /// Enables/disables parallel replications (default enabled;
    /// bit-identical either way).
    #[must_use]
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Caps the replication worker pool (`0` = one per core).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { None } else { Some(jobs) };
        self
    }

    /// Intra-replication SAN shard count (`0`/`1` sequential; ignored by
    /// the Direct engine). Shorthand for [`TraceExperiment::shard_mode`]
    /// with [`ShardMode::Fixed`].
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shard_mode = if shards >= 2 {
            ShardMode::Fixed(shards)
        } else {
            ShardMode::Off
        };
        self
    }

    /// Intra-replication SAN engine selection policy (ignored by the
    /// Direct engine). [`ShardMode::Auto`] lets each replication pick the
    /// engine per model and host — bit-identical results either way.
    #[must_use]
    pub fn shard_mode(mut self, mode: ShardMode) -> Self {
        self.shard_mode = mode;
        self
    }

    fn build_exec(&self, seed: u64) -> Result<Exec, CoreError> {
        let config = self.schedule.config().clone();
        Ok(match self.engine {
            Engine::Direct => {
                Exec::Direct(Box::new(DirectSim::new(config, self.policy.create(), seed)))
            }
            Engine::San => {
                let mut sys = SanSystem::new_dynamic(config, self.policy.create(), seed)?;
                if self.shard_mode != ShardMode::Off {
                    sys.set_shard_mode(self.shard_mode);
                }
                Exec::San(Box::new(sys))
            }
        })
    }

    /// Runs one replication and returns its metrics.
    ///
    /// # Errors
    ///
    /// Engine errors (policy violations, SAN failures) and
    /// [`CoreError::InvalidConfig`] for a zero horizon.
    pub fn run_replication(&self, rep: u64) -> Result<SampleMetrics, CoreError> {
        if self.horizon == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "trace horizon must be at least one tick".into(),
            });
        }
        let mut exec = self.build_exec(self.seed.wrapping_add(rep))?;

        // Initial state: retire absent VMs, set non-default levels.
        for (vm, &present) in self.schedule.initially_present().iter().enumerate() {
            if !present {
                exec.set_admitted(vm, false);
            }
        }
        for (vm, &level) in self.schedule.initial_levels().iter().enumerate() {
            if level != FULL_LEVEL {
                exec.set_load_level(vm, level);
            }
        }

        let total = self.warmup + self.horizon;
        let events = self.schedule.events();
        let mut boundaries: Vec<u64> = events
            .iter()
            .map(|e| e.time)
            .filter(|&t| t < total)
            .collect();
        if self.warmup > 0 {
            boundaries.push(self.warmup);
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut now = 0u64;
        let mut next_event = 0usize;
        for t in boundaries {
            exec.run(t - now)?;
            now = t;
            if t == self.warmup {
                exec.reset_metrics();
            }
            while next_event < events.len() && events[next_event].time == t {
                let e = events[next_event];
                match e.action {
                    TraceAction::Admit => exec.set_admitted(e.vm, true),
                    TraceAction::Retire => exec.set_admitted(e.vm, false),
                    TraceAction::SetLoad(level) => exec.set_load_level(e.vm, level),
                }
                next_event += 1;
            }
        }
        exec.run(total - now)?;
        Ok(exec.metrics())
    }

    /// Runs every replication (in parallel) and reports.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for zero replications or horizon;
    /// engine errors from any replication.
    pub fn run(&self) -> Result<TraceReport, CoreError> {
        if self.replications == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "need at least 1 replication".into(),
            });
        }
        let jobs = if self.parallel {
            vsched_exec::resolve_jobs(self.jobs)
        } else {
            1
        };
        let samples: Vec<SampleMetrics> =
            vsched_exec::run_indexed(jobs, 0, self.replications, |rep| self.run_replication(rep))?;
        let fingerprint = fnv1a_64(
            samples
                .iter()
                .flat_map(SampleMetrics::to_observations)
                .flat_map(|x| x.to_bits().to_le_bytes()),
        );
        Ok(TraceReport {
            samples,
            fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RawEvent, TraceMeta, VmShape};

    fn churn_schedule() -> TraceSchedule {
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(2)),
            RawEvent::arrive(0, "b", VmShape::new(1)),
            RawEvent::arrive(60, "c", VmShape::new(1)),
            RawEvent::set_load(90, "a", 500),
            RawEvent::depart(120, "b"),
            RawEvent::set_load(150, "a", 1000),
            RawEvent::arrive(200, "b", VmShape::new(1)),
        ];
        TraceSchedule::from_events(&TraceMeta::new(2), &events).unwrap()
    }

    #[test]
    fn jobs_and_replication_order_do_not_change_bits() {
        let base = TraceExperiment::new(churn_schedule(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .horizon(600)
            .replications(4);
        let seq = base.clone().parallel(false).run().unwrap();
        let par = base.clone().jobs(4).run().unwrap();
        assert_eq!(seq.fingerprint, par.fingerprint);
        assert_eq!(seq.samples, par.samples);
        let again = base.jobs(2).run().unwrap();
        assert_eq!(seq.fingerprint, again.fingerprint);
    }

    #[test]
    fn san_engine_runs_traces_and_shards_agree() {
        let base = TraceExperiment::new(churn_schedule(), PolicyKind::RoundRobin)
            .engine(Engine::San)
            .horizon(400)
            .replications(2);
        let seq = base.clone().run().unwrap();
        let sharded = base.clone().shards(4).run().unwrap();
        assert_eq!(seq.fingerprint, sharded.fingerprint);
        let auto = base.shard_mode(ShardMode::Auto).run().unwrap();
        assert_eq!(
            seq.fingerprint, auto.fingerprint,
            "auto mode fingerprints identically"
        );
        assert!(seq.avg_pcpu_utilization() > 0.5);
    }

    #[test]
    fn warmup_resets_metrics_at_the_boundary() {
        // All churn inside warmup: observed window sees a static 2-VM
        // system, so availability is well above the churn-phase value.
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(1)),
            RawEvent::arrive(0, "b", VmShape::new(1)),
            RawEvent::set_load(10, "a", 0),
            RawEvent::set_load(200, "a", 1000),
        ];
        let s = TraceSchedule::from_events(&TraceMeta::new(2), &events).unwrap();
        let with_warmup = TraceExperiment::new(s.clone(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .warmup(300)
            .horizon(500)
            .replications(2)
            .run()
            .unwrap();
        let without = TraceExperiment::new(s, PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .horizon(800)
            .replications(2)
            .run()
            .unwrap();
        let util = |r: &TraceReport| {
            r.samples
                .iter()
                .map(SampleMetrics::avg_vcpu_utilization)
                .sum::<f64>()
                / r.samples.len() as f64
        };
        assert!(
            util(&with_warmup) > util(&without) + 0.05,
            "warmup window excludes the paused phase: {} vs {}",
            util(&with_warmup),
            util(&without)
        );
    }

    #[test]
    fn zero_horizon_and_zero_replications_are_rejected() {
        let e = TraceExperiment::new(churn_schedule(), PolicyKind::RoundRobin)
            .horizon(0)
            .run_replication(0)
            .unwrap_err();
        assert!(e.to_string().contains("horizon"));
        let e = TraceExperiment::new(churn_schedule(), PolicyKind::RoundRobin)
            .replications(0)
            .run()
            .unwrap_err();
        assert!(e.to_string().contains("replication"));
    }

    #[test]
    fn metrics_report_bridges_to_the_static_shape() {
        let schedule = churn_schedule();
        let (vcpus, pcpus) = (schedule.config().total_vcpus(), schedule.config().pcpus());
        let r = TraceExperiment::new(schedule, PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .horizon(300)
            .replications(3)
            .run()
            .unwrap();
        let report = r.metrics_report(vcpus, pcpus, 0.95).unwrap();
        assert_eq!(report.replications, 3);
        assert_eq!(report.vcpu_availability.len(), vcpus);
        assert_eq!(report.pcpu_utilization.len(), pcpus);
        assert!(report.avg_pcpu_utilization() > 0.0);
        // A single replication has no interval.
        let one = TraceExperiment::new(churn_schedule(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .horizon(300)
            .replications(1)
            .run()
            .unwrap();
        assert!(one.metrics_report(vcpus, pcpus, 0.95).is_err());
    }

    #[test]
    fn report_means_are_well_formed() {
        let r = TraceExperiment::new(churn_schedule(), PolicyKind::Balance)
            .engine(Engine::Direct)
            .horizon(300)
            .replications(2)
            .run()
            .unwrap();
        let obs = r.mean_observations();
        assert!(!obs.is_empty());
        assert!(obs.iter().all(|x| (0.0..=1.0).contains(x)));
        assert!(r.avg_vcpu_availability() > 0.0);
    }
}
