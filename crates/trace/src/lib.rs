//! # vsched-trace — trace-driven dynamic workloads
//!
//! Turns a timestamped trace of VM lifecycle events — arrivals (with a
//! shape), departures, load-level changes — into a first-class workload
//! both engines of `vsched-core` can execute. The paper's evaluation
//! (§IV) fixes the VM population for a whole run; this crate supplies
//! the *dynamic consolidation* setting its Discussion points at: VMs
//! arrive and depart mid-run, demand varies, and the scheduling policy
//! is judged on the workload a datacenter actually sees.
//!
//! The pipeline:
//!
//! 1. **Read** a dataset into `(line, RawEvent)` records — the native
//!    JSON-lines format ([`read_standard`]) or an Azure-style VM
//!    lifetime CSV ([`read_azure_csv`]). Errors are typed and carry
//!    `path:line`.
//! 2. **Compile** ([`TraceSchedule::compile`]) into the union topology
//!    plus a validated, time-sorted event list; per-VM [`LoadModel`]s
//!    expand into plain set-load events here.
//! 3. **Run** ([`TraceExperiment`]) on either engine: the union system
//!    is built once (the SAN engine in its dynamic mode), absent VMs are
//!    retired before tick 0, and events apply at their boundaries.
//!    Replications parallelize bit-identically; [`TraceReport`] carries
//!    a fingerprint to prove it.
//!
//! A *degenerate* trace — everyone arrives at tick 0, full demand, no
//! departures — is bit-identical to the corresponding static topology
//! on both engines (pinned by the `trace_static_identity` test tier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod load;
pub mod reader;
pub mod runner;
pub mod schedule;

pub use error::TraceError;
pub use event::{RawEvent, TraceMeta, VmShape};
pub use load::{LoadModel, LoadStep, FULL_LEVEL};
pub use reader::{
    load_standard, load_trace, read_azure_csv, read_azure_csv_str, read_standard,
    read_standard_str, write_standard,
};
pub use runner::{TraceExperiment, TraceReport};
pub use schedule::{CompiledEvent, TraceAction, TraceSchedule};
