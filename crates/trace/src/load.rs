//! Per-VM load models: how a VM's demand varies over its lifetime.
//!
//! A load model is declared once on the VM's arrival record and expanded
//! at compile time into ordinary set-load events, so both engines see only
//! the uniform event stream. Levels are per-mille of full demand
//! (`1000` = the VM's configured workload generator at full rate, `0` =
//! paused); see `DirectSim::set_load_level` for the duty-cycle semantics.

use serde::{Deserialize, Serialize};

/// Full demand, in per-mille.
pub const FULL_LEVEL: u32 = 1000;

/// One step of a piecewise-constant load model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LoadStep {
    /// Offset in ticks **relative to the VM's arrival**.
    pub at: u64,
    /// Demand level from this offset on, per-mille in `0..=1000`.
    pub level: u32,
}

/// How a VM's demand evolves after it arrives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", deny_unknown_fields)]
pub enum LoadModel {
    /// Constant demand at `level` per-mille for the VM's whole lifetime.
    Constant {
        /// Demand level, per-mille in `0..=1000`.
        level: u32,
    },
    /// Piecewise-constant demand: each step takes effect at its offset.
    /// Steps must be strictly increasing in `at`; a step at offset 0
    /// replaces the initial full level.
    Steps {
        /// The steps, strictly increasing in `at`.
        steps: Vec<LoadStep>,
    },
}

impl LoadModel {
    /// Expands the model into absolute `(time, level)` set-load points for
    /// a VM arriving at `arrival`. The first point may be at `arrival`
    /// itself (initial level).
    #[must_use]
    pub fn expand(&self, arrival: u64) -> Vec<(u64, u32)> {
        match self {
            LoadModel::Constant { level } => vec![(arrival, *level)],
            LoadModel::Steps { steps } => steps
                .iter()
                .map(|s| (arrival.saturating_add(s.at), s.level))
                .collect(),
        }
    }

    /// The highest level the model ever requests (for validation).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        match self {
            LoadModel::Constant { level } => *level,
            LoadModel::Steps { steps } => steps.iter().map(|s| s.level).max().unwrap_or(0),
        }
    }

    /// Whether step offsets are strictly increasing (vacuously true for
    /// `Constant`).
    #[must_use]
    pub fn is_ordered(&self) -> bool {
        match self {
            LoadModel::Constant { .. } => true,
            LoadModel::Steps { steps } => steps.windows(2).all(|w| w[0].at < w[1].at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_expands_to_one_point() {
        let m = LoadModel::Constant { level: 400 };
        assert_eq!(m.expand(50), vec![(50, 400)]);
        assert_eq!(m.max_level(), 400);
        assert!(m.is_ordered());
    }

    #[test]
    fn steps_expand_relative_to_arrival() {
        let m = LoadModel::Steps {
            steps: vec![
                LoadStep { at: 0, level: 200 },
                LoadStep {
                    at: 100,
                    level: 1000,
                },
            ],
        };
        assert_eq!(m.expand(30), vec![(30, 200), (130, 1000)]);
        assert_eq!(m.max_level(), 1000);
        assert!(m.is_ordered());
        let bad = LoadModel::Steps {
            steps: vec![LoadStep { at: 5, level: 1 }, LoadStep { at: 5, level: 2 }],
        };
        assert!(!bad.is_ordered());
    }

    #[test]
    fn json_spelling() {
        let m = LoadModel::Constant { level: 250 };
        assert_eq!(
            serde_json::to_string(&m).unwrap(),
            r#"{"constant":{"level":250}}"#
        );
    }
}
