//! Typed, position-annotated errors for trace ingestion.
//!
//! Every variant that originates from a trace file carries the file path
//! (or a synthetic label such as `<inline>`) and, where meaningful, the
//! 1-based line number — malformed datasets must be diagnosable without a
//! debugger.

use std::error::Error;
use std::fmt;

use vsched_core::CoreError;

/// Errors from reading, validating, or compiling a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The trace file could not be read.
    Io {
        /// Path of the file.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A line is not valid JSON / CSV for the expected record type.
    Parse {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Event timestamps must be non-decreasing.
    OutOfOrder {
        /// Path of the file.
        path: String,
        /// 1-based line number of the offending event.
        line: usize,
        /// Timestamp that went backwards.
        time: u64,
        /// The previous (larger) timestamp.
        previous: u64,
    },
    /// A `set_load` or `depart` names a VM that has never arrived.
    UnknownVm {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The unknown VM name.
        vm: String,
    },
    /// A VM departs while it is not present.
    DepartureBeforeArrival {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The VM name.
        vm: String,
    },
    /// A VM arrives while it is already present.
    DoubleArrival {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The VM name.
        vm: String,
    },
    /// A VM re-arrives with a different shape than its first arrival.
    ///
    /// Re-admission reuses the VM's slot in the union topology, so the
    /// shape (VCPU count, weight, workload) is fixed at first arrival.
    ShapeMismatch {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The VM name.
        vm: String,
    },
    /// A load level is outside `0..=1000` per-mille.
    BadLevel {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The offending level.
        level: u32,
    },
    /// A record is structurally wrong (e.g. not exactly one action per
    /// event, or a bad timestamp field).
    BadRecord {
        /// Path of the file.
        path: String,
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        reason: String,
    },
    /// The trace contains no arrivals — there is nothing to simulate.
    Empty {
        /// Path of the file.
        path: String,
    },
    /// The compiled union configuration was rejected by the kernel.
    Core(CoreError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, source } => write!(f, "{path}: {source}"),
            TraceError::Parse {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: parse error: {message}"),
            TraceError::OutOfOrder {
                path,
                line,
                time,
                previous,
            } => write!(
                f,
                "{path}:{line}: out-of-order event: time {time} after {previous}"
            ),
            TraceError::UnknownVm { path, line, vm } => {
                write!(f, "{path}:{line}: unknown VM `{vm}` (never arrived)")
            }
            TraceError::DepartureBeforeArrival { path, line, vm } => {
                write!(f, "{path}:{line}: VM `{vm}` departs while not present")
            }
            TraceError::DoubleArrival { path, line, vm } => {
                write!(f, "{path}:{line}: VM `{vm}` arrives while already present")
            }
            TraceError::ShapeMismatch { path, line, vm } => write!(
                f,
                "{path}:{line}: VM `{vm}` re-arrives with a different shape"
            ),
            TraceError::BadLevel { path, line, level } => write!(
                f,
                "{path}:{line}: load level {level} outside 0..=1000 per-mille"
            ),
            TraceError::BadRecord { path, line, reason } => {
                write!(f, "{path}:{line}: {reason}")
            }
            TraceError::Empty { path } => write!(f, "{path}: trace has no arrivals"),
            TraceError::Core(e) => write!(f, "compiled trace rejected: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for TraceError {
    fn from(e: CoreError) -> Self {
        TraceError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_path_and_line() {
        let e = TraceError::OutOfOrder {
            path: "t.jsonl".into(),
            line: 7,
            time: 3,
            previous: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("t.jsonl:7"), "{msg}");
        assert!(msg.contains("time 3 after 9"), "{msg}");

        let e = TraceError::BadLevel {
            path: "t.jsonl".into(),
            line: 2,
            level: 1500,
        };
        assert!(e.to_string().contains("t.jsonl:2"));
        assert!(e.source().is_none());

        let e: TraceError = CoreError::InvalidConfig {
            reason: "no PCPUs".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no PCPUs"));
    }
}
