//! Compiling a raw event stream into an executable schedule.
//!
//! A [`TraceSchedule`] is the validated, engine-ready form of a trace:
//! the **union topology** (every VM that ever appears, in first-arrival
//! order, as one [`SystemConfig`]), the initial presence/level of each
//! VM (all time-0 events folded in), and a time-sorted list of
//! [`CompiledEvent`]s to apply at event boundaries. VM indices in the
//! union are stable for the whole trace — a departed VM keeps its slot
//! and may be re-admitted later with the **same shape**.

use std::collections::HashMap;

use vsched_core::SystemConfig;

use crate::error::TraceError;
use crate::event::{RawEvent, TraceMeta, VmShape};
use crate::load::FULL_LEVEL;

/// What happens to a VM at an event boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// The VM is (re-)admitted.
    Admit,
    /// The VM departs: its VCPUs are retired and its PCPUs freed.
    Retire,
    /// The VM's demand changes to this per-mille level.
    SetLoad(u32),
}

/// One compiled event: an action on a union-indexed VM at a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledEvent {
    /// Tick at which the action takes effect (the boundary *before* this
    /// tick runs).
    pub time: u64,
    /// VM index in the union topology.
    pub vm: usize,
    /// The action.
    pub action: TraceAction,
}

/// A validated, engine-ready trace.
#[derive(Debug, Clone)]
pub struct TraceSchedule {
    config: SystemConfig,
    vm_names: Vec<String>,
    initially_present: Vec<bool>,
    initial_levels: Vec<u32>,
    events: Vec<CompiledEvent>,
    end_time: u64,
}

impl TraceSchedule {
    /// Compiles a stream of `(line, event)` pairs against `meta`.
    ///
    /// `path` labels errors; `line` is the 1-based source line of each
    /// event (readers track real lines, synthetic streams may enumerate).
    ///
    /// # Errors
    ///
    /// Every [`TraceError`] trace-shape variant: out-of-order timestamps,
    /// unknown VMs, double arrivals, departures while absent, re-arrival
    /// shape mismatches, bad levels, malformed records, empty traces, and
    /// kernel rejection of the union configuration.
    pub fn compile(
        meta: &TraceMeta,
        events: &[(usize, RawEvent)],
        path: &str,
    ) -> Result<Self, TraceError> {
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut shapes: Vec<VmShape> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut present: Vec<bool> = Vec::new();
        let mut compiled: Vec<CompiledEvent> = Vec::new();
        let mut prev_time = 0u64;

        for &(line, ref ev) in events {
            ev.validate().map_err(|reason| TraceError::BadRecord {
                path: path.into(),
                line,
                reason,
            })?;
            if ev.time < prev_time {
                return Err(TraceError::OutOfOrder {
                    path: path.into(),
                    line,
                    time: ev.time,
                    previous: prev_time,
                });
            }
            prev_time = ev.time;

            if let Some(shape) = &ev.arrive {
                if let Some(model) = &shape.load_model {
                    if model.max_level() > FULL_LEVEL {
                        return Err(TraceError::BadLevel {
                            path: path.into(),
                            line,
                            level: model.max_level(),
                        });
                    }
                    if !model.is_ordered() {
                        return Err(TraceError::BadRecord {
                            path: path.into(),
                            line,
                            reason: "load model steps must be strictly increasing in `at`".into(),
                        });
                    }
                }
                let vm = match index.get(&ev.vm) {
                    Some(&vm) => {
                        if present[vm] {
                            return Err(TraceError::DoubleArrival {
                                path: path.into(),
                                line,
                                vm: ev.vm.clone(),
                            });
                        }
                        if shapes[vm] != *shape {
                            return Err(TraceError::ShapeMismatch {
                                path: path.into(),
                                line,
                                vm: ev.vm.clone(),
                            });
                        }
                        vm
                    }
                    None => {
                        let vm = shapes.len();
                        index.insert(ev.vm.clone(), vm);
                        shapes.push(shape.clone());
                        names.push(ev.vm.clone());
                        present.push(false);
                        vm
                    }
                };
                present[vm] = true;
                compiled.push(CompiledEvent {
                    time: ev.time,
                    vm,
                    action: TraceAction::Admit,
                });
                if let Some(model) = &shape.load_model {
                    // Load models re-anchor at every (re-)admission.
                    for (t, level) in model.expand(ev.time) {
                        compiled.push(CompiledEvent {
                            time: t,
                            vm,
                            action: TraceAction::SetLoad(level),
                        });
                    }
                }
            } else if let Some(level) = ev.set_load {
                if level > FULL_LEVEL {
                    return Err(TraceError::BadLevel {
                        path: path.into(),
                        line,
                        level,
                    });
                }
                let Some(&vm) = index.get(&ev.vm) else {
                    return Err(TraceError::UnknownVm {
                        path: path.into(),
                        line,
                        vm: ev.vm.clone(),
                    });
                };
                // A level set while the VM is absent persists and is in
                // effect when it is re-admitted.
                compiled.push(CompiledEvent {
                    time: ev.time,
                    vm,
                    action: TraceAction::SetLoad(level),
                });
            } else {
                let Some(&vm) = index.get(&ev.vm) else {
                    return Err(TraceError::UnknownVm {
                        path: path.into(),
                        line,
                        vm: ev.vm.clone(),
                    });
                };
                if !present[vm] {
                    return Err(TraceError::DepartureBeforeArrival {
                        path: path.into(),
                        line,
                        vm: ev.vm.clone(),
                    });
                }
                present[vm] = false;
                compiled.push(CompiledEvent {
                    time: ev.time,
                    vm,
                    action: TraceAction::Retire,
                });
            }
        }

        if shapes.is_empty() {
            return Err(TraceError::Empty { path: path.into() });
        }

        // Load-model expansions can postdate later input events; restore
        // global time order. The sort is stable, so same-instant actions
        // keep their generation order.
        compiled.sort_by_key(|e| e.time);

        let mut builder = SystemConfig::builder()
            .pcpus(meta.pcpus)
            .timeslice(meta.timeslice);
        for shape in &shapes {
            builder = builder.vm_spec(shape.to_vm_spec(meta)?);
        }
        let config = builder.build()?;

        // Fold time-0 events into the initial state.
        let mut initially_present = vec![false; shapes.len()];
        let mut initial_levels = vec![FULL_LEVEL; shapes.len()];
        let mut events = Vec::with_capacity(compiled.len());
        let mut end_time = 0u64;
        for e in compiled {
            end_time = end_time.max(e.time);
            if e.time == 0 {
                match e.action {
                    TraceAction::Admit => initially_present[e.vm] = true,
                    TraceAction::Retire => initially_present[e.vm] = false,
                    TraceAction::SetLoad(level) => initial_levels[e.vm] = level,
                }
            } else {
                events.push(e);
            }
        }

        Ok(TraceSchedule {
            config,
            vm_names: names,
            initially_present,
            initial_levels,
            events,
            end_time,
        })
    }

    /// Compiles a synthetic event stream (fuzzing, tests) with enumerated
    /// line numbers and the label `<events>`.
    ///
    /// # Errors
    ///
    /// As [`TraceSchedule::compile`].
    pub fn from_events(meta: &TraceMeta, events: &[RawEvent]) -> Result<Self, TraceError> {
        let located: Vec<(usize, RawEvent)> = events
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, e)| (i + 1, e))
            .collect();
        Self::compile(meta, &located, "<events>")
    }

    /// The union topology: every VM the trace ever admits.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// VM names, indexed like the union topology.
    #[must_use]
    pub fn vm_names(&self) -> &[String] {
        &self.vm_names
    }

    /// Which VMs are present at tick 0.
    #[must_use]
    pub fn initially_present(&self) -> &[bool] {
        &self.initially_present
    }

    /// Per-VM demand level at tick 0, per-mille.
    #[must_use]
    pub fn initial_levels(&self) -> &[u32] {
        &self.initial_levels
    }

    /// Time-sorted events at ticks `> 0`.
    #[must_use]
    pub fn events(&self) -> &[CompiledEvent] {
        &self.events
    }

    /// The last event's tick (0 for a static trace).
    #[must_use]
    pub fn end_time(&self) -> u64 {
        self.end_time
    }

    /// Whether this trace degenerates to a static topology: everything
    /// present from tick 0 at full demand, no later events.
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.events.is_empty()
            && self.initially_present.iter().all(|&p| p)
            && self.initial_levels.iter().all(|&l| l == FULL_LEVEL)
    }

    /// A short human-readable summary.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} VMs ({} initially present) on {} PCPUs, {} events through tick {}",
            self.vm_names.len(),
            self.initially_present.iter().filter(|&&p| p).count(),
            self.config.pcpus(),
            self.events.len(),
            self.end_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{LoadModel, LoadStep};

    fn meta() -> TraceMeta {
        TraceMeta::new(2)
    }

    #[test]
    fn compiles_union_in_first_arrival_order() {
        let events = vec![
            RawEvent::arrive(0, "b", VmShape::new(2)),
            RawEvent::arrive(10, "a", VmShape::new(1)),
            RawEvent::depart(50, "b"),
        ];
        let s = TraceSchedule::from_events(&meta(), &events).unwrap();
        assert_eq!(s.vm_names(), ["b", "a"]);
        assert_eq!(s.config().vms().len(), 2);
        assert_eq!(s.config().vms()[0].vcpus, 2);
        assert_eq!(s.initially_present(), [true, false]);
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.end_time(), 50);
        assert!(!s.is_static());
        assert!(s.describe().contains("2 VMs"));
    }

    #[test]
    fn degenerate_trace_is_static() {
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(1)),
            RawEvent::arrive(0, "b", VmShape::new(1)),
        ];
        let s = TraceSchedule::from_events(&meta(), &events).unwrap();
        assert!(s.is_static());
        assert_eq!(s.end_time(), 0);
    }

    #[test]
    fn load_model_expands_and_reanchors() {
        let mut shape = VmShape::new(1);
        shape.load_model = Some(LoadModel::Steps {
            steps: vec![
                LoadStep { at: 0, level: 200 },
                LoadStep { at: 30, level: 800 },
            ],
        });
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(1)),
            RawEvent::arrive(10, "m", shape.clone()),
            RawEvent::depart(50, "m"),
            RawEvent::arrive(100, "m", shape),
        ];
        let s = TraceSchedule::from_events(&meta(), &events).unwrap();
        let set_loads: Vec<(u64, u32)> = s
            .events()
            .iter()
            .filter_map(|e| match e.action {
                TraceAction::SetLoad(l) => Some((e.time, l)),
                _ => None,
            })
            .collect();
        assert_eq!(set_loads, [(10, 200), (40, 800), (100, 200), (130, 800)]);
    }

    #[test]
    fn rejects_malformed_streams() {
        let m = meta();
        // Out of order.
        let err = TraceSchedule::from_events(
            &m,
            &[
                RawEvent::arrive(10, "a", VmShape::new(1)),
                RawEvent::arrive(5, "b", VmShape::new(1)),
            ],
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceError::OutOfOrder { line: 2, .. }),
            "{err}"
        );

        // Unknown VM.
        let err = TraceSchedule::from_events(&m, &[RawEvent::set_load(0, "ghost", 5)]).unwrap_err();
        assert!(matches!(err, TraceError::UnknownVm { .. }), "{err}");

        // Departure while absent.
        let err = TraceSchedule::from_events(
            &m,
            &[
                RawEvent::arrive(0, "a", VmShape::new(1)),
                RawEvent::depart(5, "a"),
                RawEvent::depart(6, "a"),
            ],
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceError::DepartureBeforeArrival { line: 3, .. }),
            "{err}"
        );

        // Double arrival.
        let err = TraceSchedule::from_events(
            &m,
            &[
                RawEvent::arrive(0, "a", VmShape::new(1)),
                RawEvent::arrive(5, "a", VmShape::new(1)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::DoubleArrival { .. }), "{err}");

        // Shape mismatch on re-admission.
        let err = TraceSchedule::from_events(
            &m,
            &[
                RawEvent::arrive(0, "a", VmShape::new(1)),
                RawEvent::depart(5, "a"),
                RawEvent::arrive(9, "a", VmShape::new(2)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::ShapeMismatch { .. }), "{err}");

        // Bad level.
        let err = TraceSchedule::from_events(
            &m,
            &[
                RawEvent::arrive(0, "a", VmShape::new(1)),
                RawEvent::set_load(5, "a", 1001),
            ],
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceError::BadLevel { level: 1001, .. }),
            "{err}"
        );

        // Empty.
        let err = TraceSchedule::from_events(&m, &[]).unwrap_err();
        assert!(matches!(err, TraceError::Empty { .. }), "{err}");

        // Union rejected by the kernel (zero VCPUs).
        let err = TraceSchedule::from_events(&m, &[RawEvent::arrive(0, "a", VmShape::new(0))])
            .unwrap_err();
        assert!(matches!(err, TraceError::Core(_)), "{err}");
    }

    #[test]
    fn set_load_persists_across_absence() {
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(1)),
            RawEvent::depart(5, "a"),
            RawEvent::set_load(6, "a", 300),
            RawEvent::arrive(10, "a", VmShape::new(1)),
        ];
        let s = TraceSchedule::from_events(&meta(), &events).unwrap();
        assert_eq!(s.events().len(), 3);
    }

    #[test]
    fn time_zero_set_load_becomes_initial_level() {
        let events = vec![
            RawEvent::arrive(0, "a", VmShape::new(1)),
            RawEvent::set_load(0, "a", 250),
        ];
        let s = TraceSchedule::from_events(&meta(), &events).unwrap();
        assert_eq!(s.initial_levels(), [250]);
        assert!(s.events().is_empty());
        assert!(!s.is_static());
    }
}
