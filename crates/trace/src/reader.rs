//! Dataset readers: the native JSON-lines trace format and an
//! Azure-style CSV lifetime table.
//!
//! The **standard format** is JSON lines: the first significant line is a
//! `{"meta": {...}}` header, every following line one [`RawEvent`].
//! Blank lines and `#` comments are ignored, so fixtures can be
//! annotated. [`write_standard`] emits exactly what [`read_standard_str`]
//! parses — the round trip is byte-stable.
//!
//! The **Azure CSV** reader ingests the common public-dataset shape of
//! one row per VM lifetime — `vm_id,vcpus,start_time,end_time[,weight]`
//! with a header row, empty `end_time` meaning the VM never departs —
//! and lowers it to the same event stream. Rows are sorted by
//! `(time, kind, row)` with departures before arrivals at the same
//! instant, so capacity frees before new VMs land.

use std::fs;
use std::path::Path;

use crate::error::TraceError;
use crate::event::{RawEvent, TraceMeta, VmShape};
use crate::schedule::TraceSchedule;

#[derive(serde::Deserialize)]
#[serde(deny_unknown_fields)]
struct MetaLine {
    meta: TraceMeta,
}

fn significant(line: &str) -> Option<&str> {
    let t = line.trim();
    (!t.is_empty() && !t.starts_with('#')).then_some(t)
}

/// Parses standard-format trace text. `path` labels errors.
///
/// Returns the header and the `(line, event)` stream in file order.
///
/// # Errors
///
/// [`TraceError::Parse`] for bad JSON or a missing header;
/// [`TraceError::BadRecord`] via later compilation is *not* checked here.
pub fn read_standard_str(
    text: &str,
    path: &str,
) -> Result<(TraceMeta, Vec<(usize, RawEvent)>), TraceError> {
    let mut meta: Option<TraceMeta> = None;
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let Some(t) = significant(raw) else { continue };
        if meta.is_none() {
            let header: MetaLine = serde_json::from_str(t).map_err(|e| TraceError::Parse {
                path: path.into(),
                line,
                message: format!("expected a {{\"meta\": ...}} header: {e}"),
            })?;
            meta = Some(header.meta);
            continue;
        }
        let event: RawEvent = serde_json::from_str(t).map_err(|e| TraceError::Parse {
            path: path.into(),
            line,
            message: e.to_string(),
        })?;
        events.push((line, event));
    }
    let Some(meta) = meta else {
        return Err(TraceError::Parse {
            path: path.into(),
            line: 1,
            message: "trace has no {\"meta\": ...} header line".into(),
        });
    };
    Ok((meta, events))
}

/// Reads a standard-format trace file.
///
/// # Errors
///
/// [`TraceError::Io`] and everything [`read_standard_str`] raises.
pub fn read_standard(path: &Path) -> Result<(TraceMeta, Vec<(usize, RawEvent)>), TraceError> {
    let label = path.display().to_string();
    let text = fs::read_to_string(path).map_err(|source| TraceError::Io {
        path: label.clone(),
        source,
    })?;
    read_standard_str(&text, &label)
}

/// Serializes a trace in the standard format; the output re-parses to
/// the same header and events.
///
/// # Panics
///
/// Never — the record types serialize infallibly.
#[must_use]
pub fn write_standard(meta: &TraceMeta, events: &[RawEvent]) -> String {
    let mut out = String::new();
    out.push_str(&serde_json::to_string(&serde_json::json!({ "meta": meta })).unwrap());
    out.push('\n');
    for e in events {
        out.push_str(&serde_json::to_string(e).unwrap());
        out.push('\n');
    }
    out
}

/// Reads and compiles a standard-format trace file in one step.
///
/// # Errors
///
/// Everything [`read_standard`] and [`TraceSchedule::compile`] raise.
pub fn load_standard(path: &Path) -> Result<TraceSchedule, TraceError> {
    let label = path.display().to_string();
    let (meta, events) = read_standard(path)?;
    TraceSchedule::compile(&meta, &events, &label)
}

/// Parses Azure-style CSV text into an event stream. `path` labels
/// errors; the platform (`meta`) is supplied by the caller since the
/// dataset carries no PCPU count.
///
/// # Errors
///
/// [`TraceError::Parse`] for a missing/invalid header or unparseable
/// fields; [`TraceError::BadRecord`] for a non-positive lifetime.
pub fn read_azure_csv_str(text: &str, path: &str) -> Result<Vec<(usize, RawEvent)>, TraceError> {
    let mut rows = Vec::new();
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let Some(t) = significant(raw) else { continue };
        let fields: Vec<&str> = t.split(',').map(str::trim).collect();
        if !saw_header {
            if fields.len() < 4 || !fields[0].eq_ignore_ascii_case("vm_id") {
                return Err(TraceError::Parse {
                    path: path.into(),
                    line,
                    message: format!(
                        "expected header `vm_id,vcpus,start_time,end_time[,weight]`, got `{t}`"
                    ),
                });
            }
            saw_header = true;
            continue;
        }
        if fields.len() < 4 || fields.len() > 5 {
            return Err(TraceError::Parse {
                path: path.into(),
                line,
                message: format!("expected 4-5 fields, got {}", fields.len()),
            });
        }
        let parse_num = |what: &str, s: &str| -> Result<u64, TraceError> {
            s.parse::<u64>().map_err(|_| TraceError::Parse {
                path: path.into(),
                line,
                message: format!("bad {what} `{s}`"),
            })
        };
        let vm_id = fields[0].to_string();
        if vm_id.is_empty() {
            return Err(TraceError::Parse {
                path: path.into(),
                line,
                message: "empty vm_id".into(),
            });
        }
        let vcpus = parse_num("vcpus", fields[1])? as usize;
        let start = parse_num("start_time", fields[2])?;
        let end = if fields[3].is_empty() {
            None
        } else {
            Some(parse_num("end_time", fields[3])?)
        };
        if let Some(end) = end {
            if end <= start {
                return Err(TraceError::BadRecord {
                    path: path.into(),
                    line,
                    reason: format!("non-positive lifetime: start {start}, end {end}"),
                });
            }
        }
        let weight = match fields.get(4) {
            Some(w) if !w.is_empty() => u32::try_from(parse_num("weight", w)?).unwrap_or(u32::MAX),
            _ => 1,
        };
        let mut shape = VmShape::new(vcpus);
        shape.weight = weight;
        rows.push((line, RawEvent::arrive(start, vm_id.clone(), shape)));
        if let Some(end) = end {
            rows.push((line, RawEvent::depart(end, vm_id)));
        }
    }
    if !saw_header {
        return Err(TraceError::Parse {
            path: path.into(),
            line: 1,
            message: "CSV has no header row".into(),
        });
    }
    // Sort to a valid event stream: by time, departures before arrivals
    // at the same instant (frees capacity first), stable in row order.
    rows.sort_by_key(|(line, e)| (e.time, u8::from(e.arrive.is_some()) * 2, *line));
    Ok(rows)
}

/// Reads an Azure-style CSV file into an event stream.
///
/// # Errors
///
/// [`TraceError::Io`] and everything [`read_azure_csv_str`] raises.
pub fn read_azure_csv(path: &Path) -> Result<Vec<(usize, RawEvent)>, TraceError> {
    let label = path.display().to_string();
    let text = fs::read_to_string(path).map_err(|source| TraceError::Io {
        path: label.clone(),
        source,
    })?;
    read_azure_csv_str(&text, &label)
}

/// Loads a trace file by extension — `.csv` as Azure CSV (with the
/// supplied `meta`), anything else as the standard format (whose header
/// overrides `meta` entirely).
///
/// # Errors
///
/// Reader and compiler errors as above.
pub fn load_trace(path: &Path, csv_meta: &TraceMeta) -> Result<TraceSchedule, TraceError> {
    let label = path.display().to_string();
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
    {
        let events = read_azure_csv(path)?;
        TraceSchedule::compile(csv_meta, &events, &label)
    } else {
        load_standard(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STANDARD: &str = r#"
# A tiny annotated fixture.
{"meta":{"pcpus":2}}

{"time":0,"vm":"a","arrive":{"vcpus":2,"weight":1}}
{"time":10,"vm":"a","set_load":500}
{"time":50,"vm":"a","depart":true}
"#;

    #[test]
    fn standard_round_trip_is_byte_stable() {
        let (meta, events) = read_standard_str(STANDARD, "t.jsonl").unwrap();
        assert_eq!(meta.pcpus, 2);
        assert_eq!(meta.timeslice, 30);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].0, 5, "line numbers skip comments and blanks");

        let raw: Vec<RawEvent> = events.iter().map(|(_, e)| e.clone()).collect();
        let text = write_standard(&meta, &raw);
        let (meta2, events2) = read_standard_str(&text, "t.jsonl").unwrap();
        assert_eq!(meta2, meta);
        let raw2: Vec<RawEvent> = events2.into_iter().map(|(_, e)| e).collect();
        assert_eq!(raw2, raw);
        assert_eq!(write_standard(&meta2, &raw2), text, "idempotent");
    }

    #[test]
    fn standard_rejects_missing_header_and_bad_json() {
        let err = read_standard_str(r#"{"time":0,"vm":"a","depart":true}"#, "t.jsonl").unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");

        let err = read_standard_str("{\"meta\":{\"pcpus\":1}}\nnot json\n", "t.jsonl").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");

        let err = read_standard_str("", "t.jsonl").unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }), "{err}");

        // Unknown fields are rejected, with the line number.
        let err = read_standard_str(
            "{\"meta\":{\"pcpus\":1}}\n{\"time\":0,\"vm\":\"a\",\"arive\":{\"vcpus\":1}}\n",
            "t.jsonl",
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
    }

    const AZURE: &str = "\
vm_id,vcpus,start_time,end_time,weight
web-1,2,0,,1
batch-7,4,100,400,2
cache-2,1,100,,1
";

    #[test]
    fn azure_rows_lower_to_sorted_events() {
        let events = read_azure_csv_str(AZURE, "t.csv").unwrap();
        let kinds: Vec<(u64, bool)> = events
            .iter()
            .map(|(_, e)| (e.time, e.arrive.is_some()))
            .collect();
        assert_eq!(kinds, [(0, true), (100, true), (100, true), (400, false)]);
        assert_eq!(events[0].1.vm, "web-1");
        assert_eq!(events[1].1.vm, "batch-7");
        assert_eq!(
            events[1].1.arrive.as_ref().unwrap().weight,
            2,
            "weight column respected"
        );
    }

    #[test]
    fn azure_compiles_against_supplied_meta() {
        let events = read_azure_csv_str(AZURE, "t.csv").unwrap();
        let s = TraceSchedule::compile(&TraceMeta::new(4), &events, "t.csv").unwrap();
        assert_eq!(s.vm_names(), ["web-1", "batch-7", "cache-2"]);
        assert_eq!(s.initially_present(), [true, false, false]);
        assert_eq!(s.end_time(), 400);
    }

    #[test]
    fn azure_departures_sort_before_arrivals() {
        let csv = "\
vm_id,vcpus,start_time,end_time
old,1,0,100
new,1,100,
";
        let events = read_azure_csv_str(csv, "t.csv").unwrap();
        assert!(events[1].1.depart.is_some(), "depart first at tick 100");
        assert!(events[2].1.arrive.is_some());
        // And the compiled schedule accepts it on a 1-PCPU box.
        TraceSchedule::compile(&TraceMeta::new(1), &events, "t.csv").unwrap();
    }

    #[test]
    fn azure_rejects_malformed_rows() {
        let err = read_azure_csv_str("nope\n", "t.csv").unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");

        let err =
            read_azure_csv_str("vm_id,vcpus,start_time,end_time\nv,x,0,\n", "t.csv").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");

        let err = read_azure_csv_str("vm_id,vcpus,start_time,end_time\nv,1,50,50\n", "t.csv")
            .unwrap_err();
        assert!(
            matches!(err, TraceError::BadRecord { line: 2, .. }),
            "{err}"
        );

        let err = read_azure_csv_str("", "t.csv").unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }), "{err}");
    }
}
