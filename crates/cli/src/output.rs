//! Result rendering for the `vsched` command.

use vsched_core::{MetricsReport, PolicyKind, SystemConfig};

/// Renders one policy's report as an aligned text block.
#[must_use]
pub fn render_report(system: &SystemConfig, policy: &PolicyKind, report: &MetricsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "policy {} ({} replications)\n",
        policy.label(),
        report.replications
    ));
    out.push_str(&format!(
        "  averages: VCPU avail {:.3}   VCPU util {:.3}   PCPU util {:.3}",
        report.avg_vcpu_availability(),
        report.avg_vcpu_utilization(),
        report.avg_pcpu_utilization(),
    ));
    if report.avg_vcpu_spin() > 0.0 {
        out.push_str(&format!("   spin {:.3}", report.avg_vcpu_spin()));
    }
    out.push('\n');
    for (id, ci) in system.vcpu_ids().iter().zip(&report.vcpu_availability) {
        out.push_str(&format!("  {id}: availability {ci}\n"));
    }
    out
}

/// Serializes one policy's report as a JSON value.
#[must_use]
pub fn report_to_json(
    system: &SystemConfig,
    policy: &PolicyKind,
    report: &MetricsReport,
) -> serde_json::Value {
    serde_json::json!({
        "policy": policy.label(),
        "system": system.describe(),
        "replications": report.replications,
        "avg_vcpu_availability": report.avg_vcpu_availability(),
        "avg_vcpu_utilization": report.avg_vcpu_utilization(),
        "avg_pcpu_utilization": report.avg_pcpu_utilization(),
        "avg_vcpu_spin": report.avg_vcpu_spin(),
        "vcpu_availability": report.vcpu_availability_means(),
        "vcpu_utilization": report.vcpu_utilization_means(),
        "pcpu_utilization": report.pcpu_utilization_means(),
        "vcpu_spin": report.vcpu_spin_means(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_core::{Engine, ExperimentBuilder};

    fn report() -> (SystemConfig, PolicyKind, MetricsReport) {
        let system = SystemConfig::builder().pcpus(1).vm(1).build().unwrap();
        let policy = PolicyKind::RoundRobin;
        let report = ExperimentBuilder::new(system.clone(), policy.clone())
            .engine(Engine::Direct)
            .warmup(100)
            .horizon(1_000)
            .replications_exact(2)
            .run()
            .unwrap();
        (system, policy, report)
    }

    #[test]
    fn text_render_contains_metrics() {
        let (system, policy, report) = report();
        let text = render_report(&system, &policy, &report);
        assert!(text.contains("policy RRS"));
        assert!(text.contains("VCPU avail"));
        assert!(text.contains("VCPU1.1"));
    }

    #[test]
    fn json_render_has_all_fields() {
        let (system, policy, report) = report();
        let json = report_to_json(&system, &policy, &report);
        assert_eq!(json["policy"], "RRS");
        assert!(json["avg_pcpu_utilization"].as_f64().unwrap() > 0.9);
        assert_eq!(json["vcpu_availability"].as_array().unwrap().len(), 1);
    }
}
