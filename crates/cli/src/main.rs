//! The `vsched` command: run VCPU-scheduling experiments from JSON configs.
//!
//! ```text
//! vsched run <config.json> [--out results.json] [--jobs N]
//! vsched example                                  print a starter config
//! vsched help                                     this message
//! ```

use std::fs;
use std::process::ExitCode;

use vsched_cli::output::{render_report, report_to_json};
use vsched_cli::ExperimentConfig;
use vsched_core::ExperimentBuilder;

const HELP: &str = "\
vsched — simulate and compare VCPU scheduling algorithms

USAGE:
    vsched run <config.json> [--out <results.json>] [--jobs <N>]
    vsched example
    vsched help

COMMANDS:
    run       Simulate the experiment described by a JSON config file and
              print a comparison of the configured policies.
    example   Print a commented starter config to stdout.

OPTIONS:
    --out <path>   Also write results (with the config) as JSON.
    --jobs <N>     Replication worker threads (default: one per core;
                   overrides the config's `jobs` field). Results are
                   bit-identical for every N.

The config format is documented in the vsched-cli crate docs; `vsched
example > exp.json` is the quickest start.";

const EXAMPLE: &str = r#"{
  "pcpus": 4,
  "vms": [
    { "vcpus": 2 },
    { "vcpus": 4,
      "workload": {
        "load": { "uniform": { "low": 5.0, "high": 15.0 } },
        "sync_ratio": [1, 3],
        "sync_mechanism": "barrier"
      }
    }
  ],
  "timeslice": 30,
  "policies": ["rrs", "scs", "rcs"],
  "engine": "san",
  "warmup": 1000,
  "horizon": 20000
}"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("example") => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut config_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            p if config_path.is_none() => config_path = Some(p),
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(config_path) = config_path else {
        eprintln!("error: `vsched run` needs a config file\n\n{HELP}");
        return ExitCode::FAILURE;
    };
    match run_experiment(config_path, out_path, jobs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_experiment(
    config_path: &str,
    out_path: Option<&str>,
    jobs_flag: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    let text =
        fs::read_to_string(config_path).map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = ExperimentConfig::from_json(&text)?;
    let system = config.system()?;
    let engine = config.engine_kind()?;
    // Command line beats config file; both default to one worker per core.
    let jobs = jobs_flag.or(config.jobs);
    println!(
        "system: {}   engine: {}   warmup {} / horizon {} ticks",
        system.describe(),
        config.engine,
        config.warmup,
        config.horizon
    );
    let mut json_results = Vec::new();
    for policy in config.policy_kinds()? {
        let mut builder = ExperimentBuilder::new(system.clone(), policy.clone())
            .engine(engine)
            .warmup(config.warmup)
            .horizon(config.horizon);
        if let Some(n) = config.replications {
            builder = builder.replications_exact(n);
        }
        if let Some(seed) = config.seed {
            builder = builder.seed(seed);
        }
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        let report = builder.run()?;
        print!("{}", render_report(&system, &policy, &report));
        json_results.push(report_to_json(&system, &policy, &report));
    }
    if let Some(out) = out_path {
        let body = serde_json::to_string_pretty(&serde_json::json!({
            "config": config,
            "results": json_results,
        }))?;
        fs::write(out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("[wrote {out}]");
    }
    Ok(())
}
