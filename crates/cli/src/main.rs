//! The `vsched` command: run VCPU-scheduling experiments from JSON configs.
//!
//! ```text
//! vsched run <config.json> [--out results.json] [--jobs N]
//! vsched trace <validate|describe|head|run> <trace> [--pcpus N] [...]
//! vsched sweep <spec.json> [--store DIR] [--out-dir DIR] [...]
//! vsched fuzz [--cases N] [--seed S] [--jobs N] [--reproducer-dir DIR]
//! vsched fuzz --replay <case.json>
//! vsched verify [--policy LABEL] [--horizon N] [--fixture deadlock]
//! vsched lint [<config.json>...] [--deny warnings] [--format json]
//! vsched perf [--out BENCH_perf.json] [--ticks N] [--baseline FILE]
//! vsched tournament [--configs DIR] [--agent CMD] [--policies LIST]
//! vsched env <config.json> [--socket PATH | --agent CMD]
//! vsched policies                                 list the policy registry
//! vsched example                                  print a starter config
//! vsched help                                     this message
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vsched_analyze::AnalyzeOpts;
use vsched_campaign::fsio::{read_file, write_atomic};
use vsched_campaign::{run_sweep, SweepOptions};
use vsched_check::{run_fuzz, FuzzOpts};
use vsched_cli::output::{render_report, report_to_json};
use vsched_cli::ExperimentConfig;
use vsched_core::ExperimentBuilder;

const HELP: &str = "\
vsched — simulate and compare VCPU scheduling algorithms

USAGE:
    vsched run <config.json> [--out <results.json>] [--jobs <N>]
    vsched trace validate <trace> [--pcpus <N>]
    vsched trace describe <trace> [--pcpus <N>]
    vsched trace head <trace> [--pcpus <N>] [--events <N>]
    vsched trace run <trace> [--pcpus <N>] [--policy <label>]
                 [--engine <direct|san>] [--warmup <N>] [--horizon <N>]
                 [--seed <S>] [--replications <N>] [--jobs <N>]
                 [--shards <N|auto>] [--out <results.json>]
    vsched sweep <spec.json> [--store <dir>] [--out-dir <dir>] [--jobs <N>]
                 [--only <experiment>] [--max-cells <N>] [--dry-run] [--quiet]
    vsched fuzz [--cases <N>] [--seed <S>] [--jobs <N>]
                [--reproducer-dir <dir>]
    vsched fuzz --replay <case.json>
    vsched verify [--policy <label>] [--vms <N>] [--vcpus <N>] [--pcpus <N>]
                  [--timeslice <N>] [--horizon <N>] [--max-states <N>]
                  [--symmetry <on|off>] [--seed <S>] [--format <text|json>]
                  [--fixture deadlock] [--counterexample <case.json>]
    vsched lint [<config.json>...] [--deny warnings] [--format <text|json>]
                [--seed <S>] [--fixture broken]
    vsched perf [--out <report.json>] [--ticks <N>] [--seed <S>]
                [--baseline <report.json>] [--max-regression <X>]
                [--max-vms <N>] [--shards <N,...,auto>] [--commit <hash>]
                [--format <text|json|csv>]
    vsched tournament [--configs <dir>] [--store <dir>] [--out <report.json>]
                      [--policies <l1,l2,...>] [--agent <cmd>]...
                      [--fuzz-scenarios <N>] [--fuzz-seed <S>]
                      [--warmup <N>] [--horizon <N>] [--replications <N>]
                      [--seed <S>] [--timeout <secs>] [--jobs <N>] [--quiet]
    vsched env <config.json> [--socket <path> | --agent <cmd>]
                [--name <label>] [--seed <S>] [--timeout <secs>]
                [--warmup <N>] [--horizon <N>]
    vsched policies
    vsched example
    vsched help

COMMANDS:
    run       Simulate the experiment described by a JSON config file and
              print a comparison of the configured policies. With a
              `trace` field the run is trace-driven: VMs arrive, depart
              and change load level as the trace dictates.
    trace     Work with workload traces — timestamped VM arrival,
              departure and load-level events in the standard JSON-lines
              format (`.jsonl`, self-describing header) or Azure-style
              lifetime CSV (`.csv`, platform supplied with --pcpus).
              `validate` compiles the trace and reports the first typed
              `path:line` error; `describe` prints the compiled shape;
              `head` prints the first events in standard form (CSV rows
              are converted); `run` replays the trace under one policy
              and prints the metrics plus an order-independent run
              fingerprint — bit-identical for every --jobs/--shards, so
              two runs can be diffed to prove determinism.
    sweep     Run a declarative campaign: expand the spec's experiment
              grids into cells, simulate whatever the content-addressed
              result store is missing (crash-safe and resumable — re-run
              after a kill to complete only the remaining cells), and
              render each experiment's figure.
    fuzz      Hunt scheduler bugs: generate random scenarios and judge
              each with the vsched-check oracle — runtime invariants on
              both engines, engine-vs-engine differential comparison,
              parallel-determinism and metamorphic relations. Failures
              are shrunk and written as replayable JSON reproducers.
    verify    Model-check the paper model exhaustively: enumerate every
              reachable SAN state up to a tick horizon (all instantaneous
              interleavings, every positive-weight case), quotient the
              space by VM-rotation symmetry where the policy permits, and
              prove named certificates — the runtime seven-invariant
              catalogue on every reachable edge, deadlock-freedom, exact
              per-place token bounds (reported alongside the structural
              semiflow bounds), and exact activity liveness. Violations
              come with concrete firing traces packaged as fuzz
              reproducers: `vsched fuzz --replay` re-fires the trace
              bit-exactly and re-runs the scenario on both engines.
              Exits 0 when everything is proved, 1 on a violation, 2 when
              the search was cut short (state cap) and nothing is claimed.
    lint      Statically analyze SAN models and policies before running
              anything: extract the incidence matrix, compute P-/T-
              invariants by exact rational elimination, check the model's
              declared conservation laws as named certificates, and flag
              structural defects (dead activities, non-conserving gates,
              instantaneous confusion) and policy-contract breaches. With
              no arguments, lints the paper model under its policy trio;
              with config or sweep-spec files, lints every distinct
              (system, policy) cell they describe.
    tournament
              Rank scheduling policies against each other: every registered
              built-in (plus any external `--agent` processes speaking the
              vsched-env JSON-lines protocol) plays every scenario in the
              corpus — the lint-clean run configs under `--configs` plus a
              batch of fuzz-generated scenarios — and is ranked on the
              paper's three metrics. Built-in results go through the
              content-addressed store, so a warm re-run simulates nothing;
              agent faults forfeit the scenario but never abort the run.
    env       Host one experiment as a gym-style environment. By default
              serves the JSON-lines protocol on stdin/stdout (an agent
              process connects the other way around); `--socket` serves one
              connection on a Unix socket instead, and `--agent` flips the
              hosting direction: vsched spawns the agent, plays one episode
              against it, and prints the resulting metrics.
    policies  List the policy registry: every built-in algorithm with its
              config-file label and the observation fields it reads.
    perf      Time the SAN engine's incremental reevaluation core against
              its full-rescan reference mode across a model-size scaling
              axis (1 to 16 VMs), verify both modes end bit-identical,
              and report events/sec and speedup per size; then time the
              large-model scale axis (64/256/1024 VMs), sequential vs
              the sharded engine, verify bit-identity, and report each
              run's real-time factor (simulated seconds per wall second
              at 30 ms per tick). With a baseline report, exit non-zero
              on a large throughput regression.
    example   Print a commented starter config to stdout.

OPTIONS (run):
    --out <path>   Also write results (with the config) as JSON.
    --jobs <N>     Replication worker threads (default: one per core;
                   overrides the config's `jobs` field). Results are
                   bit-identical for every N.

OPTIONS (trace):
    --pcpus <N>        Platform size for CSV traces, which carry none.
                       Standard-format traces carry their own and reject
                       the flag.
    --events <N>       (head) Events to print (default 10).
    --policy <label>   (run) Scheduling policy (default rrs).
    --engine <name>    (run) `direct` (default) or `san`.
    --warmup <N>       (run) Warm-up ticks; the trace clock is absolute,
                       so events inside warmup still apply (default 0).
    --horizon <N>      (run) Observed ticks after warmup (default: last
                       event time + 1000).
    --seed <S>         (run) Base seed; replication r uses S + r
                       (default 0x5eed).
    --replications <N> (run) Replications (default 3).
    --jobs <N>         (run) Replication worker threads (default: one per
                       core). Results are bit-identical for every N.
    --shards <N|auto>  (run) SAN engine shard count, or `auto` to let
                       the engine pick per model size (ignored by
                       direct). Results are bit-identical either way.
    --out <path>       (run) Also write the report as JSON.

OPTIONS (sweep):
    --store <dir>      Result-store directory (default: the spec's `store`
                       field, else `.campaign-store` next to the spec).
    --out-dir <dir>    Figure output directory (default: the spec's
                       `output` field, else `results` next to the spec).
    --jobs <N>         Cell worker threads (default: one per core).
    --only <name>      Run a single experiment from the spec.
    --max-cells <N>    Simulate at most N missing cells, then stop.
    --dry-run          Plan and report; simulate nothing.
    --quiet            Suppress tables and progress output.

OPTIONS (fuzz):
    --cases <N>            Scenarios to generate and judge (default 200).
    --seed <S>             Master seed; case i is determined by (S, i)
                           alone (default 42).
    --jobs <N>             Worker threads (default: one per core).
    --reproducer-dir <dir> Write a case-<i>.json reproducer per failure.
    --replay <case.json>   Re-judge one reproducer and print its outcome
                           (byte-identical across replays of the same
                           file — CI diffs two replays to prove it).

OPTIONS (verify):
    --policy <label>       Verify one policy (default: every built-in).
    --vms <N>              Identical VMs in the model (default 2).
    --vcpus <N>            VCPUs per VM (default 2).
    --pcpus <N>            Physical CPUs (default 2).
    --timeslice <N>        Scheduling timeslice in ticks (default 5).
    --horizon <N>          Tick layers to explore exhaustively; states at
                           the horizon are recorded, not expanded
                           (default 16).
    --max-states <N>       Stored-state cap; exceeding it exits 2
                           (inconclusive), never silently partial
                           (default 200000).
    --symmetry <on|off>    VM-rotation symmetry quotient (default on;
                           used only for rotation-equivariant policies).
    --seed <S>             Base seed for stochastic-gate probes
                           (default 0x5eed; the default workload is
                           deterministic, where the seed is irrelevant).
    --format <text|json>   Report format (default text).
    --fixture deadlock     Verify the planted-deadlock fixture instead: a
                           fault-injected Round-Robin that must trip
                           `deadlock-freedom` with a replayable trace.
    --counterexample <p>   Write the first counterexample as a fuzz
                           reproducer JSON at <p> (replay it with
                           `vsched fuzz --replay <p>`).

OPTIONS (lint):
    --deny warnings        Exit non-zero on Warn findings too, not only on
                           Error findings and failed certificates.
    --format <text|json>   Report format (default text). JSON output is
                           stable per seed and snapshot-testable.
    --seed <S>             Exploration seed (default 0x5eed).
    --fixture broken       Lint the built-in deliberately-broken model
                           instead — exercises the diagnostics themselves.

OPTIONS (perf):
    --out <path>           Write the machine-readable report as JSON.
    --ticks <N>            Simulated clock periods per timed run
                           (default 2000).
    --repeats <N>          Timed repetitions per cell; the fastest is
                           reported (default 5).
    --seed <S>             Simulation seed (default 42).
    --baseline <path>      A previous --out report to compare against.
    --max-regression <X>   Fail if the incremental core's speedup over
                           full rescan fell more than X-fold below the
                           baseline's (default 2.0). Compares the
                           same-run ratio, so machine speed cancels out.
    --max-vms <N>          Cap the large-model scale axis (64/256/1024
                           VMs) at N VMs; below 64 the axis is skipped
                           entirely (default 1024).
    --shards <N,...,auto>  Shard worker counts to time on the scale
                           axis, each >= 2, plus optionally the word
                           `auto` for the auto-tuned mode (default
                           `4,auto`). The sequential engine always runs
                           as the reference; an explicit list without
                           `auto` skips the auto column.
    --commit <hash>        Commit hash recorded in the report's host
                           block, next to the logical core count and
                           engine version.
    --format <f>           Print the report as `text` (default), `json`,
                           or `csv` (one timed run per row — the
                           machine-readable crossover matrix).

OPTIONS (tournament):
    --configs <dir>        Directory of run-config scenarios (default
                           `configs`; sweep specs are skipped).
    --store <dir>          Result store for built-in contestants (default
                           `.tournament-store`).
    --out <path>           Also write the ranking report as JSON.
    --policies <l1,l2,..>  Restrict built-ins to these labels (default all).
    --agent <cmd>          Add an external contestant (repeatable). The
                           command is spawned per scenario episode and
                           speaks the vsched-env protocol on stdio.
    --fuzz-scenarios <N>   Fuzz-generated scenarios to append (default 2).
    --fuzz-seed <S>        Seed of the scenario generator (default 42).
    --warmup <N>           Warm-up ticks per scenario (default 500).
    --horizon <N>          Measured ticks per scenario (default 4000).
    --replications <N>     Replications per contestant (default 2; min 2).
    --seed <S>             Base simulation seed (default 0x5eed).
    --timeout <secs>       Per-message agent timeout (default 10).
    --jobs <N>             Cell worker threads (default: one per core).
    --quiet                Suppress progress output.

OPTIONS (env):
    --socket <path>        Serve one connection on a Unix socket instead of
                           stdin/stdout.
    --agent <cmd>          Host the episode: spawn the agent, play it to
                           completion, print the metrics.
    --name <label>         Environment name sent in the handshake
                           (default: the config file stem).
    --seed <S>             Episode seed in --agent mode (default: the
                           config's seed, else 0x5eed).
    --timeout <secs>       Per-message timeout in --agent mode (default 10).
    --warmup <N>           Override the config's warm-up ticks.
    --horizon <N>          Override the config's measured ticks.

The config format is documented in the vsched-cli crate docs; `vsched
example > exp.json` is the quickest start. The paper campaign lives at
configs/paper.sweep.json: `vsched sweep configs/paper.sweep.json`
regenerates every bench_results/*.json from one command.";

const EXAMPLE: &str = r#"{
  "pcpus": 4,
  "vms": [
    { "vcpus": 2 },
    { "vcpus": 4,
      "workload": {
        "load": { "uniform": { "low": 5.0, "high": 15.0 } },
        "sync_ratio": [1, 3],
        "sync_mechanism": "barrier"
      }
    }
  ],
  "timeslice": 30,
  "policies": ["rrs", "scs", "rcs"],
  "engine": "san",
  "warmup": 1000,
  "horizon": 20000
}"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("verify") => verify_cmd(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("perf") => perf(&args[1..]),
        Some("tournament") => tournament(&args[1..]),
        Some("env") => env_cmd(&args[1..]),
        Some("policies") => {
            print!("{}", vsched_cli::render_policy_registry());
            ExitCode::SUCCESS
        }
        Some("example") => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut config_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            p if config_path.is_none() => config_path = Some(p),
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(config_path) = config_path else {
        eprintln!("error: `vsched run` needs a config file\n\n{HELP}");
        return ExitCode::FAILURE;
    };
    match run_experiment(config_path, out_path, jobs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn trace_cmd(args: &[String]) -> ExitCode {
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!("error: `vsched trace` needs a verb: validate, describe, head or run\n\n{HELP}");
        return ExitCode::FAILURE;
    };
    if !matches!(verb, "validate" | "describe" | "head" | "run") {
        eprintln!("error: unknown trace verb `{verb}` (expected validate, describe, head or run)");
        return ExitCode::FAILURE;
    }
    let mut opts = TraceOpts::default();
    let mut path: Option<&str> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pcpus" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.pcpus = n,
                _ => {
                    eprintln!("error: --pcpus requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.events = n,
                _ => {
                    eprintln!("error: --events requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match it.next() {
                Some(label) => opts.policy = label.clone(),
                None => {
                    eprintln!("error: --policy requires a label");
                    return ExitCode::FAILURE;
                }
            },
            "--engine" => match it.next().map(String::as_str) {
                Some("direct") => opts.engine = vsched_core::Engine::Direct,
                Some("san") => opts.engine = vsched_core::Engine::San,
                _ => {
                    eprintln!("error: --engine takes `direct` or `san`");
                    return ExitCode::FAILURE;
                }
            },
            "--warmup" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.warmup = n,
                _ => {
                    eprintln!("error: --warmup requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--horizon" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.horizon = Some(n),
                _ => {
                    eprintln!("error: --horizon requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.seed = n,
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--replications" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.replications = n,
                _ => {
                    eprintln!("error: --replications requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().map(String::as_str) {
                Some("auto") => opts.shards = vsched_core::ShardMode::Auto,
                Some(n) => match n.parse::<usize>() {
                    Ok(n) if n >= 2 => opts.shards = vsched_core::ShardMode::Fixed(n),
                    Ok(_) => opts.shards = vsched_core::ShardMode::Off,
                    Err(_) => {
                        eprintln!("error: --shards requires a number or `auto`");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("error: --shards requires a number or `auto`");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            p if path.is_none() && !p.starts_with('-') => path = Some(p),
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("error: `vsched trace {verb}` needs a trace file");
        return ExitCode::FAILURE;
    };
    match run_trace_verb(verb, Path::new(path), &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `vsched trace` flags with their defaults.
struct TraceOpts {
    pcpus: usize,
    events: usize,
    policy: String,
    engine: vsched_core::Engine,
    warmup: u64,
    horizon: Option<u64>,
    seed: u64,
    replications: usize,
    jobs: Option<usize>,
    shards: vsched_core::ShardMode,
    out: Option<PathBuf>,
}

impl Default for TraceOpts {
    fn default() -> Self {
        TraceOpts {
            pcpus: 0,
            events: 10,
            policy: "rrs".into(),
            engine: vsched_core::Engine::Direct,
            warmup: 0,
            horizon: None,
            seed: 0x5eed,
            replications: 3,
            jobs: None,
            shards: vsched_core::ShardMode::Off,
            out: None,
        }
    }
}

/// The JSON written by `vsched trace run --out`.
#[derive(serde::Serialize)]
struct TraceRunJson {
    trace: String,
    policy: String,
    engine: String,
    warmup: u64,
    horizon: u64,
    seed: u64,
    replications: usize,
    /// FNV-1a 64 over every observation bit; equal strings mean
    /// bit-identical runs.
    fingerprint: String,
    /// Confidence-interval report (absent with a single replication).
    #[serde(skip_serializing_if = "Option::is_none")]
    report: Option<vsched_core::MetricsReport>,
}

fn is_csv_trace(path: &Path) -> bool {
    path.extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
}

/// Loads a trace for the `trace` subcommand, enforcing the `--pcpus`
/// contract: required by CSV datasets, rejected by self-describing
/// standard traces.
fn load_trace_arg(
    path: &Path,
    opts: &TraceOpts,
) -> Result<vsched_trace::TraceSchedule, Box<dyn std::error::Error>> {
    if is_csv_trace(path) {
        if opts.pcpus == 0 {
            return Err(format!(
                "CSV trace `{}` carries no platform: pass --pcpus",
                path.display()
            )
            .into());
        }
    } else if opts.pcpus != 0 {
        return Err(format!(
            "trace `{}` carries its own platform: drop --pcpus",
            path.display()
        )
        .into());
    }
    let csv_meta = vsched_trace::TraceMeta::new(opts.pcpus);
    Ok(vsched_trace::load_trace(path, &csv_meta)?)
}

fn run_trace_verb(
    verb: &str,
    path: &Path,
    opts: &TraceOpts,
) -> Result<(), Box<dyn std::error::Error>> {
    match verb {
        "validate" => {
            let schedule = load_trace_arg(path, opts)?;
            println!("ok: {}", schedule.describe());
            Ok(())
        }
        "describe" => {
            let schedule = load_trace_arg(path, opts)?;
            let (mut admits, mut retires, mut loads) = (0usize, 0, 0);
            for e in schedule.events() {
                match e.action {
                    vsched_trace::TraceAction::Admit => admits += 1,
                    vsched_trace::TraceAction::Retire => retires += 1,
                    vsched_trace::TraceAction::SetLoad(_) => loads += 1,
                }
            }
            println!("trace: {}", path.display());
            println!("  {}", schedule.describe());
            println!(
                "  platform: {} pcpus, {} vcpus total, timeslice {}",
                schedule.config().pcpus(),
                schedule.config().total_vcpus(),
                schedule.config().timeslice()
            );
            println!(
                "  events after tick 0: {admits} arrival(s), {retires} departure(s), \
                 {loads} load change(s)"
            );
            Ok(())
        }
        "head" => {
            let (meta, events) = if is_csv_trace(path) {
                if opts.pcpus == 0 {
                    return Err(format!(
                        "CSV trace `{}` carries no platform: pass --pcpus",
                        path.display()
                    )
                    .into());
                }
                (
                    vsched_trace::TraceMeta::new(opts.pcpus),
                    vsched_trace::read_azure_csv(path)?,
                )
            } else {
                if opts.pcpus != 0 {
                    return Err(format!(
                        "trace `{}` carries its own platform: drop --pcpus",
                        path.display()
                    )
                    .into());
                }
                vsched_trace::read_standard(path)?
            };
            let total = events.len();
            let head: Vec<vsched_trace::RawEvent> = events
                .into_iter()
                .take(opts.events)
                .map(|(_, e)| e)
                .collect();
            print!("{}", vsched_trace::write_standard(&meta, &head));
            if total > head.len() {
                eprintln!("[{} more event(s)]", total - head.len());
            }
            Ok(())
        }
        "run" => run_trace_experiment(path, opts),
        _ => unreachable!("verb checked by trace_cmd"),
    }
}

fn run_trace_experiment(path: &Path, opts: &TraceOpts) -> Result<(), Box<dyn std::error::Error>> {
    let schedule = load_trace_arg(path, opts)?;
    let system = schedule.config().clone();
    let horizon = opts.horizon.unwrap_or(schedule.end_time() + 1_000);
    let policy = vsched_cli::config::PolicySpec::Label(opts.policy.clone()).to_kind()?;
    let engine_label = match opts.engine {
        vsched_core::Engine::Direct => "direct",
        vsched_core::Engine::San => "san",
    };
    println!("trace: {}", schedule.describe());
    println!(
        "policy {}   engine {engine_label}   warmup {} / horizon {horizon} ticks   \
         seed {:#x}   replications {}",
        policy.label(),
        opts.warmup,
        opts.seed,
        opts.replications
    );
    let mut exp = vsched_trace::TraceExperiment::new(schedule, policy.clone())
        .engine(opts.engine)
        .warmup(opts.warmup)
        .horizon(horizon)
        .seed(opts.seed)
        .replications(opts.replications)
        .shard_mode(opts.shards);
    if let Some(jobs) = opts.jobs {
        exp = exp.jobs(jobs);
    }
    let result = exp.run()?;
    println!("fingerprint {:016x}", result.fingerprint);
    let report = if opts.replications >= 2 {
        let report = result.metrics_report(system.total_vcpus(), system.pcpus(), 0.95)?;
        print!("{}", render_report(&system, &policy, &report));
        Some(report)
    } else {
        let sample = &result.samples[0];
        println!(
            "  vcpu_availability {:.4}   vcpu_utilization {:.4}   pcpu_utilization {:.4}",
            sample.avg_vcpu_availability(),
            sample.avg_vcpu_utilization(),
            sample.avg_pcpu_utilization()
        );
        None
    };
    if let Some(out) = &opts.out {
        let body = TraceRunJson {
            trace: path.display().to_string(),
            policy: policy.label().to_string(),
            engine: engine_label.to_string(),
            warmup: opts.warmup,
            horizon,
            seed: opts.seed,
            replications: opts.replications,
            fingerprint: format!("{:016x}", result.fingerprint),
            report,
        };
        write_atomic(out, &serde_json::to_string_pretty(&body)?)
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("[wrote {}]", out.display());
    }
    Ok(())
}

fn sweep(args: &[String]) -> ExitCode {
    let mut spec_path: Option<&str> = None;
    let mut opts = SweepOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => match it.next() {
                Some(p) => opts.store_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --store requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--out-dir" => match it.next() {
                Some(p) => opts.out_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --out-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--only" => match it.next() {
                Some(name) => opts.only = Some(name.clone()),
                None => {
                    eprintln!("error: --only requires an experiment name");
                    return ExitCode::FAILURE;
                }
            },
            "--max-cells" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.max_cells = Some(n),
                _ => {
                    eprintln!("error: --max-cells requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--dry-run" => opts.dry_run = true,
            "--quiet" => opts.quiet = true,
            p if spec_path.is_none() => spec_path = Some(p),
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!("error: `vsched sweep` needs a sweep spec file\n\n{HELP}");
        return ExitCode::FAILURE;
    };
    match run_sweep(std::path::Path::new(spec_path), &opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut opts = FuzzOpts::default();
    let mut replay_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.cases = n,
                _ => {
                    eprintln!("error: --cases requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.seed = n,
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--reproducer-dir" => match it.next() {
                Some(p) => opts.reproducer_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --reproducer-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--replay" => match it.next() {
                Some(p) => replay_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --replay requires a reproducer file");
                    return ExitCode::FAILURE;
                }
            },
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = replay_path {
        // A reproducer carrying a verifier counterexample replays through
        // the verify bridge instead of the differential oracle: re-fire
        // the recorded trace on a fresh model (bit-identical final
        // marking) and re-run the scenario on both engines.
        if let Ok(rep) = vsched_check::Reproducer::load(&path) {
            if rep.verify.is_some() {
                return match vsched_check::replay_verify_counterexample(&rep) {
                    Ok(replay) => {
                        println!(
                            "replay: verify counterexample for `{}`: {} firings re-fired, \
                             final marking bit-identical",
                            replay.certificate, replay.trace_len
                        );
                        if let Some(e) = &replay.direct_error {
                            println!("  direct engine: {e}");
                        }
                        if let Some(e) = &replay.san_error {
                            println!("  san engine: {e}");
                        }
                        if replay.engines_agree() {
                            println!("  engines agree");
                            ExitCode::SUCCESS
                        } else {
                            eprintln!("error: the engines disagree on the counterexample");
                            ExitCode::FAILURE
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
        }
        return match vsched_check::fuzz::replay(&path, &opts.oracle) {
            Ok(outcome) => {
                println!(
                    "replay: case {} digest {}",
                    outcome.case_index, outcome.digest
                );
                for f in &outcome.failures {
                    println!("  {f}");
                }
                if outcome.passed() {
                    println!("  clean");
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_fuzz(&opts) {
        Ok(report) => {
            println!("{}", report.summary());
            for failure in &report.failures {
                println!("case {}:", failure.case_index);
                for f in &failure.outcome.failures {
                    println!("  {f}");
                }
                if let Some(path) = &failure.reproducer {
                    println!("  reproducer: {}", path.display());
                }
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Exit status of one or more verification runs: violations dominate,
/// then inconclusive searches, then a clean proof.
fn verify_exit(outcomes: &[vsched_analyze::VerifyOutcome]) -> ExitCode {
    use vsched_analyze::VerifyOutcome;
    if outcomes.contains(&VerifyOutcome::Violated) {
        ExitCode::FAILURE
    } else if outcomes.contains(&VerifyOutcome::Inconclusive) {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders one bridged verification run as text: the report, the exact
/// bounds alongside the structural semiflow claims, and any cross-check
/// findings.
fn render_verify_run(run: &vsched_check::VerifyRun) -> String {
    use std::fmt::Write as _;
    let model = &run.analysis.model;
    let mut out = run.report.render_text(model);
    let _ = writeln!(out, "  place bounds (exact vs structural):");
    for (p, &exact) in run.report.place_bounds.iter().enumerate() {
        let structural = match run.structural_bounds.get(p) {
            Some(Some(b)) => b.to_string(),
            _ => "unbounded".to_string(),
        };
        let _ = writeln!(
            out,
            "    {:<28} {exact:>6}  {structural:>10}",
            model.place_name(vsched_san::PlaceId::from_index(p)),
        );
    }
    if run.cross_findings.is_empty() {
        let _ = writeln!(out, "  cross-check: exact and structural passes agree");
    }
    for d in &run.cross_findings {
        let _ = writeln!(
            out,
            "  cross-check {}: {}: {}",
            d.lint, d.subject, d.message
        );
    }
    out
}

fn verify_cmd(args: &[String]) -> ExitCode {
    use vsched_core::{PolicyKind, SystemConfig, VmSpec, WorkloadSpec};

    let mut opts = vsched_analyze::VerifyOpts::default();
    let mut policy_label: Option<String> = None;
    let mut vms = 2usize;
    let mut vcpus = 2usize;
    let mut pcpus = 2usize;
    let mut timeslice = 5u64;
    let mut fixture: Option<String> = None;
    let mut cx_path: Option<PathBuf> = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        macro_rules! num_flag {
            ($name:literal, $slot:expr, $ty:ty) => {
                match it.next().map(|n| n.parse::<$ty>()) {
                    Some(Ok(n)) => $slot = n,
                    _ => {
                        eprintln!(concat!("error: ", $name, " requires a number"));
                        return ExitCode::FAILURE;
                    }
                }
            };
        }
        match arg.as_str() {
            "--policy" => match it.next() {
                Some(l) => policy_label = Some(l.clone()),
                None => {
                    eprintln!("error: --policy requires a label");
                    return ExitCode::FAILURE;
                }
            },
            "--vms" => num_flag!("--vms", vms, usize),
            "--vcpus" => num_flag!("--vcpus", vcpus, usize),
            "--pcpus" => num_flag!("--pcpus", pcpus, usize),
            "--timeslice" => num_flag!("--timeslice", timeslice, u64),
            "--horizon" => num_flag!("--horizon", opts.horizon, u64),
            "--max-states" => num_flag!("--max-states", opts.max_states, usize),
            "--seed" => num_flag!("--seed", opts.seed, u64),
            "--symmetry" => match it.next().map(String::as_str) {
                Some("on") => opts.symmetry = true,
                Some("off") => opts.symmetry = false,
                _ => {
                    eprintln!("error: --symmetry requires `on` or `off`");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => {
                    eprintln!("error: --format requires `text` or `json`");
                    return ExitCode::FAILURE;
                }
            },
            "--fixture" => match it.next() {
                Some(f) => fixture = Some(f.clone()),
                None => {
                    eprintln!("error: --fixture requires a name (deadlock)");
                    return ExitCode::FAILURE;
                }
            },
            "--counterexample" => match it.next() {
                Some(p) => cx_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --counterexample requires a path");
                    return ExitCode::FAILURE;
                }
            },
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(name) = fixture {
        if name != "deadlock" {
            eprintln!("error: unknown fixture `{name}` (expected `deadlock`)");
            return ExitCode::FAILURE;
        }
        return match vsched_check::verify_fixture(&opts) {
            Ok((rep, run)) => {
                if json {
                    match serde_json::to_string_pretty(&run.report.to_json(&run.analysis.model)) {
                        Ok(body) => println!("{body}"),
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    print!("{}", render_verify_run(&run));
                }
                if let Some(path) = &cx_path {
                    if rep.verify.is_none() {
                        eprintln!("error: the fixture run produced no counterexample to write");
                        return ExitCode::FAILURE;
                    }
                    if let Err(e) = write_atomic(path, &rep.to_json()) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    println!("counterexample reproducer written to {}", path.display());
                }
                verify_exit(&[run.report.outcome()])
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let policies: Vec<PolicyKind> = match policy_label {
        Some(label) => match vsched_cli::config::PolicySpec::Label(label).to_kind() {
            Ok(kind) => vec![kind],
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => PolicyKind::all(),
    };

    // The verifier's diet is deterministic: a fixed per-tick load and a
    // sync point every third unit make the exploration exhaustive (no
    // stochastic gates to probe under a seed budget).
    let workload = match vsched_des::Dist::deterministic(4.0) {
        Ok(load) => WorkloadSpec {
            load,
            sync_probability: 0.0,
            sync_mechanism: vsched_core::SyncMechanism::Barrier,
            sync_every: Some(3),
            interarrival: None,
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut b = SystemConfig::builder().pcpus(pcpus).timeslice(timeslice);
    for _ in 0..vms {
        b = b.vm_spec(VmSpec {
            vcpus,
            workload: workload.clone(),
            weight: 1,
        });
    }
    let config = match b.build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut outcomes = Vec::new();
    let mut json_reports = Vec::new();
    let mut counterexample_written = false;
    for policy in &policies {
        let target = format!("{vms}x{vcpus}x{pcpus} {}", policy.label());
        let run = match vsched_check::verify_config(&target, &config, policy, &opts) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if json {
            json_reports.push(run.report.to_json(&run.analysis.model));
        } else {
            print!("{}", render_verify_run(&run));
        }
        if let (Some(path), Some(vcx), false) = (
            cx_path.as_ref(),
            run.counterexample.clone(),
            counterexample_written,
        ) {
            let rep = vsched_check::Reproducer {
                case: verify_case(&config, policy, vcx.horizon),
                failures: vec![format!("verify: {}: {}", vcx.certificate, vcx.detail)],
                verify: Some(vcx),
            };
            if let Err(e) = write_atomic(path, &rep.to_json()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("counterexample reproducer written to {}", path.display());
            counterexample_written = true;
        }
        outcomes.push(run.report.outcome());
    }
    if json {
        match serde_json::to_string_pretty(&serde_json::Value::Seq(json_reports)) {
            Ok(body) => println!("{body}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    verify_exit(&outcomes)
}

/// Packages the ad-hoc verification scenario as a fuzz case so a
/// counterexample reproducer is self-contained and replayable.
fn verify_case(
    config: &vsched_core::SystemConfig,
    policy: &vsched_core::PolicyKind,
    horizon: u64,
) -> vsched_check::FuzzCase {
    vsched_check::FuzzCase {
        case_index: 0,
        pcpus: config.pcpus(),
        vms: config
            .vms()
            .iter()
            .map(|vm| vsched_check::case::VmCase {
                vcpus: vm.vcpus,
                weight: vm.weight,
            })
            .collect(),
        load: vsched_check::case::LoadSpec::Deterministic { value: 4.0 },
        sync: vsched_check::case::SyncSpec {
            probability: 0.0,
            every: Some(3),
            mechanism: vsched_core::SyncMechanism::Barrier,
        },
        timeslice: config.timeslice(),
        policy: policy.clone(),
        seed: 7,
        warmup: 0,
        horizon,
        replications: 1,
        trace: vec![],
    }
}

fn perf(args: &[String]) -> ExitCode {
    let mut opts = vsched_cli::PerfOpts::default();
    let mut out_path: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut max_regression = 2.0_f64;
    let mut format = String::from("text");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--ticks" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.ticks = n,
                _ => {
                    eprintln!("error: --ticks requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--repeats" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.repeats = n,
                _ => {
                    eprintln!("error: --repeats requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.seed = n,
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline requires a report file");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regression" => match it.next().map(|n| n.parse::<f64>()) {
                Some(Ok(x)) if x >= 1.0 => max_regression = x,
                _ => {
                    eprintln!("error: --max-regression requires a factor >= 1.0");
                    return ExitCode::FAILURE;
                }
            },
            "--max-vms" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.max_vms = n,
                _ => {
                    eprintln!("error: --max-vms requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => {
                // A comma-separated list of counts >= 2; the word `auto`
                // may appear to (re-)enable the auto-mode column. Passing
                // an explicit list without `auto` disables it.
                let mut counts = Vec::new();
                let mut auto = false;
                let ok = match it.next() {
                    Some(list) => list.split(',').all(|tok| match tok.trim() {
                        "auto" => {
                            auto = true;
                            true
                        }
                        n => match n.parse::<usize>() {
                            Ok(s) if s >= 2 => {
                                counts.push(s);
                                true
                            }
                            _ => false,
                        },
                    }),
                    None => false,
                };
                if !ok || (counts.is_empty() && !auto) {
                    eprintln!(
                        "error: --shards requires a comma-separated list of \
                         counts >= 2 and/or `auto`"
                    );
                    return ExitCode::FAILURE;
                }
                opts.shards = counts;
                opts.auto = auto;
            }
            "--commit" => match it.next() {
                Some(hash) => opts.commit = Some(hash.clone()),
                None => {
                    eprintln!("error: --commit requires a hash");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json" | "csv")) => format = f.to_string(),
                _ => {
                    eprintln!("error: --format requires text, json or csv");
                    return ExitCode::FAILURE;
                }
            },
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = vsched_cli::run_perf(&opts);
    match format.as_str() {
        "json" => match serde_json::to_string_pretty(&report.to_json()) {
            Ok(b) => println!("{b}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "csv" => print!("{}", report.render_csv()),
        _ => print!("{}", report.render_text()),
    }
    if let Some(out) = &out_path {
        let body = match serde_json::to_string_pretty(&report.to_json()) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_atomic(out, &body) {
            eprintln!("error: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("[wrote {}]", out.display());
    }
    if !report.all_identical() {
        eprintln!("error: engine modes diverged (see `identical` column)");
        return ExitCode::FAILURE;
    }
    for loss in report.auto_losses() {
        eprintln!("warning: auto mode lost: {loss}");
    }
    if let Some(base) = &baseline {
        match vsched_cli::perf::check_against_baseline(&report, base, max_regression) {
            Ok(check) => {
                for w in &check.warnings {
                    eprintln!("warning: {w}");
                }
                if check.regressions.is_empty() {
                    println!("baseline: no regression beyond {max_regression:.1}x");
                } else {
                    for r in &check.regressions {
                        eprintln!("regression: {r}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn tournament(args: &[String]) -> ExitCode {
    let mut opts = vsched_cli::TournamentOpts::default();
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--configs" => match it.next() {
                Some(p) => opts.config_dir = PathBuf::from(p),
                None => {
                    eprintln!("error: --configs requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match it.next() {
                Some(p) => opts.store_dir = PathBuf::from(p),
                None => {
                    eprintln!("error: --store requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--policies" => match it.next() {
                Some(list) => {
                    opts.policies = Some(list.split(',').map(|s| s.trim().to_string()).collect());
                }
                None => {
                    eprintln!("error: --policies requires a comma-separated list");
                    return ExitCode::FAILURE;
                }
            },
            "--agent" => match it.next() {
                Some(cmd) => opts.agents.push(cmd.clone()),
                None => {
                    eprintln!("error: --agent requires a command");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-scenarios" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.fuzz_scenarios = n,
                _ => {
                    eprintln!("error: --fuzz-scenarios requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.fuzz_seed = n,
                _ => {
                    eprintln!("error: --fuzz-seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--warmup" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.warmup = n,
                _ => {
                    eprintln!("error: --warmup requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--horizon" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.horizon = n,
                _ => {
                    eprintln!("error: --horizon requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--replications" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => opts.replications = n,
                _ => {
                    eprintln!("error: --replications requires a number >= 2");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.seed = n,
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.timeout = std::time::Duration::from_secs(n),
                _ => {
                    eprintln!("error: --timeout requires a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--quiet" => opts.quiet = true,
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    match vsched_cli::run_tournament(&opts) {
        Ok(report) => {
            print!("{}", report.render_text());
            if let Some(out) = &out_path {
                let body = match serde_json::to_string_pretty(&report.to_json()) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = write_atomic(out, &body) {
                    eprintln!("error: cannot write {}: {e}", out.display());
                    return ExitCode::FAILURE;
                }
                println!("[wrote {}]", out.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn env_cmd(args: &[String]) -> ExitCode {
    let mut config_path: Option<&str> = None;
    let mut socket: Option<PathBuf> = None;
    let mut agent_cmd: Option<String> = None;
    let mut name: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut timeout = vsched_env::DEFAULT_TIMEOUT;
    let mut warmup: Option<u64> = None;
    let mut horizon: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--warmup" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => warmup = Some(n),
                _ => {
                    eprintln!("error: --warmup requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--horizon" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => horizon = Some(n),
                _ => {
                    eprintln!("error: --horizon requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --socket requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--agent" => match it.next() {
                Some(cmd) => agent_cmd = Some(cmd.clone()),
                None => {
                    eprintln!("error: --agent requires a command");
                    return ExitCode::FAILURE;
                }
            },
            "--name" => match it.next() {
                Some(n) => name = Some(n.clone()),
                None => {
                    eprintln!("error: --name requires a label");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => seed = Some(n),
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => timeout = std::time::Duration::from_secs(n),
                _ => {
                    eprintln!("error: --timeout requires a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            p if config_path.is_none() && !p.starts_with('-') => config_path = Some(p),
            p => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(config_path) = config_path else {
        eprintln!("error: `vsched env` needs a config file\n\n{HELP}");
        return ExitCode::FAILURE;
    };
    if socket.is_some() && agent_cmd.is_some() {
        eprintln!("error: --socket and --agent are mutually exclusive");
        return ExitCode::FAILURE;
    }
    match run_env(
        config_path,
        socket,
        agent_cmd,
        name,
        seed,
        timeout,
        warmup,
        horizon,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Hosts one experiment as a vsched-env environment (see `env_cmd`).
#[allow(clippy::too_many_arguments)]
fn run_env(
    config_path: &str,
    socket: Option<PathBuf>,
    agent_cmd: Option<String>,
    name: Option<String>,
    seed: Option<u64>,
    timeout: std::time::Duration,
    warmup: Option<u64>,
    horizon: Option<u64>,
) -> Result<(), Box<dyn std::error::Error>> {
    let text = read_file(Path::new(config_path))?;
    let config = ExperimentConfig::from_json(&text)?;
    let scenario = vsched_env::Scenario::new(config.system()?)
        .engine(config.engine_kind()?)
        .warmup(warmup.unwrap_or(config.warmup))
        .horizon(horizon.unwrap_or(config.horizon));
    let env_name = name.unwrap_or_else(|| {
        Path::new(config_path)
            .file_stem()
            .map_or_else(|| "vsched-env".to_string(), |s| s.to_string_lossy().into())
    });

    if let Some(command) = agent_cmd {
        // Hosting direction: we spawn the agent and drive one episode.
        let mut agent = vsched_env::RemotePolicy::spawn(&command, &env_name, timeout)
            .map_err(|e| format!("agent handshake: {e}"))?;
        let mut env = vsched_env::Env::new(scenario)
            .fields(agent.fields())
            .agent_name(agent.name());
        let episode_seed = seed.or(config.seed).unwrap_or(0x5eed);
        let run = vsched_env::run_remote_episode(&mut env, &mut agent, episode_seed)
            .map_err(|e| format!("episode: {e}"))?;
        println!(
            "episode: agent {} finished {} ticks ({} decisions)",
            agent.name(),
            run.end.ticks,
            run.actions.len()
        );
        println!(
            "  vcpu_utilization {:.4}  vcpu_availability {:.4}  pcpu_utilization {:.4}",
            run.end.metrics.avg_vcpu_utilization(),
            run.end.metrics.avg_vcpu_availability(),
            run.end.metrics.avg_pcpu_utilization()
        );
        println!("  fingerprint {:#018x}", run.end.fingerprint);
        return Ok(());
    }

    let stats = if let Some(path) = socket {
        // One connection, then exit: the orchestrator on the other side
        // decides how many episodes to play over it.
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .map_err(|e| format!("bind {}: {e}", path.display()))?;
        eprintln!("vsched env: listening on {}", path.display());
        let (stream, _) = listener
            .accept()
            .map_err(|e| format!("accept on {}: {e}", path.display()))?;
        let reader = stream.try_clone().map_err(|e| e.to_string())?;
        let mut transport = vsched_env::LineTransport::new(reader, stream, None);
        let stats = vsched_env::serve(&mut transport, &scenario, &env_name)
            .map_err(|e| format!("serve: {e}"))?;
        let _ = std::fs::remove_file(&path);
        stats
    } else {
        // Protocol on stdout; keep the human-readable trailer on stderr.
        let mut transport =
            vsched_env::LineTransport::new(std::io::stdin(), std::io::stdout(), None);
        vsched_env::serve(&mut transport, &scenario, &env_name)
            .map_err(|e| format!("serve: {e}"))?
    };
    eprintln!(
        "vsched env: served {} episode(s), {} fault(s)",
        stats.episodes, stats.faults
    );
    Ok(())
}

fn lint(args: &[String]) -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut deny_warnings = false;
    let mut json = false;
    let mut fixture = false;
    let mut opts = AnalyzeOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                _ => {
                    eprintln!("error: --deny takes `warnings`");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("error: --format takes `text` or `json`");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = s,
                _ => {
                    eprintln!("error: --seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--fixture" => match it.next().map(String::as_str) {
                Some("broken") => fixture = true,
                _ => {
                    eprintln!("error: --fixture takes `broken`");
                    return ExitCode::FAILURE;
                }
            },
            p if p.starts_with('-') => {
                eprintln!("error: unexpected argument `{p}`");
                return ExitCode::FAILURE;
            }
            p => paths.push(p.to_string()),
        }
    }
    match run_lint(&paths, fixture, &opts, deny_warnings, json) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Collects and renders the lint reports; returns `Ok(false)` when any
/// report is denied under the requested severity floor.
fn run_lint(
    paths: &[String],
    fixture: bool,
    opts: &AnalyzeOpts,
    deny_warnings: bool,
    json: bool,
) -> Result<bool, Box<dyn std::error::Error>> {
    let mut reports = Vec::new();
    if fixture {
        reports.push(vsched_analyze::lint_broken_fixture(opts));
    }
    if paths.is_empty() && !fixture {
        // Default target: the paper model under every registered policy.
        let system = vsched_core::SystemConfig::builder()
            .pcpus(4)
            .vm(2)
            .vm(4)
            .build()?;
        for kind in vsched_core::PolicyKind::all() {
            let target = format!("paper:{}", kind.label());
            reports.push(vsched_analyze::lint_config(&target, &system, &kind, opts)?);
        }
    }
    // Distinct (system, policy) pairs only: sweep grids repeat the same
    // model many times across seeds and engines, which lint can't tell
    // apart.
    let mut seen = std::collections::HashSet::new();
    for path in paths {
        let text = read_file(Path::new(path))?;
        if is_sweep_spec(&text) {
            let spec =
                vsched_campaign::SweepSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            let expanded = vsched_campaign::plan(&spec).map_err(|e| format!("{path}: {e}"))?;
            for exp in &expanded.experiments {
                for cell in &exp.cells {
                    let system = cell.config.system()?;
                    let kind = cell.config.policy_kind()?;
                    if !seen.insert(format!("{system:?}|{kind:?}")) {
                        continue;
                    }
                    let target = format!("{path}#{}: {}", exp.name, cell.config.summary()?);
                    reports.push(vsched_analyze::lint_config(&target, &system, &kind, opts)?);
                }
            }
        } else {
            let config = ExperimentConfig::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            let system = config.system()?;
            for kind in config.policy_kinds()? {
                if !seen.insert(format!("{system:?}|{kind:?}")) {
                    continue;
                }
                let target = format!("{path}: {}", kind.label());
                reports.push(vsched_analyze::lint_config(&target, &system, &kind, opts)?);
            }
        }
    }

    let denied = reports.iter().filter(|r| r.denied(deny_warnings)).count();
    if json {
        let body = serde_json::Value::Seq(reports.iter().map(|r| r.to_json()).collect());
        println!("{}", serde_json::to_string_pretty(&body)?);
    } else {
        for report in &reports {
            print!("{}", report.render_text());
        }
        let errors: usize = reports
            .iter()
            .map(vsched_analyze::LintReport::error_count)
            .sum();
        let warnings: usize = reports
            .iter()
            .map(vsched_analyze::LintReport::warn_count)
            .sum();
        println!(
            "lint: {} target(s), {errors} error(s), {warnings} warning(s), {denied} denied",
            reports.len()
        );
    }
    Ok(denied == 0)
}

/// A lint input is a sweep spec iff its top-level object has an
/// `experiments` key; anything else is treated as a run config.
fn is_sweep_spec(text: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(text)
        .ok()
        .and_then(|v| {
            v.as_map()
                .map(|m| m.iter().any(|(k, _)| k == "experiments"))
        })
        .unwrap_or(false)
}

fn run_experiment(
    config_path: &str,
    out_path: Option<&str>,
    jobs_flag: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    // Typed error with the offending path baked in, instead of a bare
    // io::Error (or a panic) on a mistyped file name.
    let text = read_file(Path::new(config_path))?;
    let config = ExperimentConfig::from_json(&text)?;
    let system = config.system()?;
    let engine = config.engine_kind()?;
    // Command line beats config file; both default to one worker per core.
    let jobs = jobs_flag.or(config.jobs);
    println!(
        "system: {}   engine: {}   warmup {} / horizon {} ticks",
        system.describe(),
        config.engine,
        config.warmup,
        config.horizon
    );
    if config.trace.is_some() {
        return run_traced_config(&config, &system, out_path, jobs);
    }
    let mut json_results = Vec::new();
    for policy in config.policy_kinds()? {
        let mut builder = ExperimentBuilder::new(system.clone(), policy.clone())
            .engine(engine)
            .warmup(config.warmup)
            .horizon(config.horizon);
        if let Some(n) = config.replications {
            builder = builder.replications_exact(n);
        }
        if let Some(seed) = config.seed {
            builder = builder.seed(seed);
        }
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        let report = builder.run()?;
        print!("{}", render_report(&system, &policy, &report));
        json_results.push(report_to_json(&system, &policy, &report));
    }
    if let Some(out) = out_path {
        let body = serde_json::to_string_pretty(&serde_json::json!({
            "config": config,
            "results": json_results,
        }))?;
        // Atomic (temp file + rename): a crash mid-write can't leave a
        // truncated results file behind.
        write_atomic(std::path::Path::new(out), &body)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("[wrote {out}]");
    }
    Ok(())
}

/// The trace-driven arm of `vsched run`: replays the config's trace under
/// each configured policy and prints the same comparison tables as a
/// static run, plus the per-policy run fingerprint.
fn run_traced_config(
    config: &ExperimentConfig,
    system: &vsched_core::SystemConfig,
    out_path: Option<&str>,
    jobs: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    let schedule = config.schedule()?;
    let engine = config.engine_kind()?;
    // No stopping rule mid-trace: trace runs use a fixed count.
    let replications = config.replications.unwrap_or(3);
    println!("trace: {}", schedule.describe());
    let mut json_results = Vec::new();
    for policy in config.policy_kinds()? {
        let mut exp = vsched_trace::TraceExperiment::new(schedule.clone(), policy.clone())
            .engine(engine)
            .warmup(config.warmup)
            .horizon(config.horizon)
            .replications(replications);
        if let Some(seed) = config.seed {
            exp = exp.seed(seed);
        }
        if let Some(jobs) = jobs {
            exp = exp.jobs(jobs);
        }
        let result = exp.run()?;
        println!(
            "fingerprint {:016x}  ({})",
            result.fingerprint,
            policy.label()
        );
        let report = result.metrics_report(system.total_vcpus(), system.pcpus(), 0.95)?;
        print!("{}", render_report(system, &policy, &report));
        let mut entry = report_to_json(system, &policy, &report);
        if let serde_json::Value::Map(entries) = &mut entry {
            entries.push((
                "fingerprint".to_string(),
                serde_json::Value::Str(format!("{:016x}", result.fingerprint)),
            ));
        }
        json_results.push(entry);
    }
    if let Some(out) = out_path {
        let body = serde_json::to_string_pretty(&serde_json::json!({
            "config": config,
            "results": json_results,
        }))?;
        write_atomic(std::path::Path::new(out), &body)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("[wrote {out}]");
    }
    Ok(())
}
