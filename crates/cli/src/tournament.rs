//! The `vsched tournament` subcommand: a round-robin of scheduling
//! policies across a scenario corpus.
//!
//! Contestants are every policy in the [`PolicyKind::all`] registry
//! (optionally filtered with `--policies`) plus any external agents
//! given with `--agent <cmd>`, which join over the `vsched-env`
//! JSON-lines protocol. The corpus is the lint-clean run configs under
//! `configs/` (sweep specs are skipped) plus a batch of fuzz-generated
//! scenarios from the same [`CaseGen`] the oracle uses, all normalized
//! to the tournament's warmup/horizon/replication settings.
//!
//! Built-in contestants run as campaign cells on the shared
//! `vsched-exec` pool through the content-addressed result store, so a
//! warm re-run simulates **zero** cells and re-ranks from cache alone.
//! External agents cannot be cached (their decision logic lives outside
//! the process); they play one `vsched-env` episode per replication.
//! An agent fault — protocol garbage, timeout, illegal action — forfeits
//! that scenario (last rank) and is reported, but never aborts the
//! tournament.
//!
//! Ranking: per scenario, contestants are ranked on each of the paper's
//! three metrics (average VCPU utilization, VCPU availability, PCPU
//! utilization; higher is better, ties share the best rank). The
//! overall standing is the mean rank across all scenario × metric
//! cells — lower is better.

use std::path::PathBuf;
use std::time::Duration;

use vsched_analyze::AnalyzeOpts;
use vsched_campaign::fsio::read_file;
use vsched_campaign::orchestrator::ensure_cells;
use vsched_campaign::spec::VmWorkloadSpec;
use vsched_campaign::{
    cell_key, CellConfig, DistSpec, EngineSpec, PlannedCell, PolicySpec, ReplicationSpec,
    ResultStore, ShardsSpec, SyncMechanismSpec,
};
use vsched_check::gen::CaseGen;
use vsched_check::{case::LoadSpec, FuzzCase};
use vsched_core::{CoreError, MetricsReport, PolicyKind, SyncMechanism};
use vsched_env::{run_remote_episode, Env, EpisodeError, RemotePolicy};

use crate::config::{ExperimentConfig, WorkloadConfig};

/// The three ranked metrics, in report order.
pub const METRICS: [&str; 3] = ["vcpu_utilization", "vcpu_availability", "pcpu_utilization"];

/// Knobs of one tournament run.
#[derive(Debug, Clone)]
pub struct TournamentOpts {
    /// Directory scanned for run-config scenarios (default `configs`).
    pub config_dir: PathBuf,
    /// Content-addressed result store for built-in contestants.
    pub store_dir: PathBuf,
    /// Number of fuzz-generated scenarios appended to the corpus.
    pub fuzz_scenarios: u64,
    /// Master seed of the fuzz scenario generator.
    pub fuzz_seed: u64,
    /// Restrict built-in contestants to these labels (`rrs`, `credit`, …).
    pub policies: Option<Vec<String>>,
    /// External agent commands, each spawned per scenario episode.
    pub agents: Vec<String>,
    /// Worker threads for cell simulation (`None` = one per core).
    pub jobs: Option<usize>,
    /// Warm-up ticks, applied to every scenario.
    pub warmup: u64,
    /// Measured ticks, applied to every scenario.
    pub horizon: u64,
    /// Replications per contestant per scenario (at least 2 — the
    /// campaign layer insists on confidence intervals).
    pub replications: usize,
    /// Base RNG seed; replication `r` uses `seed + r` on both sides.
    pub seed: u64,
    /// Per-message timeout for external agents.
    pub timeout: Duration,
    /// Suppress progress output.
    pub quiet: bool,
}

impl Default for TournamentOpts {
    fn default() -> Self {
        TournamentOpts {
            config_dir: PathBuf::from("configs"),
            store_dir: PathBuf::from(".tournament-store"),
            fuzz_scenarios: 2,
            fuzz_seed: 42,
            policies: None,
            agents: Vec::new(),
            jobs: None,
            warmup: 500,
            horizon: 4_000,
            replications: 2,
            seed: 0x5eed,
            timeout: Duration::from_secs(10),
            quiet: false,
        }
    }
}

/// One corpus entry: a named system scenario whose `policy` field is a
/// placeholder, replaced per contestant.
#[derive(Debug, Clone)]
pub struct TournamentScenario {
    /// Display name (config file stem or `fuzz-<i>`).
    pub name: String,
    /// The scenario as a campaign cell.
    pub cell: CellConfig,
}

/// One contestant's result on one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioScore {
    /// Metric means in [`METRICS`] order, `None` on forfeit.
    pub values: Option<[f64; 3]>,
    /// The fault that caused a forfeit, if any.
    pub fault: Option<String>,
}

/// One contestant's final standing.
#[derive(Debug, Clone)]
pub struct Standing {
    /// Display name (policy label, or `agent:<name>`).
    pub name: String,
    /// Whether this is a registry policy (cached) or an external agent.
    pub builtin: bool,
    /// Mean rank across all scenario × metric cells (lower is better).
    pub overall: f64,
    /// Mean rank per metric, [`METRICS`] order.
    pub metric_ranks: [f64; 3],
    /// Scenarios forfeited to a fault.
    pub faults: usize,
    /// Per-scenario results, in corpus order.
    pub scores: Vec<ScenarioScore>,
}

/// The full tournament outcome.
#[derive(Debug, Clone)]
pub struct TournamentReport {
    /// Scenario names, in corpus order.
    pub scenarios: Vec<String>,
    /// Scenarios dropped by the lint gate, with the reason.
    pub skipped: Vec<String>,
    /// Standings, best overall rank first.
    pub standings: Vec<Standing>,
    /// Distinct built-in cells requested.
    pub cells: usize,
    /// Cells answered from the store.
    pub cached: usize,
    /// Cells simulated by this run.
    pub simulated: usize,
}

impl TournamentReport {
    /// The one-line cache summary the CLI prints (and CI greps).
    #[must_use]
    pub fn cache_summary(&self) -> String {
        format!(
            "tournament: {} cells, {} cached, {} simulated",
            self.cells, self.cached, self.simulated
        )
    }

    /// Renders the standings table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tournament: {} scenarios x {} contestants\n",
            self.scenarios.len(),
            self.standings.len()
        ));
        for skip in &self.skipped {
            out.push_str(&format!("  skipped {skip}\n"));
        }
        out.push_str(&format!(
            "{:>3}  {:<18} {:>7}  {:>5} {:>5} {:>5}  {:>6}\n",
            "#", "contestant", "overall", "util", "avail", "pcpu", "faults"
        ));
        for (i, s) in self.standings.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}  {:<18} {:>7.2}  {:>5.2} {:>5.2} {:>5.2}  {:>6}\n",
                i + 1,
                s.name,
                s.overall,
                s.metric_ranks[0],
                s.metric_ranks[1],
                s.metric_ranks[2],
                s.faults
            ));
        }
        for s in &self.standings {
            for (score, scenario) in s.scores.iter().zip(&self.scenarios) {
                if let Some(fault) = &score.fault {
                    out.push_str(&format!("forfeit: {} on {scenario}: {fault}\n", s.name));
                }
            }
        }
        out.push_str(&self.cache_summary());
        out.push('\n');
        out
    }

    /// Machine-readable report. Byte-stable across warm re-runs: the
    /// standings derive from stored (lossless-round-trip) cell results.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let standings: Vec<serde_json::Value> = self
            .standings
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let results: Vec<serde_json::Value> = s
                    .scores
                    .iter()
                    .zip(&self.scenarios)
                    .map(|(score, scenario)| match (&score.values, &score.fault) {
                        (Some(v), _) => serde_json::json!({
                            "scenario": scenario,
                            "vcpu_utilization": v[0],
                            "vcpu_availability": v[1],
                            "pcpu_utilization": v[2],
                        }),
                        (None, fault) => serde_json::json!({
                            "scenario": scenario,
                            "fault": fault.clone().unwrap_or_default(),
                        }),
                    })
                    .collect();
                serde_json::json!({
                    "rank": i + 1,
                    "name": s.name,
                    "builtin": s.builtin,
                    "overall": s.overall,
                    "metric_ranks": serde_json::json!({
                        "vcpu_utilization": s.metric_ranks[0],
                        "vcpu_availability": s.metric_ranks[1],
                        "pcpu_utilization": s.metric_ranks[2],
                    }),
                    "faults": s.faults,
                    "results": results,
                })
            })
            .collect();
        serde_json::json!({
            "scenarios": self.scenarios.clone(),
            "skipped": self.skipped.clone(),
            "standings": standings,
            "cells": serde_json::json!({
                "unique": self.cells,
                "cached": self.cached,
                "simulated": self.simulated,
            }),
        })
    }
}

/// The canonical lower-case label of a registry policy (its config-file
/// spelling: `rrs`, `credit`, …).
fn spec_label(kind: &PolicyKind) -> String {
    match PolicySpec::from_kind(kind) {
        PolicySpec::Label(label) => label,
        // Registry entries are all defaults, which collapse to labels.
        _ => kind.label().to_ascii_lowercase(),
    }
}

/// Converts a run config into a tournament cell. The config's own
/// `policies`, run lengths, and seed are ignored — every scenario runs
/// under the tournament's normalized settings so ranks are comparable.
fn cell_from_config(
    config: &ExperimentConfig,
    opts: &TournamentOpts,
) -> Result<CellConfig, CoreError> {
    let engine = match config.engine.as_str() {
        "san" => EngineSpec::San,
        "direct" => EngineSpec::Direct,
        other => {
            return Err(CoreError::InvalidConfig {
                reason: format!("unknown engine `{other}` (expected `san` or `direct`)"),
            })
        }
    };
    let weights: Vec<u32> = config.vms.iter().map(|vm| vm.weight.unwrap_or(1)).collect();
    let overrides: Vec<VmWorkloadSpec> = config
        .vms
        .iter()
        .map(|vm| workload_override(vm.workload.as_ref()))
        .collect::<Result<_, _>>()?;
    Ok(CellConfig {
        pcpus: config.pcpus,
        vms: config.vms.iter().map(|vm| vm.vcpus).collect(),
        trace: None,
        weights: if weights.iter().all(|&w| w == 1) {
            None
        } else {
            Some(weights)
        },
        sync_ratio: (1, 5),
        sync_probability: None,
        sync_every: None,
        sync_mechanism: SyncMechanismSpec::Barrier,
        timeslice: config.timeslice.unwrap_or(30),
        load: DistSpec::Uniform {
            low: 5.0,
            high: 15.0,
        },
        interarrival: None,
        vm_workloads: if overrides.iter().all(VmWorkloadSpec::is_noop) {
            None
        } else {
            Some(overrides)
        },
        policy: PolicySpec::Label("rrs".into()),
        engine,
        warmup: opts.warmup,
        horizon: opts.horizon,
        replications: ReplicationSpec::Exact(opts.replications),
        seed: opts.seed,
        shards: ShardsSpec::default(),
    })
}

fn workload_override(workload: Option<&WorkloadConfig>) -> Result<VmWorkloadSpec, CoreError> {
    let Some(w) = workload else {
        return Ok(VmWorkloadSpec::default());
    };
    Ok(VmWorkloadSpec {
        load: w.load.clone(),
        sync_ratio: w.sync_ratio,
        sync_every: w.sync_every,
        sync_mechanism: match w.sync_mechanism.as_deref() {
            None => None,
            Some("barrier") => Some(SyncMechanismSpec::Barrier),
            Some("spinlock") => Some(SyncMechanismSpec::Spinlock),
            Some(other) => {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "unknown sync_mechanism `{other}` (expected `barrier` or `spinlock`)"
                    ),
                })
            }
        },
        interarrival: w.interarrival.clone(),
    })
}

/// Converts a fuzz case into a tournament cell. Topology, workload,
/// synchronization, and timeslice come from the generator; run lengths
/// and seed are normalized like every other scenario. Engines alternate
/// by case index so both implementations stay in the corpus.
fn cell_from_case(case: &FuzzCase, opts: &TournamentOpts) -> CellConfig {
    let weights: Vec<u32> = case.vms.iter().map(|vm| vm.weight).collect();
    CellConfig {
        pcpus: case.pcpus,
        vms: case.vms.iter().map(|vm| vm.vcpus).collect(),
        trace: None,
        weights: if weights.iter().all(|&w| w == 1) {
            None
        } else {
            Some(weights)
        },
        sync_ratio: (1, 5),
        sync_probability: if case.sync.every.is_some() {
            None
        } else {
            Some(case.sync.probability)
        },
        sync_every: case.sync.every,
        sync_mechanism: match case.sync.mechanism {
            SyncMechanism::Barrier => SyncMechanismSpec::Barrier,
            SyncMechanism::SpinLock => SyncMechanismSpec::Spinlock,
        },
        timeslice: case.timeslice,
        load: match case.load {
            LoadSpec::Deterministic { value } => DistSpec::Deterministic { value },
            LoadSpec::Uniform { low, high } => DistSpec::Uniform { low, high },
            LoadSpec::Exponential { mean } => DistSpec::Exponential { mean },
        },
        interarrival: None,
        vm_workloads: None,
        policy: PolicySpec::Label("rrs".into()),
        engine: if case.case_index.is_multiple_of(2) {
            EngineSpec::San
        } else {
            EngineSpec::Direct
        },
        warmup: opts.warmup,
        horizon: opts.horizon,
        replications: ReplicationSpec::Exact(opts.replications),
        seed: opts.seed,
        shards: ShardsSpec::default(),
    }
}

/// Builds the scenario corpus: run configs from the config directory
/// (sweep specs skipped, sorted by file name), then fuzz scenarios.
/// Scenarios that fail the static lint gate are dropped with a note.
pub fn build_corpus(
    opts: &TournamentOpts,
) -> Result<(Vec<TournamentScenario>, Vec<String>), Box<dyn std::error::Error>> {
    let mut scenarios = Vec::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    if opts.config_dir.is_dir() {
        for entry in std::fs::read_dir(&opts.config_dir)
            .map_err(|e| format!("cannot read {}: {e}", opts.config_dir.display()))?
        {
            let path = entry
                .map_err(|e| format!("cannot read {}: {e}", opts.config_dir.display()))?
                .path();
            if path.extension().is_some_and(|e| e == "json") {
                paths.push(path);
            }
        }
    }
    paths.sort();
    for path in paths {
        let text = read_file(&path)?;
        if is_sweep_spec(&text) {
            continue;
        }
        let config =
            ExperimentConfig::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into(),
        );
        // Trace-driven configs describe a churning VM population; the
        // tournament normalizes every contestant onto static scenarios
        // (episodes included), so they are out of scope here.
        if config.trace.is_some() {
            continue;
        }
        let cell = cell_from_config(&config, opts).map_err(|e| format!("{name}: {e}"))?;
        scenarios.push(TournamentScenario { name, cell });
    }
    let generator = CaseGen::new(opts.fuzz_seed);
    for i in 0..opts.fuzz_scenarios {
        scenarios.push(TournamentScenario {
            name: format!("fuzz-{i}"),
            cell: cell_from_case(&generator.case(i), opts),
        });
    }

    // The lint gate: a scenario whose SAN model has structural errors
    // (dead activities, broken conservation) would rank policies on a
    // broken playing field — drop it loudly instead.
    let mut skipped = Vec::new();
    let mut clean = Vec::new();
    for scenario in scenarios {
        let system = scenario
            .cell
            .system()
            .map_err(|e| format!("{}: {e}", scenario.name))?;
        let report = vsched_analyze::lint_config(
            &format!("tournament:{}", scenario.name),
            &system,
            &PolicyKind::RoundRobin,
            &AnalyzeOpts::default(),
        )?;
        if report.denied(false) {
            skipped.push(format!("{} (lint errors)", scenario.name));
        } else {
            clean.push(scenario);
        }
    }
    Ok((clean, skipped))
}

/// A lint input is a sweep spec iff its top-level object has an
/// `experiments` key.
fn is_sweep_spec(text: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(text)
        .ok()
        .and_then(|v| {
            v.as_map()
                .map(|m| m.iter().any(|(k, _)| k == "experiments"))
        })
        .unwrap_or(false)
}

/// The built-in contestants after the `--policies` filter.
///
/// # Errors
///
/// A message naming any filter label that matches no registry entry.
pub fn select_builtins(filter: Option<&[String]>) -> Result<Vec<PolicyKind>, String> {
    let all = PolicyKind::all();
    let Some(filter) = filter else {
        return Ok(all);
    };
    for want in filter {
        if !all.iter().any(|k| {
            want.eq_ignore_ascii_case(k.label()) || want.eq_ignore_ascii_case(&spec_label(k))
        }) {
            let labels: Vec<String> = all.iter().map(spec_label).collect();
            return Err(format!(
                "unknown policy `{want}` (registered: {})",
                labels.join(", ")
            ));
        }
    }
    Ok(all
        .into_iter()
        .filter(|k| {
            filter.iter().any(|want| {
                want.eq_ignore_ascii_case(k.label()) || want.eq_ignore_ascii_case(&spec_label(k))
            })
        })
        .collect())
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn report_values(report: &MetricsReport) -> [f64; 3] {
    [
        mean(report.vcpu_utilization.iter().map(|ci| ci.mean)),
        mean(report.vcpu_availability.iter().map(|ci| ci.mean)),
        mean(report.pcpu_utilization.iter().map(|ci| ci.mean)),
    ]
}

/// Runs the full tournament.
///
/// # Errors
///
/// Unreadable corpus or store, invalid scenarios, or environment-side
/// failures. Agent faults are *not* errors — they forfeit scenarios and
/// appear in the report.
pub fn run_tournament(
    opts: &TournamentOpts,
) -> Result<TournamentReport, Box<dyn std::error::Error>> {
    let (scenarios, skipped) = build_corpus(opts)?;
    if scenarios.is_empty() {
        return Err("tournament corpus is empty (no run configs, no fuzz scenarios)".into());
    }
    let builtins = select_builtins(opts.policies.as_deref())?;
    if builtins.is_empty() && opts.agents.is_empty() {
        return Err("no contestants (empty --policies filter and no --agent)".into());
    }

    // Built-in contestants: one campaign cell per (scenario, policy),
    // content-addressed so warm re-runs simulate nothing.
    let mut planned = Vec::with_capacity(scenarios.len() * builtins.len());
    for scenario in &scenarios {
        for kind in &builtins {
            let mut cell = scenario.cell.clone();
            cell.policy = PolicySpec::from_kind(kind);
            planned.push(PlannedCell {
                key: cell_key(&cell),
                config: cell,
                labels: vec![scenario.name.clone(), kind.label().to_string()],
            });
        }
    }
    let store = ResultStore::open(&opts.store_dir)?;
    let refs: Vec<&PlannedCell> = planned.iter().collect();
    let jobs = vsched_exec::resolve_jobs(opts.jobs);
    let quiet = opts.quiet;
    let stats = ensure_cells(&store, &refs, jobs, None, &move |done, total, cell| {
        if !quiet {
            println!("  sim [{done}/{total}] {}", cell.labels.join(" / "));
        }
    })?;

    struct Raw {
        name: String,
        builtin: bool,
        scores: Vec<ScenarioScore>,
    }
    let mut raw: Vec<Raw> = Vec::new();

    for (b, kind) in builtins.iter().enumerate() {
        let mut scores = Vec::with_capacity(scenarios.len());
        for (s, _) in scenarios.iter().enumerate() {
            let cell = &planned[s * builtins.len() + b];
            let stored = store
                .load(&cell.key)?
                .ok_or_else(|| format!("store lost cell {}", cell.key))?;
            scores.push(ScenarioScore {
                values: Some(report_values(&stored.report)),
                fault: None,
            });
        }
        raw.push(Raw {
            name: spec_label(kind),
            builtin: true,
            scores,
        });
    }

    // External agents: one env episode per replication, fresh process
    // each (an episode ends the agent's stdin/stdout conversation).
    for (a, command) in opts.agents.iter().enumerate() {
        let mut display: Option<String> = None;
        let mut scores = Vec::with_capacity(scenarios.len());
        for scenario in &scenarios {
            let mut sums = [0.0f64; 3];
            let mut fault: Option<String> = None;
            for rep in 0..opts.replications {
                let seed = scenario.cell.seed.wrapping_add(rep as u64);
                let mut agent = match RemotePolicy::spawn(command, &scenario.name, opts.timeout) {
                    Ok(agent) => agent,
                    Err(f) => {
                        fault = Some(f.to_string());
                        break;
                    }
                };
                if display.is_none() {
                    display = Some(format!("agent:{}", agent.name()));
                }
                let system = scenario.cell.system()?;
                let env_scenario = vsched_env::Scenario::new(system)
                    .engine(scenario.cell.engine.to_engine())
                    .warmup(scenario.cell.warmup)
                    .horizon(scenario.cell.horizon);
                let mut env = Env::new(env_scenario)
                    .fields(agent.fields())
                    .agent_name(agent.name());
                match run_remote_episode(&mut env, &mut agent, seed) {
                    Ok(run) => {
                        sums[0] += run.end.metrics.avg_vcpu_utilization();
                        sums[1] += run.end.metrics.avg_vcpu_availability();
                        sums[2] += run.end.metrics.avg_pcpu_utilization();
                    }
                    Err(EpisodeError::Fault(f)) => {
                        fault = Some(f.to_string());
                        break;
                    }
                    Err(EpisodeError::Env(e)) => return Err(Box::new(e)),
                }
            }
            scores.push(match fault {
                Some(fault) => ScenarioScore {
                    values: None,
                    fault: Some(fault),
                },
                None => ScenarioScore {
                    values: Some(sums.map(|v| v / opts.replications as f64)),
                    fault: None,
                },
            });
            if !opts.quiet {
                let name = display.as_deref().unwrap_or(command);
                match &scores.last().unwrap().fault {
                    Some(f) => println!("  agent [{name}] {}: forfeit ({f})", scenario.name),
                    None => println!("  agent [{name}] {}: ok", scenario.name),
                }
            }
        }
        let mut name = display.unwrap_or_else(|| format!("agent:{command}"));
        if raw.iter().any(|r| r.name == name) {
            name = format!("{name}#{}", a + 1);
        }
        raw.push(Raw {
            name,
            builtin: false,
            scores,
        });
    }

    // Competition ranking per scenario × metric: ties share the best
    // rank, forfeits rank last.
    let n = raw.len();
    let mut rank_sums = vec![[0.0f64; 3]; n];
    for s in 0..scenarios.len() {
        for m in 0..3 {
            let vals: Vec<Option<f64>> = raw
                .iter()
                .map(|r| r.scores[s].values.map(|v| v[m]))
                .collect();
            for (c, val) in vals.iter().enumerate() {
                let rank = match val {
                    None => n,
                    Some(v) => {
                        1 + vals
                            .iter()
                            .filter(|o| matches!(o, Some(w) if w > v))
                            .count()
                    }
                };
                rank_sums[c][m] += rank as f64;
            }
        }
    }

    let num_scenarios = scenarios.len() as f64;
    let mut standings: Vec<Standing> = raw
        .into_iter()
        .zip(rank_sums)
        .map(|(r, sums)| {
            let metric_ranks = sums.map(|x| x / num_scenarios);
            Standing {
                overall: metric_ranks.iter().sum::<f64>() / 3.0,
                metric_ranks,
                faults: r.scores.iter().filter(|s| s.fault.is_some()).count(),
                name: r.name,
                builtin: r.builtin,
                scores: r.scores,
            }
        })
        .collect();
    standings.sort_by(|a, b| {
        a.overall
            .partial_cmp(&b.overall)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });

    Ok(TournamentReport {
        scenarios: scenarios.into_iter().map(|s| s.name).collect(),
        skipped,
        standings,
        cells: stats.unique,
        cached: stats.cached,
        simulated: stats.simulated,
    })
}

/// Renders the `vsched policies` registry listing: every policy the
/// fuzz generator, the linter, and the tournament draw from, with its
/// config-file label and declared snapshot-view fields.
#[must_use]
pub fn render_policy_registry() -> String {
    let mut out = String::new();
    let all = PolicyKind::all();
    out.push_str(&format!(
        "{} registered policies (label = config-file spelling):\n",
        all.len()
    ));
    for kind in &all {
        let policy = kind.create();
        let fields = policy.snapshot_view();
        let declared = fields.declared();
        let fields_text = if declared.is_empty() {
            "(none)".to_string()
        } else {
            declared.join(", ")
        };
        out.push_str(&format!(
            "  {:<8} {:<5} {}\n           reads: {fields_text}\n",
            spec_label(kind),
            kind.label(),
            kind.describe()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn quick_opts(dir: &Path) -> TournamentOpts {
        TournamentOpts {
            config_dir: PathBuf::from("/nonexistent"),
            store_dir: dir.join("store"),
            fuzz_scenarios: 2,
            warmup: 50,
            horizon: 300,
            quiet: true,
            ..TournamentOpts::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vsched-tourney-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn corpus_converts_configs_and_fuzz_cases() {
        let dir = temp_dir("corpus");
        std::fs::write(
            dir.join("hetero.json"),
            r#"{ "pcpus": 2,
                 "vms": [
                   { "vcpus": 1, "weight": 3,
                     "workload": { "sync_ratio": [1, 3], "sync_mechanism": "spinlock" } },
                   { "vcpus": 2 } ],
                 "engine": "direct", "timeslice": 12 }"#,
        )
        .unwrap();
        // Sweep specs are skipped, not errors.
        std::fs::write(
            dir.join("sweep.json"),
            r#"{ "experiments": [ { "name": "x", "base": { "pcpus": 1, "vms": [1] } } ] }"#,
        )
        .unwrap();
        let opts = TournamentOpts {
            config_dir: dir.clone(),
            fuzz_scenarios: 2,
            ..quick_opts(&dir)
        };
        let (scenarios, skipped) = build_corpus(&opts).unwrap();
        assert!(skipped.is_empty(), "{skipped:?}");
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[0].name, "hetero");
        let cell = &scenarios[0].cell;
        assert_eq!(cell.weights, Some(vec![3, 1]));
        assert_eq!(cell.engine, EngineSpec::Direct);
        assert_eq!(cell.timeslice, 12);
        assert_eq!(cell.warmup, opts.warmup);
        assert_eq!(cell.horizon, opts.horizon);
        let overrides = cell.vm_workloads.as_ref().unwrap();
        assert_eq!(
            overrides[0].sync_mechanism,
            Some(SyncMechanismSpec::Spinlock)
        );
        assert!(overrides[1].is_noop());
        // The cell builds the same system the run config describes.
        let system = cell.system().unwrap();
        assert_eq!(system.vms()[0].weight, 3);
        assert_eq!(
            system.vms()[0].workload.sync_mechanism,
            SyncMechanism::SpinLock
        );
        // Fuzz scenarios are named and normalized.
        assert_eq!(scenarios[1].name, "fuzz-0");
        assert_eq!(scenarios[1].cell.warmup, opts.warmup);
        assert_eq!(scenarios[1].cell.replications, ReplicationSpec::Exact(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_filter_selects_and_rejects() {
        assert_eq!(select_builtins(None).unwrap(), PolicyKind::all());
        let picked = select_builtins(Some(&["rrs".to_string(), "CREDIT".to_string()])).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], PolicyKind::RoundRobin);
        assert_eq!(picked[1], PolicyKind::credit_default());
        let err = select_builtins(Some(&["quantum".to_string()])).unwrap_err();
        assert!(err.contains("quantum") && err.contains("rrs"), "{err}");
    }

    #[test]
    fn tournament_ranks_builtins_and_warm_rerun_simulates_nothing() {
        let dir = temp_dir("rank");
        let opts = TournamentOpts {
            policies: Some(vec!["rrs".into(), "scs".into()]),
            ..quick_opts(&dir)
        };
        let cold = run_tournament(&opts).unwrap();
        assert_eq!(cold.scenarios, vec!["fuzz-0", "fuzz-1"]);
        assert_eq!(cold.standings.len(), 2);
        assert_eq!(cold.cells, 4);
        assert_eq!(cold.simulated, 4);
        assert!(cold.standings[0].overall <= cold.standings[1].overall);
        for s in &cold.standings {
            assert_eq!(s.faults, 0);
            assert!(s.builtin);
            assert!((1.0..=2.0).contains(&s.overall), "{}", s.overall);
        }
        // Warm re-run: same ranking, zero simulations, identical JSON.
        let warm = run_tournament(&opts).unwrap();
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.cached, 4);
        assert!(warm.cache_summary().contains("0 simulated"));
        // Identical ranking JSON modulo the trailing cache-stats object.
        let strip = |report: &TournamentReport| {
            let text = serde_json::to_string(&report.to_json()).unwrap();
            text.split("\"cells\"").next().unwrap().to_string()
        };
        assert_eq!(strip(&cold), strip(&warm));
        let text = warm.render_text();
        assert!(text.contains("2 scenarios x 2 contestants"), "{text}");
        assert!(
            text.contains("tournament: 4 cells, 4 cached, 0 simulated"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_listing_names_every_policy() {
        let text = render_policy_registry();
        for kind in PolicyKind::all() {
            assert!(text.contains(&spec_label(&kind)), "{text}");
        }
        assert!(text.contains("reads:"), "{text}");
    }
}
