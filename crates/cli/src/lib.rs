//! # vsched-cli — experiment configs and the `vsched` command
//!
//! The paper's pitch is that a user assembles a virtualization system,
//! plugs in an algorithm, and simulates — without writing simulator code.
//! The `vsched` binary delivers that workflow from the shell: experiments
//! are JSON files (see [`ExperimentConfig`]), results print as tables and
//! optionally dump as JSON.
//!
//! ```json
//! {
//!   "pcpus": 4,
//!   "vms": [
//!     { "vcpus": 2 },
//!     { "vcpus": 4, "weight": 2, "workload": {
//!         "load": { "uniform": { "low": 5.0, "high": 15.0 } },
//!         "sync_ratio": [1, 3],
//!         "sync_mechanism": "barrier" } }
//!   ],
//!   "timeslice": 30,
//!   "policies": ["rrs", "scs", { "rcs": { "skew_threshold": 5, "skew_resume": 2 } }],
//!   "engine": "san",
//!   "warmup": 1000,
//!   "horizon": 20000
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod output;
pub mod perf;
pub mod tournament;

pub use config::{
    CreditParams, DistSpec, ExperimentConfig, PolicySpec, RcsParams, VmConfig, WorkloadConfig,
};
pub use output::render_report;
pub use perf::{run_perf, PerfOpts, PerfReport};
pub use tournament::{render_policy_registry, run_tournament, TournamentOpts, TournamentReport};
