//! JSON experiment configuration and its mapping onto `vsched-core`.
//!
//! The distribution and policy spec types are shared with the campaign
//! subsystem and live in `vsched_campaign::spec`; they are re-exported
//! here so existing `vsched_cli::config` users keep compiling.

use serde::{Deserialize, Serialize};
use vsched_core::{
    config::SyncMechanism, CoreError, Engine, PolicyKind, SystemConfig, VmSpec, WorkloadSpec,
};

pub use vsched_campaign::spec::{CreditParams, DistSpec, PolicySpec, RcsParams};

/// Workload section of a VM config. Every field is optional; omissions
/// fall back to the paper's defaults (uniform[5,15), sync 1:5, barrier,
/// saturated generation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WorkloadConfig {
    /// Job-duration distribution.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load: Option<DistSpec>,
    /// Synchronization ratio as the paper writes it: `[1, 5]` is 1:5.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_ratio: Option<(u32, u32)>,
    /// `"barrier"` (default) or `"spinlock"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_mechanism: Option<String>,
    /// Deterministic pattern: every `k`-th workload is a sync point
    /// (overrides the Bernoulli ratio).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_every: Option<u32>,
    /// Interarrival distribution; omit for a saturated generator.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interarrival: Option<DistSpec>,
}

impl WorkloadConfig {
    fn to_spec(&self) -> Result<WorkloadSpec, CoreError> {
        let mut spec = WorkloadSpec::paper_default();
        if let Some(load) = &self.load {
            spec.load = load.to_dist()?;
        }
        if let Some((a, b)) = self.sync_ratio {
            spec = spec.with_sync_ratio(a, b)?;
        }
        if let Some(mechanism) = &self.sync_mechanism {
            spec.sync_mechanism = match mechanism.as_str() {
                "barrier" => SyncMechanism::Barrier,
                "spinlock" => SyncMechanism::SpinLock,
                other => {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "unknown sync_mechanism `{other}` (expected `barrier` or `spinlock`)"
                        ),
                    })
                }
            };
        }
        if let Some(k) = self.sync_every {
            spec = spec.with_sync_every(k)?;
        }
        if let Some(inter) = &self.interarrival {
            spec.interarrival = Some(inter.to_dist()?);
        }
        Ok(spec)
    }
}

/// One VM in the config file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VmConfig {
    /// Number of VCPUs.
    pub vcpus: usize,
    /// Proportional-share weight (default 1).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub weight: Option<u32>,
    /// Workload overrides (default: the paper's workload).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workload: Option<WorkloadConfig>,
}

/// `skip_serializing_if` gate for `pcpus`: `0` means "the trace supplies
/// the platform".
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_zero(n: &usize) -> bool {
    *n == 0
}

fn default_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Label("rrs".into()),
        PolicySpec::Label("scs".into()),
        PolicySpec::Label("rcs".into()),
    ]
}

fn default_engine() -> String {
    "san".into()
}

fn default_warmup() -> u64 {
    1_000
}

fn default_horizon() -> u64 {
    20_000
}

/// A complete experiment: the system, the policies to compare, and the
/// simulation parameters.
///
/// Unknown fields are rejected — a typo'd key (`"timeslise"`) fails the
/// parse instead of being silently defaulted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExperimentConfig {
    /// Number of physical CPUs. With a `trace`, omit it (the trace header
    /// carries the platform) — unless the trace is a CSV dataset, which
    /// carries none, where this supplies the PCPU count.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub pcpus: usize,
    /// The VMs. Empty when a `trace` defines them.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub vms: Vec<VmConfig>,
    /// Path to a workload trace (`.jsonl` standard format or `.csv`
    /// Azure-style lifetimes, resolved relative to the working
    /// directory). When set, the run is **trace-driven**: VMs arrive,
    /// depart and change load as the trace dictates, and the config's
    /// `policies`, `engine`, `warmup`, `horizon`, `seed` and
    /// `replications` control the comparison.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// Scheduler timeslice in ticks (default 30).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeslice: Option<u64>,
    /// Policies to compare (default: the paper's RRS/SCS/RCS trio).
    #[serde(default = "default_policies")]
    pub policies: Vec<PolicySpec>,
    /// `"san"` (default) or `"direct"`.
    #[serde(default = "default_engine")]
    pub engine: String,
    /// Warm-up ticks per replication (default 1000).
    #[serde(default = "default_warmup")]
    pub warmup: u64,
    /// Observed ticks per replication (default 20000).
    #[serde(default = "default_horizon")]
    pub horizon: u64,
    /// Exact replication count; omit to use the paper's stopping rule.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub replications: Option<usize>,
    /// Base RNG seed (default 0x5eed).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Replication worker threads; omit (or `0`) for one per core. Any
    /// value produces bit-identical results — see `vsched-exec`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub jobs: Option<usize>,
}

impl ExperimentConfig {
    /// Parses a config from JSON text and validates its parameter ranges:
    /// a zero timeslice, a zero replication count, or out-of-domain policy
    /// parameters (e.g. an RCS skew threshold of 0) are rejected here, at
    /// load time, instead of surfacing mid-run.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] with the JSON error message or the
    /// offending parameter.
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let config: Self = serde_json::from_str(text).map_err(|e| CoreError::InvalidConfig {
            reason: format!("config parse error: {e}"),
        })?;
        if config.timeslice == Some(0) {
            return Err(CoreError::InvalidConfig {
                reason: "timeslice must be at least 1 tick".into(),
            });
        }
        if config.replications == Some(0) {
            return Err(CoreError::InvalidConfig {
                reason: "replications must be at least 1".into(),
            });
        }
        if let Some(trace) = &config.trace {
            if !config.vms.is_empty() {
                return Err(CoreError::InvalidConfig {
                    reason: "a trace-driven config must omit `vms` (the trace defines the VMs)"
                        .into(),
                });
            }
            let is_csv = std::path::Path::new(trace)
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
            if is_csv && config.pcpus == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("CSV trace `{trace}` carries no platform: set `pcpus`"),
                });
            }
            if !is_csv && config.pcpus != 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("trace `{trace}` carries its own platform: omit `pcpus`"),
                });
            }
        } else if config.pcpus == 0 || config.vms.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "need at least 1 PCPU and 1 VM (or a `trace`)".into(),
            });
        }
        for spec in &config.policies {
            // Unknown labels keep failing later, in `policy_kinds`, with
            // their own message; here we only range-check resolvable ones.
            if let Ok(kind) = spec.to_kind() {
                kind.validate()?;
            }
        }
        Ok(config)
    }

    /// Loads and compiles this config's trace schedule.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when no `trace` is set, or with the
    /// trace reader's `path:line`-annotated message when the file is
    /// missing or malformed.
    pub fn schedule(&self) -> Result<vsched_trace::TraceSchedule, CoreError> {
        let Some(trace) = &self.trace else {
            return Err(CoreError::InvalidConfig {
                reason: "config has no `trace` field".into(),
            });
        };
        let csv_meta = vsched_trace::TraceMeta::new(self.pcpus);
        vsched_trace::load_trace(std::path::Path::new(trace), &csv_meta).map_err(|e| {
            CoreError::InvalidConfig {
                reason: e.to_string(),
            }
        })
    }

    /// Builds the [`SystemConfig`] this experiment describes — for a
    /// trace-driven config, the trace's union topology.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the builder.
    pub fn system(&self) -> Result<SystemConfig, CoreError> {
        if self.trace.is_some() {
            return Ok(self.schedule()?.config().clone());
        }
        let mut b = SystemConfig::builder().pcpus(self.pcpus);
        if let Some(ts) = self.timeslice {
            b = b.timeslice(ts);
        }
        for vm in &self.vms {
            let workload = match &vm.workload {
                Some(w) => w.to_spec()?,
                None => WorkloadSpec::paper_default(),
            };
            b = b.vm_spec(VmSpec {
                vcpus: vm.vcpus,
                workload,
                weight: vm.weight.unwrap_or(1),
            });
        }
        b.build()
    }

    /// The policies to compare.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown policy.
    pub fn policy_kinds(&self) -> Result<Vec<PolicyKind>, CoreError> {
        self.policies.iter().map(PolicySpec::to_kind).collect()
    }

    /// The engine selection.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown engine name.
    pub fn engine_kind(&self) -> Result<Engine, CoreError> {
        match self.engine.as_str() {
            "san" => Ok(Engine::San),
            "direct" => Ok(Engine::Direct),
            other => Err(CoreError::InvalidConfig {
                reason: format!("unknown engine `{other}` (expected `san` or `direct`)"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
        "pcpus": 4,
        "vms": [
            { "vcpus": 2 },
            { "vcpus": 4, "weight": 2, "workload": {
                "load": { "uniform": { "low": 5.0, "high": 15.0 } },
                "sync_ratio": [1, 3],
                "sync_mechanism": "spinlock" } }
        ],
        "timeslice": 12,
        "policies": ["rrs", { "rcs": { "skew_threshold": 7, "skew_resume": 3 } }],
        "engine": "direct",
        "warmup": 500,
        "horizon": 5000,
        "replications": 3,
        "seed": 42,
        "jobs": 2
    }"#;

    #[test]
    fn full_config_round_trips() {
        let cfg = ExperimentConfig::from_json(FULL).unwrap();
        assert_eq!(cfg.jobs, Some(2));
        let json = serde_json::to_string(&cfg).unwrap();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn full_config_builds_system() {
        let cfg = ExperimentConfig::from_json(FULL).unwrap();
        let system = cfg.system().unwrap();
        assert_eq!(system.pcpus(), 4);
        assert_eq!(system.total_vcpus(), 6);
        assert_eq!(system.timeslice(), 12);
        assert_eq!(system.vms()[1].weight, 2);
        assert_eq!(
            system.vms()[1].workload.sync_mechanism,
            SyncMechanism::SpinLock
        );
        assert!((system.vms()[1].workload.sync_probability - 1.0 / 3.0).abs() < 1e-12);
        // VM 0 uses the paper defaults.
        assert_eq!(system.vms()[0].workload.sync_probability, 0.2);
    }

    #[test]
    fn policies_resolve() {
        let cfg = ExperimentConfig::from_json(FULL).unwrap();
        let kinds = cfg.policy_kinds().unwrap();
        assert_eq!(kinds[0], PolicyKind::RoundRobin);
        assert_eq!(
            kinds[1],
            PolicyKind::RelaxedCo {
                skew_threshold: 7,
                skew_resume: 3
            }
        );
        assert_eq!(cfg.engine_kind().unwrap(), Engine::Direct);
    }

    #[test]
    fn minimal_config_uses_defaults() {
        let cfg =
            ExperimentConfig::from_json(r#"{ "pcpus": 2, "vms": [{ "vcpus": 1 }] }"#).unwrap();
        assert_eq!(cfg.policy_kinds().unwrap().len(), 3, "paper trio default");
        assert_eq!(cfg.engine_kind().unwrap(), Engine::San);
        assert_eq!(cfg.warmup, 1_000);
        assert_eq!(cfg.horizon, 20_000);
        assert!(cfg.replications.is_none());
        assert!(cfg.jobs.is_none(), "jobs defaults to auto");
        let system = cfg.system().unwrap();
        assert_eq!(system.timeslice(), 30);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(ExperimentConfig::from_json("{").is_err());
        let cfg = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "policies": ["nope"] }"#,
        )
        .unwrap();
        assert!(cfg.policy_kinds().is_err());
        let cfg = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "engine": "quantum" }"#,
        )
        .unwrap();
        assert!(cfg.engine_kind().is_err());
        let cfg = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1, "workload": { "sync_mechanism": "mutex" } }] }"#,
        )
        .unwrap();
        assert!(cfg.system().is_err());
    }

    #[test]
    fn out_of_range_parameters_fail_at_load() {
        let err = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "timeslice": 0 }"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("timeslice"), "{err}");

        let err = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "replications": 0 }"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("replications"), "{err}");

        let err = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }],
                 "policies": [{ "rcs": { "skew_threshold": 0, "skew_resume": 0 } }] }"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("skew_threshold"), "{err}");

        // Valid boundary values still load.
        ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "timeslice": 1, "replications": 1 }"#,
        )
        .unwrap();
    }

    #[test]
    fn typo_fields_fail_loudly() {
        // Top-level typo: "timeslise" instead of "timeslice".
        let err = ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1 }], "timeslise": 10 }"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("timeslise"), "{err}");
        // Nested typos: VM and workload sections.
        assert!(ExperimentConfig::from_json(
            r#"{ "pcpus": 1, "vms": [{ "vcpus": 1, "wieght": 2 }] }"#
        )
        .is_err());
        assert!(ExperimentConfig::from_json(
            r#"{ "pcpus": 1,
                 "vms": [{ "vcpus": 1, "workload": { "sync_ration": [1, 5] } }] }"#
        )
        .is_err());
    }

    #[test]
    fn trace_config_validates_and_round_trips() {
        let cfg = ExperimentConfig::from_json(
            r#"{ "trace": "configs/traces/churn_small.jsonl", "policies": ["rrs"] }"#,
        )
        .unwrap();
        assert_eq!(cfg.pcpus, 0);
        assert!(cfg.vms.is_empty());
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(!json.contains("pcpus"), "{json}");
        assert_eq!(cfg, ExperimentConfig::from_json(&json).unwrap());

        // Conflicting topology is rejected at load time.
        let err = ExperimentConfig::from_json(r#"{ "trace": "t.jsonl", "vms": [{ "vcpus": 1 }] }"#)
            .unwrap_err();
        assert!(err.to_string().contains("omit `vms`"), "{err}");
        let err = ExperimentConfig::from_json(r#"{ "trace": "t.jsonl", "pcpus": 2 }"#).unwrap_err();
        assert!(err.to_string().contains("omit `pcpus`"), "{err}");
        let err = ExperimentConfig::from_json(r#"{ "trace": "t.csv" }"#).unwrap_err();
        assert!(err.to_string().contains("set `pcpus`"), "{err}");
        ExperimentConfig::from_json(r#"{ "trace": "t.csv", "pcpus": 4 }"#).unwrap();
        // No trace and no topology is still an error.
        let err = ExperimentConfig::from_json(r#"{ }"#).unwrap_err();
        assert!(err.to_string().contains("at least 1 PCPU"), "{err}");
    }

    #[test]
    fn trace_config_missing_file_reports_the_path() {
        let cfg = ExperimentConfig::from_json(r#"{ "trace": "/nonexistent/t.jsonl" }"#).unwrap();
        let err = cfg.schedule().unwrap_err();
        assert!(err.to_string().contains("/nonexistent/t.jsonl"), "{err}");
        // `system()` on a non-trace config never consults the reader.
        let cfg =
            ExperimentConfig::from_json(r#"{ "pcpus": 2, "vms": [{ "vcpus": 1 }] }"#).unwrap();
        assert!(cfg.schedule().is_err());
        cfg.system().unwrap();
    }

    #[test]
    fn every_dist_spec_converts() {
        let specs = vec![
            DistSpec::Deterministic { value: 3.0 },
            DistSpec::Uniform {
                low: 1.0,
                high: 2.0,
            },
            DistSpec::Exponential { mean: 4.0 },
            DistSpec::Erlang { k: 3, mean: 6.0 },
            DistSpec::Normal {
                mean: 5.0,
                std_dev: 1.0,
            },
            DistSpec::Geometric { p: 0.5 },
            DistSpec::DiscreteUniform { low: 1, high: 9 },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: DistSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
            spec.to_dist().unwrap();
        }
        assert!(DistSpec::Exponential { mean: -1.0 }.to_dist().is_err());
    }
}
