//! The `vsched perf` smoke harness: wall-clock throughput of the SAN
//! engine's incremental reevaluation core against its full-rescan
//! reference mode, across a model-size scaling axis.
//!
//! This is deliberately *not* a statistics-grade benchmark (that is
//! `cargo bench -p vsched-bench`): best-of-N timed runs per (size, mode)
//! cell is enough for the two jobs it has —
//!
//! * produce a machine-readable `BENCH_perf.json` whose speedup column
//!   documents the incremental core's win as models grow, and
//! * gate CI cheaply: compared against a checked-in baseline, a >2×
//!   drop in the incremental core's *speedup over full rescan* fails
//!   the job. The speedup is a same-run ratio, so machine speed,
//!   background load and runner jitter cancel out of the comparison —
//!   absolute events/sec are recorded for the trajectory but never
//!   gated on.
//!
//! Every cell also cross-checks that both modes end bit-identical
//! (final marking and metrics) — a free differential pass on exactly
//! the configurations being timed.
//!
//! A second, *large-model* scale axis (64/256/1024 VMs, capped by
//! `--max-vms`) is the shards×size **crossover matrix**: it times the
//! sequential engine against the intra-replication sharded engine at
//! each `--shards` worker count *and* in `auto` mode, verifies every
//! run ends bit-identical to sequential, and reports each run's
//! real-time factor: one clock period models a 30 ms timeslice, so
//! `rtf = ticks × 0.03 / wall_seconds`, and `rtf > 1` means the cell
//! simulates faster than the virtualized hardware it models would run.
//! Full rescan is skipped on this axis — it is O(activities) per event
//! and exists as a reference mode, not a contender at 1024 VMs.
//!
//! The matrix distills into a **calibration table** (one best-mode row
//! per model size plus the measured crossover size) persisted in the
//! JSON report, and a **host block** (logical cores, optional commit
//! hash, engine version) that makes the numbers interpretable across
//! machines: shard counts above the host's core count cannot win, so a
//! baseline is only meaningful against its own core count —
//! [`check_against_baseline`] gates sharded overhead only when the core
//! counts match, and warns instead when they differ. Auto mode's wager
//! is checked directly: on every scale cell its throughput must stay
//! within tolerance of the better of sequential and the best fixed
//! shard count ([`PerfReport::auto_losses`]).

use std::path::Path;
use std::time::Instant;

use serde_json::{json, Value};
use vsched_core::san_model::SanSystem;
use vsched_core::{PolicyKind, ShardMode, SystemConfig};

/// Simulated seconds per clock period: the paper's 30 ms timeslice.
pub const TICK_SECONDS: f64 = 0.03;

/// Auto mode may lose this fraction of the best mode's throughput per
/// scale cell before [`PerfReport::auto_losses`] reports it.
pub const AUTO_TOLERANCE: f64 = 0.05;

/// Knobs of one perf run.
#[derive(Debug, Clone)]
pub struct PerfOpts {
    /// Simulated clock periods per timed run.
    pub ticks: u64,
    /// Seed for every run (the comparison is per-seed deterministic).
    pub seed: u64,
    /// Timed repetitions per (size, mode) cell; the fastest is reported,
    /// which filters out scheduler/allocator jitter on shared runners.
    pub repeats: usize,
    /// Largest VM count on the large-model scale axis (64/256/1024 VMs,
    /// cells above this cap are dropped; below 64 the axis is empty).
    pub max_vms: usize,
    /// Shard worker counts to time on the scale axis; the sequential
    /// engine always runs as the reference.
    pub shards: Vec<usize>,
    /// Whether to also time `--shards auto` on every scale cell.
    pub auto: bool,
    /// Commit hash recorded in the report's host block (`--commit`).
    pub commit: Option<String>,
}

impl Default for PerfOpts {
    fn default() -> Self {
        PerfOpts {
            ticks: 2_000,
            seed: 42,
            repeats: 5,
            max_vms: 1024,
            shards: vec![4],
            auto: true,
            commit: None,
        }
    }
}

/// Host facts that make crossover numbers interpretable across machines.
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Logical cores available to this process — the hard ceiling on how
    /// many shard lanes can actually run concurrently.
    pub logical_cores: usize,
    /// Commit hash the caller passed via `--commit`, if any.
    pub commit: Option<String>,
    /// The engine semantics version the numbers were measured against.
    pub engine: &'static str,
}

impl HostInfo {
    /// Snapshot of the current host.
    #[must_use]
    pub fn current(commit: Option<String>) -> Self {
        HostInfo {
            logical_cores: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            commit,
            engine: vsched_campaign::ENGINE_VERSION,
        }
    }
}

/// One timed run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct ModeSample {
    /// Activity completions processed.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// `events / seconds`.
    pub events_per_sec: f64,
}

/// One (model size) cell of the scaling axis.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Case label (`"4vm"`).
    pub name: String,
    /// VMs in the model (2 VCPUs each).
    pub vms: usize,
    /// Total VCPUs.
    pub vcpus: usize,
    /// PCPUs.
    pub pcpus: usize,
    /// The full-rescan reference mode's numbers.
    pub full_rescan: ModeSample,
    /// The incremental (default) mode's numbers.
    pub incremental: ModeSample,
    /// `incremental.events_per_sec / full_rescan.events_per_sec`.
    pub speedup: f64,
    /// Whether both modes ended bit-identical (final marking + metrics).
    pub identical: bool,
}

/// One sharded timing on a scale-axis cell.
#[derive(Debug, Clone)]
pub struct ShardSample {
    /// Worker count passed to the engine.
    pub shards: usize,
    /// Lane count the engine actually resolved to (capped by plan width
    /// and available parallelism); `None` means it fell back to the
    /// sequential engine.
    pub resolved: Option<usize>,
    /// The sharded run's numbers.
    pub sample: ModeSample,
    /// Real-time factor: simulated seconds per wall-clock second.
    pub rtf: f64,
    /// Whether the sharded run ended bit-identical to sequential.
    pub identical: bool,
}

/// The `--shards auto` timing on a scale-axis cell.
#[derive(Debug, Clone)]
pub struct AutoSample {
    /// Lane count auto resolved to; `None` = it chose sequential.
    pub resolved: Option<usize>,
    /// The auto run's numbers.
    pub sample: ModeSample,
    /// Real-time factor.
    pub rtf: f64,
    /// Whether the auto run ended bit-identical to sequential.
    pub identical: bool,
}

/// One (model size) cell of the large-model scale axis.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Case label (`"256vm"`).
    pub name: String,
    /// VMs in the model (2 VCPUs each).
    pub vms: usize,
    /// Total VCPUs.
    pub vcpus: usize,
    /// PCPUs.
    pub pcpus: usize,
    /// Ticks per timed run on this cell (scaled down for big models so
    /// the event count per cell stays roughly constant along the axis).
    pub ticks: u64,
    /// The sequential engine's numbers (the bit-identity reference).
    pub sequential: ModeSample,
    /// The sequential run's real-time factor.
    pub sequential_rtf: f64,
    /// One entry per `--shards` worker count.
    pub sharded: Vec<ShardSample>,
    /// The `--shards auto` timing, when enabled.
    pub auto: Option<AutoSample>,
}

impl ScaleCase {
    /// The best real-time factor any mode achieved on this cell.
    #[must_use]
    pub fn best_rtf(&self) -> f64 {
        self.sharded
            .iter()
            .map(|s| s.rtf)
            .chain(self.auto.iter().map(|a| a.rtf))
            .fold(self.sequential_rtf, f64::max)
    }

    /// The better of sequential and the best *fixed* shard count —
    /// auto mode's yardstick (auto itself is excluded).
    #[must_use]
    pub fn best_non_auto_events_per_sec(&self) -> f64 {
        self.sharded
            .iter()
            .map(|s| s.sample.events_per_sec)
            .fold(self.sequential.events_per_sec, f64::max)
    }

    /// Label of the fastest *fixed* mode on this cell (`"sequential"` or
    /// `"shards=4"`) — the calibration table's verdict. Auto is excluded:
    /// it is a chooser between these modes, not a mode of its own, so its
    /// (noise-bearing) re-measurement must not decide the table.
    #[must_use]
    pub fn best_mode(&self) -> String {
        let mut best = ("sequential".to_string(), self.sequential.events_per_sec);
        for s in &self.sharded {
            if s.sample.events_per_sec > best.1 {
                best = (format!("shards={}", s.shards), s.sample.events_per_sec);
            }
        }
        best.0
    }

    /// Label of the mode auto resolved to (`"sequential"` or
    /// `"shards=N"`), or `None` when auto was not timed on this cell.
    #[must_use]
    pub fn auto_resolution_label(&self) -> Option<String> {
        let auto = self.auto.as_ref()?;
        Some(auto.resolved.map_or_else(
            || "sequential".to_string(),
            |lanes| format!("shards={lanes}"),
        ))
    }

    /// Throughput of the mode auto resolved to, read from that mode's
    /// *canonical* sample — the sequential cell when auto chose
    /// sequential, the matching fixed-shards cell when it chose lanes —
    /// falling back to auto's own timing only when no matching cell was
    /// measured. Judging auto's decision on the canonical sample keeps
    /// run-to-run noise (two timings of the *same* engine configuration)
    /// out of the loss report.
    #[must_use]
    pub fn auto_resolved_events_per_sec(&self) -> Option<f64> {
        let auto = self.auto.as_ref()?;
        let eps = match auto.resolved {
            None => self.sequential.events_per_sec,
            Some(lanes) => self
                .sharded
                .iter()
                .find(|s| s.resolved == Some(lanes))
                .map_or(auto.sample.events_per_sec, |s| s.sample.events_per_sec),
        };
        Some(eps)
    }
}

/// The whole harness result.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Ticks per timed run.
    pub ticks: u64,
    /// Timed repetitions per cell (the fastest was kept).
    pub repeats: usize,
    /// The host the numbers were measured on.
    pub host: HostInfo,
    /// All cells, smallest model first.
    pub cases: Vec<PerfCase>,
    /// The large-model scale axis, smallest model first (empty when
    /// `max_vms < 64`).
    pub scale_cases: Vec<ScaleCase>,
}

impl PerfReport {
    /// Whether every cell's modes ended bit-identical — incremental vs
    /// full rescan on the small axis, sharded and auto vs sequential on
    /// the scale axis.
    #[must_use]
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|c| c.identical)
            && self.scale_cases.iter().all(|c| {
                c.sharded.iter().all(|s| s.identical) && c.auto.as_ref().is_none_or(|a| a.identical)
            })
    }

    /// The best real-time factor on the largest scale-axis cell, or
    /// `None` when the scale axis is empty.
    #[must_use]
    pub fn rtf_at_largest(&self) -> Option<f64> {
        self.scale_cases.last().map(ScaleCase::best_rtf)
    }

    /// Speedup of the largest model on the axis.
    #[must_use]
    pub fn speedup_at_largest(&self) -> f64 {
        self.cases.last().map_or(1.0, |c| c.speedup)
    }

    /// The smallest scale-axis model size at which some fixed sharded
    /// run beat the sequential engine by more than [`AUTO_TOLERANCE`] —
    /// the measured crossover point. The margin keeps run-to-run noise
    /// (the checked one-lane engine is within a few percent of
    /// sequential by design) from minting a phantom crossover. `None`
    /// means sequential effectively won everywhere (the expected verdict
    /// on a single-core host).
    #[must_use]
    pub fn crossover_vms(&self) -> Option<usize> {
        self.scale_cases
            .iter()
            .find(|c| {
                let sharded_best = c
                    .sharded
                    .iter()
                    .map(|s| s.sample.events_per_sec)
                    .fold(0.0, f64::max);
                sharded_best > c.sequential.events_per_sec * (1.0 + AUTO_TOLERANCE)
            })
            .map(|c| c.vms)
    }

    /// Scale cells where the mode auto *resolved to* measured more than
    /// [`AUTO_TOLERANCE`] below the better of sequential and the best
    /// fixed shard count — i.e. cells where auto picked the wrong mode.
    /// The comparison uses the canonical per-mode samples (see
    /// [`ScaleCase::auto_resolved_events_per_sec`]), so a loss means a
    /// genuine mis-calibration, not two noisy timings of the same
    /// configuration disagreeing. Empty = auto never chose badly.
    #[must_use]
    pub fn auto_losses(&self) -> Vec<String> {
        self.scale_cases
            .iter()
            .filter_map(|c| {
                let chosen = c.auto_resolved_events_per_sec()?;
                let best = c.best_non_auto_events_per_sec();
                if chosen < best * (1.0 - AUTO_TOLERANCE) {
                    Some(format!(
                        "{}: auto resolved to {} ({:.0} ev/s), {:.1}% below {} ({:.0} ev/s)",
                        c.name,
                        c.auto_resolution_label()
                            .unwrap_or_else(|| "sequential".to_string()),
                        chosen,
                        (1.0 - chosen / best) * 100.0,
                        c.best_mode(),
                        best,
                    ))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The report as a JSON value with stable field order.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let sample = |s: &ModeSample| {
            json!({
                "events": s.events,
                "seconds": s.seconds,
                "events_per_sec": s.events_per_sec,
            })
        };
        let resolved = |r: Option<usize>| match r {
            Some(n) => json!(n),
            None => Value::Null,
        };
        json!({
            "harness": "vsched perf",
            "host": json!({
                "logical_cores": self.host.logical_cores,
                "commit": match &self.host.commit {
                    Some(c) => json!(c.clone()),
                    None => Value::Null,
                },
                "engine": self.host.engine,
            }),
            "ticks": self.ticks,
            "repeats": self.repeats,
            "cases": Value::Seq(
                self.cases
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "vms": c.vms,
                            "vcpus": c.vcpus,
                            "pcpus": c.pcpus,
                            "full_rescan": sample(&c.full_rescan),
                            "incremental": sample(&c.incremental),
                            "speedup": c.speedup,
                            "identical": c.identical,
                        })
                    })
                    .collect()
            ),
            "speedup_at_largest": self.speedup_at_largest(),
            "tick_seconds": TICK_SECONDS,
            "scale_cases": Value::Seq(
                self.scale_cases
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "vms": c.vms,
                            "vcpus": c.vcpus,
                            "pcpus": c.pcpus,
                            "ticks": c.ticks,
                            "sequential": sample(&c.sequential),
                            "sequential_rtf": c.sequential_rtf,
                            "sharded": Value::Seq(
                                c.sharded
                                    .iter()
                                    .map(|s| {
                                        json!({
                                            "shards": s.shards,
                                            "resolved": resolved(s.resolved),
                                            "sample": sample(&s.sample),
                                            "rtf": s.rtf,
                                            "identical": s.identical,
                                        })
                                    })
                                    .collect()
                            ),
                            "auto": match &c.auto {
                                Some(a) => json!({
                                    "resolved": resolved(a.resolved),
                                    "sample": sample(&a.sample),
                                    "rtf": a.rtf,
                                    "identical": a.identical,
                                }),
                                None => Value::Null,
                            },
                        })
                    })
                    .collect()
            ),
            "rtf_at_largest": self.rtf_at_largest(),
            "calibration": json!({
                "crossover_vms": match self.crossover_vms() {
                    Some(v) => json!(v),
                    None => Value::Null,
                },
                "auto_tolerance": AUTO_TOLERANCE,
                "auto_losses": Value::Seq(
                    self.auto_losses().into_iter().map(Value::Str).collect()
                ),
                "cells": Value::Seq(
                    self.scale_cases
                        .iter()
                        .map(|c| {
                            json!({
                                "vms": c.vms,
                                "best_mode": c.best_mode(),
                                "best_rtf": c.best_rtf(),
                            })
                        })
                        .collect()
                ),
            }),
        })
    }

    /// One line per cell for the terminal.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf: {} ticks per run, best of {}, {} logical cores, engine {}",
            self.ticks, self.repeats, self.host.logical_cores, self.host.engine
        );
        let _ = writeln!(out, "small: incremental vs full-rescan reevaluation");
        for c in &self.cases {
            let _ = writeln!(
                out,
                "  {:>5}: {:>10.0} ev/s incremental, {:>10.0} ev/s full-rescan, \
                 speedup {:.2}x, identical: {}",
                c.name,
                c.incremental.events_per_sec,
                c.full_rescan.events_per_sec,
                c.speedup,
                if c.identical { "yes" } else { "NO" },
            );
        }
        if !self.scale_cases.is_empty() {
            let _ = writeln!(
                out,
                "scale: sequential vs sharded engine, rtf = simulated seconds \
                 per wall second (tick = {} ms)",
                TICK_SECONDS * 1000.0
            );
            for c in &self.scale_cases {
                let _ = writeln!(
                    out,
                    "  {:>6}: {:>5} ticks, {:>10.0} ev/s sequential (rtf {:.2})",
                    c.name, c.ticks, c.sequential.events_per_sec, c.sequential_rtf,
                );
                for s in &c.sharded {
                    let _ = writeln!(
                        out,
                        "          shards={}{}: {:>10.0} ev/s (rtf {:.2}), identical: {}",
                        s.shards,
                        match s.resolved {
                            Some(n) if n != s.shards => format!(" (resolved {n})"),
                            Some(_) => String::new(),
                            None => " (resolved sequential)".into(),
                        },
                        s.sample.events_per_sec,
                        s.rtf,
                        if s.identical { "yes" } else { "NO" },
                    );
                }
                if let Some(a) = &c.auto {
                    let _ = writeln!(
                        out,
                        "          auto ({}): {:>10.0} ev/s (rtf {:.2}), identical: {}",
                        match a.resolved {
                            Some(n) => format!("{n} lanes"),
                            None => "sequential".into(),
                        },
                        a.sample.events_per_sec,
                        a.rtf,
                        if a.identical { "yes" } else { "NO" },
                    );
                }
            }
            let _ = writeln!(
                out,
                "calibration: crossover at {}, auto losses: {}",
                self.crossover_vms().map_or_else(
                    || "none (sequential wins everywhere)".into(),
                    |v| format!("{v} VMs")
                ),
                match self.auto_losses().len() {
                    0 => "none".into(),
                    n => format!("{n} cell(s)"),
                }
            );
        }
        out
    }

    /// The crossover matrix as CSV, one timed run per row — the
    /// machine-readable form plots and calibration tooling consume
    /// without scraping the text table. Columns: `axis, case, vms,
    /// vcpus, pcpus, mode, resolved, ticks, events, seconds,
    /// events_per_sec, rtf, speedup, identical`. Reference modes
    /// (full-rescan, sequential) leave `identical` empty; only the
    /// incremental rows carry `speedup`; only scale rows carry `rtf`.
    #[must_use]
    pub fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "axis,case,vms,vcpus,pcpus,mode,resolved,ticks,events,seconds,\
             events_per_sec,rtf,speedup,identical\n",
        );
        let yesno = |b: bool| if b { "yes" } else { "no" };
        for c in &self.cases {
            let _ = writeln!(
                out,
                "small,{},{},{},{},full_rescan,,{},{},{:.6},{:.1},,,",
                c.name,
                c.vms,
                c.vcpus,
                c.pcpus,
                self.ticks,
                c.full_rescan.events,
                c.full_rescan.seconds,
                c.full_rescan.events_per_sec,
            );
            let _ = writeln!(
                out,
                "small,{},{},{},{},incremental,,{},{},{:.6},{:.1},,{:.4},{}",
                c.name,
                c.vms,
                c.vcpus,
                c.pcpus,
                self.ticks,
                c.incremental.events,
                c.incremental.seconds,
                c.incremental.events_per_sec,
                c.speedup,
                yesno(c.identical),
            );
        }
        for c in &self.scale_cases {
            let _ = writeln!(
                out,
                "scale,{},{},{},{},sequential,,{},{},{:.6},{:.1},{:.4},,",
                c.name,
                c.vms,
                c.vcpus,
                c.pcpus,
                c.ticks,
                c.sequential.events,
                c.sequential.seconds,
                c.sequential.events_per_sec,
                c.sequential_rtf,
            );
            let resolved = |r: Option<usize>| r.map_or_else(|| "seq".into(), |n| n.to_string());
            for s in &c.sharded {
                let _ = writeln!(
                    out,
                    "scale,{},{},{},{},shards={},{},{},{},{:.6},{:.1},{:.4},,{}",
                    c.name,
                    c.vms,
                    c.vcpus,
                    c.pcpus,
                    s.shards,
                    resolved(s.resolved),
                    c.ticks,
                    s.sample.events,
                    s.sample.seconds,
                    s.sample.events_per_sec,
                    s.rtf,
                    yesno(s.identical),
                );
            }
            if let Some(a) = &c.auto {
                let _ = writeln!(
                    out,
                    "scale,{},{},{},{},auto,{},{},{},{:.6},{:.1},{:.4},,{}",
                    c.name,
                    c.vms,
                    c.vcpus,
                    c.pcpus,
                    resolved(a.resolved),
                    c.ticks,
                    a.sample.events,
                    a.sample.seconds,
                    a.sample.events_per_sec,
                    a.rtf,
                    yesno(a.identical),
                );
            }
        }
        out
    }
}

/// The model-size axis: doubling VM counts, 2 VCPUs per VM.
fn scaling_axis() -> Vec<(String, usize)> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|vms| (format!("{vms}vm"), vms))
        .collect()
}

fn config(vms: usize) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(vms.max(2)).sync_ratio(1, 5);
    for _ in 0..vms {
        b = b.vm(2);
    }
    b.build().expect("valid perf config")
}

/// The bit patterns both modes must agree on: final marking + metrics.
fn fingerprint(sys: &SanSystem) -> (Vec<i64>, Vec<u64>) {
    let m = sys.metrics();
    let bits = m
        .vcpu_availability
        .iter()
        .chain(&m.vcpu_utilization)
        .chain(&m.pcpu_utilization)
        .chain(&m.vcpu_spin)
        .map(|v| v.to_bits())
        .collect();
    (sys.simulator().marking().as_slice().to_vec(), bits)
}

/// The large-model scale axis, capped by `max_vms`.
fn scale_axis(max_vms: usize) -> Vec<(String, usize)> {
    [64usize, 256, 1024]
        .into_iter()
        .filter(|&vms| vms <= max_vms)
        .map(|vms| (format!("{vms}vm"), vms))
        .collect()
}

/// Ticks per scale-axis cell: scaled down with model size so the event
/// count per cell stays roughly constant along the axis (the event rate
/// grows about linearly in VMs), keeping the harness's wall time flat.
fn scale_ticks(vms: usize, base: u64) -> u64 {
    (base * 16 / vms as u64).max(25)
}

/// One engine mode of one cell: `full` switches on full rescan, `mode`
/// selects the shard engine (the two are never combined by the callers).
/// Returns the timing, the lane count the engine resolved to, and the
/// run's fingerprint.
fn timed_once(
    vms: usize,
    ticks: u64,
    full: bool,
    mode: ShardMode,
    opts: &PerfOpts,
) -> (ModeSample, Option<usize>, (Vec<i64>, Vec<u64>)) {
    let mut sys = SanSystem::new(config(vms), PolicyKind::RoundRobin.create(), opts.seed)
        .expect("perf model builds");
    sys.set_full_rescan(full);
    if mode != ShardMode::Off {
        sys.set_shard_mode(mode);
    }
    let start = Instant::now();
    sys.run(ticks).expect("perf run");
    let seconds = start.elapsed().as_secs_f64();
    let events = sys.simulator().stats().completions;
    let sample = ModeSample {
        events,
        seconds,
        events_per_sec: if seconds > 0.0 {
            events as f64 / seconds
        } else {
            f64::INFINITY
        },
    };
    (sample, sys.resolved_shards(), fingerprint(&sys))
}

/// Best of `opts.repeats` runs. Every repetition is the same deterministic
/// simulation, so the fingerprint is checked to be stable across them.
fn timed_run(
    vms: usize,
    ticks: u64,
    full: bool,
    mode: ShardMode,
    opts: &PerfOpts,
) -> (ModeSample, Option<usize>, (Vec<i64>, Vec<u64>)) {
    let (mut best, resolved, fp) = timed_once(vms, ticks, full, mode, opts);
    for _ in 1..opts.repeats.max(1) {
        let (sample, _, fp_again) = timed_once(vms, ticks, full, mode, opts);
        assert_eq!(fp, fp_again, "perf run is not deterministic");
        if sample.events_per_sec > best.events_per_sec {
            best = sample;
        }
    }
    (best, resolved, fp)
}

/// Real-time factor of a run covering `ticks` clock periods.
fn rtf(ticks: u64, sample: &ModeSample) -> f64 {
    if sample.seconds > 0.0 {
        ticks as f64 * TICK_SECONDS / sample.seconds
    } else {
        f64::INFINITY
    }
}

/// Runs the whole scaling axis, both modes per size, then the
/// large-model scale axis: sequential, every `opts.shards` count, and
/// (unless disabled) auto mode.
#[must_use]
pub fn run_perf(opts: &PerfOpts) -> PerfReport {
    let cases = scaling_axis()
        .into_iter()
        .map(|(name, vms)| {
            // Full-rescan first, then incremental: if something is badly
            // wrong with the dependency index, the reference number is
            // already in hand when the comparison trips.
            let (full, _, fp_full) = timed_run(vms, opts.ticks, true, ShardMode::Off, opts);
            let (incremental, _, fp_inc) = timed_run(vms, opts.ticks, false, ShardMode::Off, opts);
            PerfCase {
                name,
                vms,
                vcpus: vms * 2,
                pcpus: vms.max(2),
                speedup: incremental.events_per_sec / full.events_per_sec,
                identical: fp_full == fp_inc,
                full_rescan: full,
                incremental,
            }
        })
        .collect();
    let scale_cases = scale_axis(opts.max_vms)
        .into_iter()
        .map(|(name, vms)| {
            let ticks = scale_ticks(vms, opts.ticks);
            let (sequential, _, fp_seq) = timed_run(vms, ticks, false, ShardMode::Off, opts);
            let sharded = opts
                .shards
                .iter()
                .filter(|&&s| s >= 2)
                .map(|&shards| {
                    let (sample, resolved, fp) =
                        timed_run(vms, ticks, false, ShardMode::Fixed(shards), opts);
                    ShardSample {
                        shards,
                        resolved,
                        rtf: rtf(ticks, &sample),
                        identical: fp == fp_seq,
                        sample,
                    }
                })
                .collect();
            let auto = opts.auto.then(|| {
                let (sample, resolved, fp) = timed_run(vms, ticks, false, ShardMode::Auto, opts);
                AutoSample {
                    resolved,
                    rtf: rtf(ticks, &sample),
                    identical: fp == fp_seq,
                    sample,
                }
            });
            ScaleCase {
                name,
                vms,
                vcpus: vms * 2,
                pcpus: vms.max(2),
                ticks,
                sequential_rtf: rtf(ticks, &sequential),
                sequential,
                sharded,
                auto,
            }
        })
        .collect();
    PerfReport {
        ticks: opts.ticks,
        repeats: opts.repeats.max(1),
        host: HostInfo::current(opts.commit.clone()),
        cases,
        scale_cases,
    }
}

/// What a baseline comparison found: hard regressions (fail the run) and
/// warnings (report, but keep going — e.g. gates skipped because the
/// baseline was recorded on a different core count).
#[derive(Debug, Clone, Default)]
pub struct BaselineCheck {
    /// Offending cell descriptions; empty = pass.
    pub regressions: Vec<String>,
    /// Non-fatal notes about the comparison.
    pub warnings: Vec<String>,
}

/// Compares a fresh report against a checked-in baseline JSON (the shape
/// [`PerfReport::to_json`] writes).
///
/// Two gates, both same-run ratios so absolute machine speed cancels
/// out of the comparison:
///
/// * **small axis** — for every case present in both, the incremental
///   core's speedup over full rescan must not have dropped by more than
///   `max_regression`×;
/// * **scale axis** — for every (cell, shard count) present in both, the
///   sharded engine's *overhead over sequential* (sequential ev/s ÷
///   sharded ev/s) must not have grown by more than `max_regression`×.
///   Unlike the speedup gate this ratio depends on how many lanes can
///   actually run, so it is only applied when the baseline's recorded
///   `host.logical_cores` matches this host's; on a mismatch (or a
///   pre-host-block baseline) the gate is skipped with a warning.
///
/// # Errors
///
/// If the baseline file cannot be read or is not shaped like a perf
/// report.
pub fn check_against_baseline(
    report: &PerfReport,
    baseline_path: &Path,
    max_regression: f64,
) -> Result<BaselineCheck, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline: Value = serde_json::from_str(&text)?;
    let cases = baseline
        .get("cases")
        .and_then(Value::as_array)
        .ok_or("baseline has no `cases` array")?;
    let mut check = BaselineCheck::default();
    for c in cases {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("?");
        let Some(base_speedup) = c.get("speedup").and_then(Value::as_f64) else {
            continue;
        };
        let Some(now) = report.cases.iter().find(|rc| rc.name == name) else {
            continue;
        };
        if now.speedup * max_regression < base_speedup {
            check.regressions.push(format!(
                "{name}: speedup {:.2}x now vs {base_speedup:.2}x baseline \
                 (>{max_regression:.1}x regression)",
                now.speedup,
            ));
        }
    }
    let base_cores = baseline
        .get("host")
        .and_then(|h| h.get("logical_cores"))
        .and_then(Value::as_u64);
    let scale = baseline
        .get("scale_cases")
        .and_then(Value::as_array)
        .map_or(&[][..], Vec::as_slice);
    let has_scale_overlap = scale.iter().any(|c| {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("?");
        report.scale_cases.iter().any(|rc| rc.name == name)
    });
    if has_scale_overlap {
        match base_cores {
            None => check.warnings.push(
                "baseline has no host block (pre-crossover format): \
                 sharded overhead gates skipped — regenerate it with `vsched perf --out`"
                    .into(),
            ),
            Some(cores) if cores as usize != report.host.logical_cores => {
                check.warnings.push(format!(
                    "baseline was recorded on {cores} logical cores, this host has {}: \
                     sharded overhead gates skipped (shard timings are not comparable \
                     across core counts)",
                    report.host.logical_cores
                ));
            }
            Some(_) => {
                for c in scale {
                    let name = c.get("name").and_then(Value::as_str).unwrap_or("?");
                    let Some(now) = report.scale_cases.iter().find(|rc| rc.name == name) else {
                        continue;
                    };
                    let base_seq = c
                        .get("sequential")
                        .and_then(|s| s.get("events_per_sec"))
                        .and_then(Value::as_f64);
                    let Some(base_seq) = base_seq else { continue };
                    let entries = c
                        .get("sharded")
                        .and_then(Value::as_array)
                        .map_or(&[][..], Vec::as_slice);
                    for e in entries {
                        let Some(shards) =
                            e.get("shards").and_then(Value::as_u64).map(|s| s as usize)
                        else {
                            continue;
                        };
                        let base_rate = e
                            .get("sample")
                            .and_then(|s| s.get("events_per_sec"))
                            .and_then(Value::as_f64);
                        let Some(base_rate) = base_rate else { continue };
                        let Some(now_s) = now.sharded.iter().find(|s| s.shards == shards) else {
                            continue;
                        };
                        let base_overhead = base_seq / base_rate;
                        let now_overhead =
                            now.sequential.events_per_sec / now_s.sample.events_per_sec;
                        if now_overhead > base_overhead * max_regression {
                            check.regressions.push(format!(
                                "{name} shards={shards}: sharded overhead {now_overhead:.2}x \
                                 sequential now vs {base_overhead:.2}x baseline \
                                 (>{max_regression:.1}x regression)",
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> PerfOpts {
        PerfOpts {
            ticks: 50,
            seed: 42,
            repeats: 1,
            max_vms: 0,
            shards: Vec::new(),
            auto: false,
            commit: None,
        }
    }

    #[test]
    fn both_modes_are_bit_identical_on_every_cell() {
        let report = run_perf(&tiny_opts());
        assert_eq!(report.cases.len(), 5);
        assert!(report.all_identical(), "{}", report.render_text());
        for c in &report.cases {
            assert_eq!(c.full_rescan.events, c.incremental.events);
            assert!(c.full_rescan.events > 0);
        }
    }

    #[test]
    fn json_shape_carries_both_modes_and_the_speedup() {
        let report = run_perf(&tiny_opts());
        let v = report.to_json();
        let cases = v.get("cases").and_then(Value::as_array).unwrap();
        assert_eq!(cases.len(), 5);
        for c in cases {
            for key in ["full_rescan", "incremental", "speedup", "identical"] {
                assert!(c.get(key).is_some(), "missing {key}");
            }
        }
        assert!(v.get("speedup_at_largest").is_some());
        // The host block makes numbers interpretable across machines.
        let host = v.get("host").unwrap();
        assert!(host.get("logical_cores").and_then(Value::as_u64).unwrap() >= 1);
        assert_eq!(
            host.get("engine").and_then(Value::as_str).unwrap(),
            vsched_campaign::ENGINE_VERSION
        );
        assert!(v.get("calibration").is_some());
    }

    #[test]
    fn scale_axis_shards_are_bit_identical_and_report_rtf() {
        let opts = PerfOpts {
            ticks: 100,
            seed: 42,
            repeats: 1,
            max_vms: 64,
            shards: vec![2],
            auto: true,
            commit: Some("deadbeef".into()),
        };
        let report = run_perf(&opts);
        assert_eq!(report.scale_cases.len(), 1);
        let c = &report.scale_cases[0];
        assert_eq!(
            (c.name.as_str(), c.vms, c.vcpus, c.pcpus),
            ("64vm", 64, 128, 64)
        );
        assert_eq!(c.ticks, scale_ticks(64, 100));
        assert!(c.sequential.events > 0);
        assert!(c.sequential_rtf > 0.0);
        assert_eq!(c.sharded.len(), 1);
        let s = &c.sharded[0];
        assert_eq!(s.shards, 2);
        assert!(s.identical, "{}", report.render_text());
        assert_eq!(s.sample.events, c.sequential.events);
        let a = c.auto.as_ref().expect("auto timed");
        assert!(a.identical, "{}", report.render_text());
        assert_eq!(a.sample.events, c.sequential.events);
        assert!(report.all_identical());
        assert_eq!(report.rtf_at_largest(), Some(c.best_rtf()));

        let v = report.to_json();
        assert_eq!(
            v.get("host")
                .and_then(|h| h.get("commit"))
                .and_then(Value::as_str),
            Some("deadbeef")
        );
        let scale = v.get("scale_cases").and_then(Value::as_array).unwrap();
        assert_eq!(scale.len(), 1);
        for key in [
            "name",
            "vms",
            "ticks",
            "sequential",
            "sequential_rtf",
            "sharded",
            "auto",
        ] {
            assert!(scale[0].get(key).is_some(), "missing {key}");
        }
        let sharded = scale[0].get("sharded").and_then(Value::as_array).unwrap();
        assert!(sharded[0].get("rtf").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(sharded[0].get("resolved").is_some());
        assert!(v.get("rtf_at_largest").is_some());
        let calib = v.get("calibration").unwrap();
        let cells = calib.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].get("best_mode").and_then(Value::as_str).is_some());
        assert!(report.render_text().contains("shards=2"));
        assert!(report.render_text().contains("auto ("));
        assert!(report.render_text().contains("calibration:"));
    }

    #[test]
    fn auto_losses_judge_the_resolution_not_the_rerun() {
        let sample = |eps: f64| ModeSample {
            events: 1_000,
            seconds: 1_000.0 / eps,
            events_per_sec: eps,
        };
        let cell = |auto: Option<AutoSample>| ScaleCase {
            name: "64vm".into(),
            vms: 64,
            vcpus: 128,
            pcpus: 64,
            ticks: 100,
            sequential: sample(1_000.0),
            sequential_rtf: 1.0,
            sharded: vec![ShardSample {
                shards: 4,
                resolved: Some(4),
                sample: sample(2_000.0),
                rtf: 2.0,
                identical: true,
            }],
            auto,
        };
        let report = |case: ScaleCase| PerfReport {
            ticks: 100,
            repeats: 1,
            host: HostInfo::current(None),
            cases: Vec::new(),
            scale_cases: vec![case],
        };

        // Auto resolved to the winning fixed mode: no loss, even though
        // its own re-measurement came in 20% low (pure timing noise).
        let good = report(cell(Some(AutoSample {
            resolved: Some(4),
            sample: sample(1_600.0),
            rtf: 1.6,
            identical: true,
        })));
        assert_eq!(good.scale_cases[0].best_mode(), "shards=4");
        assert_eq!(
            good.scale_cases[0].auto_resolved_events_per_sec(),
            Some(2_000.0)
        );
        assert!(good.auto_losses().is_empty(), "{:?}", good.auto_losses());

        // Auto chose sequential while shards=4 measured 2x faster: a
        // genuine mis-calibration, reported against the canonical
        // sequential sample.
        let bad = report(cell(Some(AutoSample {
            resolved: None,
            sample: sample(990.0),
            rtf: 0.99,
            identical: true,
        })));
        let losses = bad.auto_losses();
        assert_eq!(losses.len(), 1, "{losses:?}");
        assert!(losses[0].contains("resolved to sequential"), "{losses:?}");
        assert!(losses[0].contains("shards=4"), "{losses:?}");

        // No auto timing at all: nothing to judge.
        assert!(report(cell(None)).auto_losses().is_empty());
    }

    #[test]
    fn csv_has_one_row_per_timed_run() {
        let opts = PerfOpts {
            ticks: 60,
            seed: 42,
            repeats: 1,
            max_vms: 64,
            shards: vec![2],
            auto: true,
            commit: None,
        };
        let report = run_perf(&opts);
        let csv = report.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 2 rows per small cell + (sequential + 1 shard + auto)
        // for the one scale cell.
        assert_eq!(lines.len(), 1 + 2 * report.cases.len() + 3);
        assert!(lines[0].starts_with("axis,case,vms"));
        let fields = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), fields, "ragged row: {l}");
        }
        assert!(csv.contains("scale,64vm"));
        assert!(csv.contains(",auto,"));
    }

    #[test]
    fn scale_axis_is_empty_below_its_smallest_cell() {
        assert!(scale_axis(0).is_empty());
        assert!(scale_axis(63).is_empty());
        assert_eq!(
            scale_axis(1024).iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![64, 256, 1024]
        );
        // Per-cell ticks shrink with model size but never below the floor.
        assert_eq!(scale_ticks(64, 2_000), 500);
        assert_eq!(scale_ticks(256, 2_000), 125);
        assert_eq!(scale_ticks(1024, 2_000), 31);
        assert_eq!(scale_ticks(1024, 100), 25);
    }

    #[test]
    fn baseline_regression_detection() {
        let report = run_perf(&tiny_opts());
        let dir = std::env::temp_dir().join(format!("vsched-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        // A baseline written from the report itself never regresses.
        std::fs::write(&path, serde_json::to_string(&report.to_json()).unwrap()).unwrap();
        let check = check_against_baseline(&report, &path, 2.0).unwrap();
        assert!(check.regressions.is_empty());
        assert!(check.warnings.is_empty());

        // An impossibly good baseline speedup trips every case.
        let mut doctored = report.clone();
        for c in &mut doctored.cases {
            c.speedup = 1e15;
        }
        std::fs::write(&path, serde_json::to_string(&doctored.to_json()).unwrap()).unwrap();
        let check = check_against_baseline(&report, &path, 2.0).unwrap();
        assert_eq!(check.regressions.len(), report.cases.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_gates_sharded_overhead_only_on_matching_cores() {
        let opts = PerfOpts {
            ticks: 60,
            seed: 42,
            repeats: 1,
            max_vms: 64,
            shards: vec![2],
            auto: false,
            commit: None,
        };
        let report = run_perf(&opts);
        let dir = std::env::temp_dir().join(format!("vsched-perf-scale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        // Same host, doctored baseline claiming sharding used to be free:
        // the overhead gate must trip on the scale cell.
        let mut doctored = report.clone();
        doctored.scale_cases[0].sharded[0].sample.events_per_sec =
            doctored.scale_cases[0].sequential.events_per_sec * 1e6;
        std::fs::write(&path, serde_json::to_string(&doctored.to_json()).unwrap()).unwrap();
        let check = check_against_baseline(&report, &path, 2.0).unwrap();
        assert_eq!(check.regressions.len(), 1, "{:?}", check.regressions);
        assert!(check.regressions[0].contains("overhead"));

        // A baseline from a host with a different core count skips the
        // gate and warns instead — shard timings don't transfer.
        let mut foreign = doctored.clone();
        foreign.host.logical_cores = report.host.logical_cores + 7;
        std::fs::write(&path, serde_json::to_string(&foreign.to_json()).unwrap()).unwrap();
        let check = check_against_baseline(&report, &path, 2.0).unwrap();
        assert!(check.regressions.is_empty());
        assert_eq!(check.warnings.len(), 1);
        assert!(
            check.warnings[0].contains("logical cores"),
            "{:?}",
            check.warnings
        );

        // A pre-host-block baseline also warns rather than gating.
        let legacy = match doctored.to_json() {
            Value::Map(m) => Value::Map(m.into_iter().filter(|(k, _)| k != "host").collect()),
            other => other,
        };
        std::fs::write(&path, serde_json::to_string(&legacy).unwrap()).unwrap();
        let check = check_against_baseline(&report, &path, 2.0).unwrap();
        assert!(check.regressions.is_empty());
        assert_eq!(check.warnings.len(), 1);
        assert!(
            check.warnings[0].contains("host block"),
            "{:?}",
            check.warnings
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
