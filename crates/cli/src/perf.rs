//! The `vsched perf` smoke harness: wall-clock throughput of the SAN
//! engine's incremental reevaluation core against its full-rescan
//! reference mode, across a model-size scaling axis.
//!
//! This is deliberately *not* a statistics-grade benchmark (that is
//! `cargo bench -p vsched-bench`): best-of-N timed runs per (size, mode)
//! cell is enough for the two jobs it has —
//!
//! * produce a machine-readable `BENCH_perf.json` whose speedup column
//!   documents the incremental core's win as models grow, and
//! * gate CI cheaply: compared against a checked-in baseline, a >2×
//!   drop in the incremental core's *speedup over full rescan* fails
//!   the job. The speedup is a same-run ratio, so machine speed,
//!   background load and runner jitter cancel out of the comparison —
//!   absolute events/sec are recorded for the trajectory but never
//!   gated on.
//!
//! Every cell also cross-checks that both modes end bit-identical
//! (final marking and metrics) — a free differential pass on exactly
//! the configurations being timed.
//!
//! A second, *large-model* scale axis (64/256/1024 VMs, capped by
//! `--max-vms`) times the sequential engine against the intra-replication
//! sharded engine at each `--shards` worker count, verifies sharded runs
//! end bit-identical to sequential, and reports each run's real-time
//! factor: one clock period models a 30 ms timeslice, so
//! `rtf = ticks × 0.03 / wall_seconds`, and `rtf > 1` means the cell
//! simulates faster than the virtualized hardware it models would run.
//! Full rescan is skipped on this axis — it is O(activities) per event
//! and exists as a reference mode, not a contender at 1024 VMs.

use std::path::Path;
use std::time::Instant;

use serde_json::{json, Value};
use vsched_core::san_model::SanSystem;
use vsched_core::{PolicyKind, SystemConfig};

/// Simulated seconds per clock period: the paper's 30 ms timeslice.
pub const TICK_SECONDS: f64 = 0.03;

/// Knobs of one perf run.
#[derive(Debug, Clone)]
pub struct PerfOpts {
    /// Simulated clock periods per timed run.
    pub ticks: u64,
    /// Seed for every run (the comparison is per-seed deterministic).
    pub seed: u64,
    /// Timed repetitions per (size, mode) cell; the fastest is reported,
    /// which filters out scheduler/allocator jitter on shared runners.
    pub repeats: usize,
    /// Largest VM count on the large-model scale axis (64/256/1024 VMs,
    /// cells above this cap are dropped; below 64 the axis is empty).
    pub max_vms: usize,
    /// Shard worker counts to time on the scale axis; the sequential
    /// engine always runs as the reference.
    pub shards: Vec<usize>,
}

impl Default for PerfOpts {
    fn default() -> Self {
        PerfOpts {
            ticks: 2_000,
            seed: 42,
            repeats: 5,
            max_vms: 1024,
            shards: vec![4],
        }
    }
}

/// One timed run's numbers.
#[derive(Debug, Clone, Copy)]
pub struct ModeSample {
    /// Activity completions processed.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// `events / seconds`.
    pub events_per_sec: f64,
}

/// One (model size) cell of the scaling axis.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Case label (`"4vm"`).
    pub name: String,
    /// VMs in the model (2 VCPUs each).
    pub vms: usize,
    /// Total VCPUs.
    pub vcpus: usize,
    /// PCPUs.
    pub pcpus: usize,
    /// The full-rescan reference mode's numbers.
    pub full_rescan: ModeSample,
    /// The incremental (default) mode's numbers.
    pub incremental: ModeSample,
    /// `incremental.events_per_sec / full_rescan.events_per_sec`.
    pub speedup: f64,
    /// Whether both modes ended bit-identical (final marking + metrics).
    pub identical: bool,
}

/// One sharded timing on a scale-axis cell.
#[derive(Debug, Clone)]
pub struct ShardSample {
    /// Worker count passed to the engine.
    pub shards: usize,
    /// The sharded run's numbers.
    pub sample: ModeSample,
    /// Real-time factor: simulated seconds per wall-clock second.
    pub rtf: f64,
    /// Whether the sharded run ended bit-identical to sequential.
    pub identical: bool,
}

/// One (model size) cell of the large-model scale axis.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Case label (`"256vm"`).
    pub name: String,
    /// VMs in the model (2 VCPUs each).
    pub vms: usize,
    /// Total VCPUs.
    pub vcpus: usize,
    /// PCPUs.
    pub pcpus: usize,
    /// Ticks per timed run on this cell (scaled down for big models so
    /// the event count per cell stays roughly constant along the axis).
    pub ticks: u64,
    /// The sequential engine's numbers (the bit-identity reference).
    pub sequential: ModeSample,
    /// The sequential run's real-time factor.
    pub sequential_rtf: f64,
    /// One entry per `--shards` worker count.
    pub sharded: Vec<ShardSample>,
}

impl ScaleCase {
    /// The best real-time factor any mode achieved on this cell.
    #[must_use]
    pub fn best_rtf(&self) -> f64 {
        self.sharded
            .iter()
            .map(|s| s.rtf)
            .fold(self.sequential_rtf, f64::max)
    }
}

/// The whole harness result.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Ticks per timed run.
    pub ticks: u64,
    /// Timed repetitions per cell (the fastest was kept).
    pub repeats: usize,
    /// All cells, smallest model first.
    pub cases: Vec<PerfCase>,
    /// The large-model scale axis, smallest model first (empty when
    /// `max_vms < 64`).
    pub scale_cases: Vec<ScaleCase>,
}

impl PerfReport {
    /// Whether every cell's modes ended bit-identical — incremental vs
    /// full rescan on the small axis, sharded vs sequential on the scale
    /// axis.
    #[must_use]
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|c| c.identical)
            && self
                .scale_cases
                .iter()
                .all(|c| c.sharded.iter().all(|s| s.identical))
    }

    /// The best real-time factor on the largest scale-axis cell, or
    /// `None` when the scale axis is empty.
    #[must_use]
    pub fn rtf_at_largest(&self) -> Option<f64> {
        self.scale_cases.last().map(ScaleCase::best_rtf)
    }

    /// Speedup of the largest model on the axis.
    #[must_use]
    pub fn speedup_at_largest(&self) -> f64 {
        self.cases.last().map_or(1.0, |c| c.speedup)
    }

    /// The report as a JSON value with stable field order.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let sample = |s: &ModeSample| {
            json!({
                "events": s.events,
                "seconds": s.seconds,
                "events_per_sec": s.events_per_sec,
            })
        };
        json!({
            "harness": "vsched perf",
            "ticks": self.ticks,
            "repeats": self.repeats,
            "cases": Value::Seq(
                self.cases
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "vms": c.vms,
                            "vcpus": c.vcpus,
                            "pcpus": c.pcpus,
                            "full_rescan": sample(&c.full_rescan),
                            "incremental": sample(&c.incremental),
                            "speedup": c.speedup,
                            "identical": c.identical,
                        })
                    })
                    .collect()
            ),
            "speedup_at_largest": self.speedup_at_largest(),
            "tick_seconds": TICK_SECONDS,
            "scale_cases": Value::Seq(
                self.scale_cases
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "vms": c.vms,
                            "vcpus": c.vcpus,
                            "pcpus": c.pcpus,
                            "ticks": c.ticks,
                            "sequential": sample(&c.sequential),
                            "sequential_rtf": c.sequential_rtf,
                            "sharded": Value::Seq(
                                c.sharded
                                    .iter()
                                    .map(|s| {
                                        json!({
                                            "shards": s.shards,
                                            "sample": sample(&s.sample),
                                            "rtf": s.rtf,
                                            "identical": s.identical,
                                        })
                                    })
                                    .collect()
                            ),
                        })
                    })
                    .collect()
            ),
            "rtf_at_largest": self.rtf_at_largest(),
        })
    }

    /// One line per cell for the terminal.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf: {} ticks per run, best of {}, incremental vs full-rescan reevaluation",
            self.ticks, self.repeats
        );
        for c in &self.cases {
            let _ = writeln!(
                out,
                "  {:>5}: {:>10.0} ev/s incremental, {:>10.0} ev/s full-rescan, \
                 speedup {:.2}x, identical: {}",
                c.name,
                c.incremental.events_per_sec,
                c.full_rescan.events_per_sec,
                c.speedup,
                if c.identical { "yes" } else { "NO" },
            );
        }
        if !self.scale_cases.is_empty() {
            let _ = writeln!(
                out,
                "scale: sequential vs sharded engine, rtf = simulated seconds \
                 per wall second (tick = {} ms)",
                TICK_SECONDS * 1000.0
            );
            for c in &self.scale_cases {
                let _ = writeln!(
                    out,
                    "  {:>6}: {:>5} ticks, {:>10.0} ev/s sequential (rtf {:.2})",
                    c.name, c.ticks, c.sequential.events_per_sec, c.sequential_rtf,
                );
                for s in &c.sharded {
                    let _ = writeln!(
                        out,
                        "          shards={}: {:>10.0} ev/s (rtf {:.2}), identical: {}",
                        s.shards,
                        s.sample.events_per_sec,
                        s.rtf,
                        if s.identical { "yes" } else { "NO" },
                    );
                }
            }
        }
        out
    }
}

/// The model-size axis: doubling VM counts, 2 VCPUs per VM.
fn scaling_axis() -> Vec<(String, usize)> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|vms| (format!("{vms}vm"), vms))
        .collect()
}

fn config(vms: usize) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(vms.max(2)).sync_ratio(1, 5);
    for _ in 0..vms {
        b = b.vm(2);
    }
    b.build().expect("valid perf config")
}

/// The bit patterns both modes must agree on: final marking + metrics.
fn fingerprint(sys: &SanSystem) -> (Vec<i64>, Vec<u64>) {
    let m = sys.metrics();
    let bits = m
        .vcpu_availability
        .iter()
        .chain(&m.vcpu_utilization)
        .chain(&m.pcpu_utilization)
        .chain(&m.vcpu_spin)
        .map(|v| v.to_bits())
        .collect();
    (sys.simulator().marking().as_slice().to_vec(), bits)
}

/// The large-model scale axis, capped by `max_vms`.
fn scale_axis(max_vms: usize) -> Vec<(String, usize)> {
    [64usize, 256, 1024]
        .into_iter()
        .filter(|&vms| vms <= max_vms)
        .map(|vms| (format!("{vms}vm"), vms))
        .collect()
}

/// Ticks per scale-axis cell: scaled down with model size so the event
/// count per cell stays roughly constant along the axis (the event rate
/// grows about linearly in VMs), keeping the harness's wall time flat.
fn scale_ticks(vms: usize, base: u64) -> u64 {
    (base * 16 / vms as u64).max(25)
}

/// One engine mode of one cell: `full` switches on full rescan,
/// `shards >= 2` switches on the sharded engine (the two are never
/// combined by the callers).
fn timed_once(
    vms: usize,
    ticks: u64,
    full: bool,
    shards: usize,
    opts: &PerfOpts,
) -> (ModeSample, (Vec<i64>, Vec<u64>)) {
    let mut sys = SanSystem::new(config(vms), PolicyKind::RoundRobin.create(), opts.seed)
        .expect("perf model builds");
    sys.set_full_rescan(full);
    sys.set_shards(shards);
    let start = Instant::now();
    sys.run(ticks).expect("perf run");
    let seconds = start.elapsed().as_secs_f64();
    let events = sys.simulator().stats().completions;
    let sample = ModeSample {
        events,
        seconds,
        events_per_sec: if seconds > 0.0 {
            events as f64 / seconds
        } else {
            f64::INFINITY
        },
    };
    (sample, fingerprint(&sys))
}

/// Best of `opts.repeats` runs. Every repetition is the same deterministic
/// simulation, so the fingerprint is checked to be stable across them.
fn timed_run(
    vms: usize,
    ticks: u64,
    full: bool,
    shards: usize,
    opts: &PerfOpts,
) -> (ModeSample, (Vec<i64>, Vec<u64>)) {
    let (mut best, fp) = timed_once(vms, ticks, full, shards, opts);
    for _ in 1..opts.repeats.max(1) {
        let (sample, fp_again) = timed_once(vms, ticks, full, shards, opts);
        assert_eq!(fp, fp_again, "perf run is not deterministic");
        if sample.events_per_sec > best.events_per_sec {
            best = sample;
        }
    }
    (best, fp)
}

/// Real-time factor of a run covering `ticks` clock periods.
fn rtf(ticks: u64, sample: &ModeSample) -> f64 {
    if sample.seconds > 0.0 {
        ticks as f64 * TICK_SECONDS / sample.seconds
    } else {
        f64::INFINITY
    }
}

/// Runs the whole scaling axis, both modes per size, then the
/// large-model scale axis, sequential plus every `opts.shards` count.
#[must_use]
pub fn run_perf(opts: &PerfOpts) -> PerfReport {
    let cases = scaling_axis()
        .into_iter()
        .map(|(name, vms)| {
            // Full-rescan first, then incremental: if something is badly
            // wrong with the dependency index, the reference number is
            // already in hand when the comparison trips.
            let (full, fp_full) = timed_run(vms, opts.ticks, true, 0, opts);
            let (incremental, fp_inc) = timed_run(vms, opts.ticks, false, 0, opts);
            PerfCase {
                name,
                vms,
                vcpus: vms * 2,
                pcpus: vms.max(2),
                speedup: incremental.events_per_sec / full.events_per_sec,
                identical: fp_full == fp_inc,
                full_rescan: full,
                incremental,
            }
        })
        .collect();
    let scale_cases = scale_axis(opts.max_vms)
        .into_iter()
        .map(|(name, vms)| {
            let ticks = scale_ticks(vms, opts.ticks);
            let (sequential, fp_seq) = timed_run(vms, ticks, false, 0, opts);
            let sharded = opts
                .shards
                .iter()
                .filter(|&&s| s >= 2)
                .map(|&shards| {
                    let (sample, fp) = timed_run(vms, ticks, false, shards, opts);
                    ShardSample {
                        shards,
                        rtf: rtf(ticks, &sample),
                        identical: fp == fp_seq,
                        sample,
                    }
                })
                .collect();
            ScaleCase {
                name,
                vms,
                vcpus: vms * 2,
                pcpus: vms.max(2),
                ticks,
                sequential_rtf: rtf(ticks, &sequential),
                sequential,
                sharded,
            }
        })
        .collect();
    PerfReport {
        ticks: opts.ticks,
        repeats: opts.repeats.max(1),
        cases,
        scale_cases,
    }
}

/// Compares a fresh report against a checked-in baseline JSON (the shape
/// [`PerfReport::to_json`] writes): for every case present in both, the
/// incremental core's speedup over full rescan must not have dropped by
/// more than `max_regression`×. The speedup is a same-run ratio, immune
/// to absolute machine speed, so a baseline recorded on one machine
/// gates runs on any other. Returns the offending descriptions
/// (empty = pass).
///
/// # Errors
///
/// If the baseline file cannot be read or is not shaped like a perf
/// report.
pub fn check_against_baseline(
    report: &PerfReport,
    baseline_path: &Path,
    max_regression: f64,
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline: Value = serde_json::from_str(&text)?;
    let cases = baseline
        .get("cases")
        .and_then(Value::as_array)
        .ok_or("baseline has no `cases` array")?;
    let mut regressions = Vec::new();
    for c in cases {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("?");
        let Some(base_speedup) = c.get("speedup").and_then(Value::as_f64) else {
            continue;
        };
        let Some(now) = report.cases.iter().find(|rc| rc.name == name) else {
            continue;
        };
        if now.speedup * max_regression < base_speedup {
            regressions.push(format!(
                "{name}: speedup {:.2}x now vs {base_speedup:.2}x baseline \
                 (>{max_regression:.1}x regression)",
                now.speedup,
            ));
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> PerfOpts {
        PerfOpts {
            ticks: 50,
            seed: 42,
            repeats: 1,
            max_vms: 0,
            shards: Vec::new(),
        }
    }

    #[test]
    fn both_modes_are_bit_identical_on_every_cell() {
        let report = run_perf(&tiny_opts());
        assert_eq!(report.cases.len(), 5);
        assert!(report.all_identical(), "{}", report.render_text());
        for c in &report.cases {
            assert_eq!(c.full_rescan.events, c.incremental.events);
            assert!(c.full_rescan.events > 0);
        }
    }

    #[test]
    fn json_shape_carries_both_modes_and_the_speedup() {
        let report = run_perf(&tiny_opts());
        let v = report.to_json();
        let cases = v.get("cases").and_then(Value::as_array).unwrap();
        assert_eq!(cases.len(), 5);
        for c in cases {
            for key in ["full_rescan", "incremental", "speedup", "identical"] {
                assert!(c.get(key).is_some(), "missing {key}");
            }
        }
        assert!(v.get("speedup_at_largest").is_some());
    }

    #[test]
    fn scale_axis_shards_are_bit_identical_and_report_rtf() {
        let opts = PerfOpts {
            ticks: 100,
            seed: 42,
            repeats: 1,
            max_vms: 64,
            shards: vec![2],
        };
        let report = run_perf(&opts);
        assert_eq!(report.scale_cases.len(), 1);
        let c = &report.scale_cases[0];
        assert_eq!(
            (c.name.as_str(), c.vms, c.vcpus, c.pcpus),
            ("64vm", 64, 128, 64)
        );
        assert_eq!(c.ticks, scale_ticks(64, 100));
        assert!(c.sequential.events > 0);
        assert!(c.sequential_rtf > 0.0);
        assert_eq!(c.sharded.len(), 1);
        let s = &c.sharded[0];
        assert_eq!(s.shards, 2);
        assert!(s.identical, "{}", report.render_text());
        assert_eq!(s.sample.events, c.sequential.events);
        assert!(report.all_identical());
        assert_eq!(report.rtf_at_largest(), Some(c.best_rtf()));

        let v = report.to_json();
        let scale = v.get("scale_cases").and_then(Value::as_array).unwrap();
        assert_eq!(scale.len(), 1);
        for key in [
            "name",
            "vms",
            "ticks",
            "sequential",
            "sequential_rtf",
            "sharded",
        ] {
            assert!(scale[0].get(key).is_some(), "missing {key}");
        }
        let sharded = scale[0].get("sharded").and_then(Value::as_array).unwrap();
        assert!(sharded[0].get("rtf").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(v.get("rtf_at_largest").is_some());
        assert!(report.render_text().contains("shards=2"));
    }

    #[test]
    fn scale_axis_is_empty_below_its_smallest_cell() {
        assert!(scale_axis(0).is_empty());
        assert!(scale_axis(63).is_empty());
        assert_eq!(
            scale_axis(1024).iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![64, 256, 1024]
        );
        // Per-cell ticks shrink with model size but never below the floor.
        assert_eq!(scale_ticks(64, 2_000), 500);
        assert_eq!(scale_ticks(256, 2_000), 125);
        assert_eq!(scale_ticks(1024, 2_000), 31);
        assert_eq!(scale_ticks(1024, 100), 25);
    }

    #[test]
    fn baseline_regression_detection() {
        let report = run_perf(&tiny_opts());
        let dir = std::env::temp_dir().join(format!("vsched-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        // A baseline written from the report itself never regresses.
        std::fs::write(&path, serde_json::to_string(&report.to_json()).unwrap()).unwrap();
        assert!(check_against_baseline(&report, &path, 2.0)
            .unwrap()
            .is_empty());

        // An impossibly good baseline speedup trips every case.
        let mut doctored = report.clone();
        for c in &mut doctored.cases {
            c.speedup = 1e15;
        }
        std::fs::write(&path, serde_json::to_string(&doctored.to_json()).unwrap()).unwrap();
        let regressions = check_against_baseline(&report, &path, 2.0).unwrap();
        assert_eq!(regressions.len(), report.cases.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
