//! Integration: every shipped config file under `configs/` parses, builds,
//! and runs end to end (with shortened horizons).

use std::fs;
use vsched_cli::ExperimentConfig;
use vsched_core::ExperimentBuilder;

fn configs_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs")
}

#[test]
fn shipped_configs_parse_and_build() {
    let mut found = 0;
    for entry in fs::read_dir(configs_dir()).expect("configs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        found += 1;
        let text = fs::read_to_string(&path).expect("readable config");
        let config = ExperimentConfig::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let system = config.system().unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(system.total_vcpus() > 0);
        config
            .policy_kinds()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        config
            .engine_kind()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
    }
    assert!(found >= 4, "expected the shipped configs, found {found}");
}

#[test]
fn shipped_configs_run_quickly() {
    for entry in fs::read_dir(configs_dir()).expect("configs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable config");
        let config = ExperimentConfig::from_json(&text).expect("valid config");
        let system = config.system().expect("valid system");
        // Shortened run: first policy only, tiny horizon, direct engine.
        let policy = config.policy_kinds().expect("valid policies")[0].clone();
        let report = ExperimentBuilder::new(system, policy)
            .engine(vsched_core::Engine::Direct)
            .warmup(200)
            .horizon(2_000)
            .replications_exact(2)
            .run()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(report.avg_pcpu_utilization() > 0.0, "{path:?} ran");
    }
}
