//! Integration: every shipped config file under `configs/` parses, builds,
//! and runs end to end (with shortened horizons).
//!
//! `*.sweep.json` files are campaign specs, not single experiment configs;
//! they are validated by planning them (every cell must resolve to a
//! buildable system). The campaign crate's own integration tests cover
//! actually running sweeps.

use std::fs;
use vsched_campaign::{plan, SweepSpec};
use vsched_cli::ExperimentConfig;
use vsched_core::ExperimentBuilder;

fn configs_dir() -> std::path::PathBuf {
    // Shipped configs are written to be run from the repo root (relative
    // `trace` paths resolve against the working directory); make the test
    // process match. Both tests set the same directory, so concurrent
    // execution is safe.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::env::set_current_dir(&root).expect("repo root exists");
    root.join("configs")
}

fn is_sweep_spec(path: &std::path::Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".sweep.json"))
}

#[test]
fn shipped_configs_parse_and_build() {
    let mut found = 0;
    for entry in fs::read_dir(configs_dir()).expect("configs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        found += 1;
        if is_sweep_spec(&path) {
            let spec = SweepSpec::load(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            let plan = plan(&spec).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert!(plan.total_cells() > 0, "{path:?} plans no cells");
            for exp in &plan.experiments {
                for cell in &exp.cells {
                    let system = cell
                        .config
                        .system()
                        .unwrap_or_else(|e| panic!("{path:?} {}: {e}", cell.key));
                    assert!(system.total_vcpus() > 0);
                    cell.config
                        .policy_kind()
                        .unwrap_or_else(|e| panic!("{path:?} {}: {e}", cell.key));
                }
            }
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable config");
        let config = ExperimentConfig::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let system = config.system().unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(system.total_vcpus() > 0);
        config
            .policy_kinds()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        config
            .engine_kind()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
    }
    assert!(found >= 4, "expected the shipped configs, found {found}");
}

#[test]
fn shipped_configs_run_quickly() {
    for entry in fs::read_dir(configs_dir()).expect("configs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "json") || is_sweep_spec(&path) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable config");
        let config = ExperimentConfig::from_json(&text).expect("valid config");
        let system = config.system().expect("valid system");
        // Shortened run: first policy only, tiny horizon, direct engine.
        let policy = config.policy_kinds().expect("valid policies")[0].clone();
        let report = ExperimentBuilder::new(system, policy)
            .engine(vsched_core::Engine::Direct)
            .warmup(200)
            .horizon(2_000)
            .replications_exact(2)
            .run()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(report.avg_pcpu_utilization() > 0.0, "{path:?} ran");
    }
}
