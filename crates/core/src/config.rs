//! System configuration: VMs, VCPUs, PCPUs, workloads, and simulation
//! parameters.
//!
//! Mirrors what a Mobius user of the paper's framework configures through
//! the GUI: the number of PCPUs, the set of VM sub-models (each with its
//! VCPU count), the workload distribution and the synchronization-point
//! ratio.

use serde::{Deserialize, Serialize};
use vsched_des::Dist;

use crate::error::CoreError;
use crate::types::VcpuId;

/// How a VM's synchronization points behave.
///
/// The paper evaluates only barriers ("For this project, we only consider
/// barrier synchronization") and lists "represent more synchronization
/// mechanisms" as future work (§V); [`SyncMechanism::SpinLock`] is that
/// extension, modeling the guest-kernel critical sections of §II.B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SyncMechanism {
    /// A synchronization-point workload is a **barrier**: the VM generates
    /// no further workloads until every outstanding job completes (the
    /// paper's semantics).
    #[default]
    Barrier,
    /// A synchronization-point workload is a **critical section** guarded
    /// by one VM-wide spinlock: it holds the lock for its entire duration.
    /// Sibling jobs that need the lock *spin* — they burn PCPU time
    /// without making progress — until the holder releases it. A preempted
    /// holder ("lock-holder preemption", the semantic-gap problem of
    /// §II.B) leaves its siblings spinning for whole timeslices.
    SpinLock,
}

/// Workload characterization of one VM (the paper's Workload Generator
/// sub-model parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Distribution of the job *load duration* — the number of ticks a VCPU
    /// needs to process one workload. Samples are rounded and clamped to at
    /// least 1 tick.
    pub load: Dist,
    /// Probability that a generated workload is a synchronization point
    /// (barrier or critical section, per [`WorkloadSpec::sync_mechanism`]).
    /// A 1:5 sync ratio is probability 0.2.
    pub sync_probability: f64,
    /// What a synchronization point means (default: barrier, as in the
    /// paper).
    pub sync_mechanism: SyncMechanism,
    /// Deterministic synchronization pattern: `Some(k)` makes exactly
    /// every `k`-th generated workload a synchronization point (the
    /// literal reading of the paper's "the 1:5 ratio means that for five
    /// workloads there is one synchronization point"), overriding the
    /// Bernoulli `sync_probability`. `None` (default) samples each
    /// workload independently with `sync_probability`.
    pub sync_every: Option<u32>,
    /// Interarrival-time distribution of workload generation, or `None` for
    /// a *saturated* generator that always has work available (the paper's
    /// evaluation setting: generation "interrupted only when
    /// synchronization points block the VMs").
    pub interarrival: Option<Dist>,
}

impl WorkloadSpec {
    /// The paper's evaluation workload: saturated generation, uniform load
    /// on `[5, 15)` ticks, 1:5 synchronization ratio.
    #[must_use]
    pub fn paper_default() -> Self {
        WorkloadSpec {
            load: Dist::Uniform {
                low: 5.0,
                high: 15.0,
            },
            sync_probability: 0.2,
            sync_mechanism: SyncMechanism::Barrier,
            sync_every: None,
            interarrival: None,
        }
    }

    /// Sets the sync ratio as the paper writes it: `1:k` means one
    /// synchronization point per `k` workloads, i.e. probability `1/k`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `points` or `per_workloads` is zero
    /// or the resulting probability exceeds 1.
    pub fn with_sync_ratio(mut self, points: u32, per_workloads: u32) -> Result<Self, CoreError> {
        if points == 0 || per_workloads == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "sync ratio terms must be positive".into(),
            });
        }
        let p = f64::from(points) / f64::from(per_workloads);
        if p > 1.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("sync ratio {points}:{per_workloads} exceeds 1 point per workload"),
            });
        }
        self.sync_probability = p;
        Ok(self)
    }

    /// Switches synchronization points to spinlock critical sections.
    #[must_use]
    pub fn with_spinlock(mut self) -> Self {
        self.sync_mechanism = SyncMechanism::SpinLock;
        self
    }

    /// Makes exactly every `k`-th workload a synchronization point
    /// (deterministic pattern) instead of Bernoulli sampling.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `k` is zero.
    pub fn with_sync_every(mut self, k: u32) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "sync_every must be at least 1".into(),
            });
        }
        self.sync_every = Some(k);
        Ok(self)
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.sync_probability) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "sync_probability must be in [0, 1], got {}",
                    self.sync_probability
                ),
            });
        }
        Ok(())
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::paper_default()
    }
}

/// One VM sub-model: a VCPU count plus a workload characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Number of VCPUs ("users can plug in as many VCPU sub-models ... as
    /// they need to").
    pub vcpus: usize,
    /// Workload generator parameters.
    pub workload: WorkloadSpec,
    /// Proportional-share weight (default 1). Consumed by weight-aware
    /// policies such as [`crate::sched::Credit`]; weight-oblivious
    /// policies (the paper's trio) ignore it.
    pub weight: u32,
}

impl VmSpec {
    /// A VM with `vcpus` VCPUs, the paper's default workload, and weight 1.
    #[must_use]
    pub fn new(vcpus: usize) -> Self {
        VmSpec {
            vcpus,
            workload: WorkloadSpec::paper_default(),
            weight: 1,
        }
    }

    /// Sets the proportional-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// A complete virtualization-system configuration.
///
/// Build with [`SystemConfig::builder`]; see the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    pcpus: usize,
    vms: Vec<VmSpec>,
    timeslice: u64,
    vcpu_ids: Vec<VcpuId>,
}

impl SystemConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// Number of physical CPUs.
    #[must_use]
    pub fn pcpus(&self) -> usize {
        self.pcpus
    }

    /// The VM sub-models.
    #[must_use]
    pub fn vms(&self) -> &[VmSpec] {
        &self.vms
    }

    /// Scheduler timeslice in ticks: how long a VCPU keeps a PCPU once
    /// assigned.
    #[must_use]
    pub fn timeslice(&self) -> u64 {
        self.timeslice
    }

    /// Total number of VCPUs across all VMs.
    #[must_use]
    pub fn total_vcpus(&self) -> usize {
        self.vcpu_ids.len()
    }

    /// Identity of every VCPU, ordered by global index.
    #[must_use]
    pub fn vcpu_ids(&self) -> &[VcpuId] {
        &self.vcpu_ids
    }

    /// Global indices of VM `vm`'s VCPUs.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_vcpus(&self, vm: usize) -> Vec<usize> {
        assert!(vm < self.vms.len(), "VM index {vm} out of range");
        self.vcpu_ids
            .iter()
            .filter(|id| id.vm == vm)
            .map(|id| id.global)
            .collect()
    }

    /// A short human-readable description, e.g. `"2+1+1 VCPUs / 4 PCPUs"`.
    #[must_use]
    pub fn describe(&self) -> String {
        let vm_desc: Vec<String> = self.vms.iter().map(|v| v.vcpus.to_string()).collect();
        format!("{} VCPUs / {} PCPUs", vm_desc.join("+"), self.pcpus)
    }
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    pcpus: usize,
    vms: Vec<VmSpec>,
    timeslice: u64,
    sync_ratio: Option<(u32, u32)>,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemConfigBuilder {
    /// Creates a builder with 1 PCPU, no VMs, and a 30-tick timeslice.
    #[must_use]
    pub fn new() -> Self {
        SystemConfigBuilder {
            pcpus: 1,
            vms: Vec::new(),
            timeslice: 30,
            sync_ratio: None,
        }
    }

    /// Sets the number of physical CPUs.
    #[must_use]
    pub fn pcpus(mut self, n: usize) -> Self {
        self.pcpus = n;
        self
    }

    /// Adds a VM with `vcpus` VCPUs and the default workload.
    #[must_use]
    pub fn vm(mut self, vcpus: usize) -> Self {
        self.vms.push(VmSpec::new(vcpus));
        self
    }

    /// Adds a fully specified VM.
    #[must_use]
    pub fn vm_spec(mut self, spec: VmSpec) -> Self {
        self.vms.push(spec);
        self
    }

    /// Adds a VM with the given proportional-share weight.
    #[must_use]
    pub fn vm_weighted(mut self, vcpus: usize, weight: u32) -> Self {
        self.vms.push(VmSpec::new(vcpus).with_weight(weight));
        self
    }

    /// Sets the scheduler timeslice in ticks.
    #[must_use]
    pub fn timeslice(mut self, ticks: u64) -> Self {
        self.timeslice = ticks;
        self
    }

    /// Sets the synchronization ratio `points:per_workloads` on **every**
    /// VM added so far and later (applied at [`SystemConfigBuilder::build`]).
    #[must_use]
    pub fn sync_ratio(mut self, points: u32, per_workloads: u32) -> Self {
        self.sync_ratio = Some((points, per_workloads));
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if there are no PCPUs, no VMs, a VM with
    /// zero VCPUs, a zero timeslice, or an invalid sync ratio.
    pub fn build(mut self) -> Result<SystemConfig, CoreError> {
        if self.pcpus == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "at least one PCPU is required".into(),
            });
        }
        if self.vms.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "at least one VM is required".into(),
            });
        }
        if self.timeslice == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "timeslice must be at least one tick".into(),
            });
        }
        if let Some((a, b)) = self.sync_ratio {
            for vm in &mut self.vms {
                vm.workload = vm.workload.clone().with_sync_ratio(a, b)?;
            }
        }
        let mut vcpu_ids = Vec::new();
        for (vm_idx, vm) in self.vms.iter().enumerate() {
            if vm.vcpus == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("VM {vm_idx} has zero VCPUs"),
                });
            }
            if vm.weight == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("VM {vm_idx} has zero weight"),
                });
            }
            vm.workload.validate()?;
            for sibling in 0..vm.vcpus {
                vcpu_ids.push(VcpuId {
                    vm: vm_idx,
                    sibling,
                    global: vcpu_ids.len(),
                });
            }
        }
        Ok(SystemConfig {
            pcpus: self.pcpus,
            vms: self.vms,
            timeslice: self.timeslice,
            vcpu_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig8_topology() {
        // One 2-VCPU VM and two 1-VCPU VMs.
        let c = SystemConfig::builder()
            .pcpus(4)
            .vm(2)
            .vm(1)
            .vm(1)
            .sync_ratio(1, 5)
            .build()
            .unwrap();
        assert_eq!(c.total_vcpus(), 4);
        assert_eq!(c.vm_vcpus(0), vec![0, 1]);
        assert_eq!(c.vm_vcpus(1), vec![2]);
        assert_eq!(c.vm_vcpus(2), vec![3]);
        assert_eq!(c.describe(), "2+1+1 VCPUs / 4 PCPUs");
        assert!((c.vms()[0].workload.sync_probability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn vcpu_ids_are_consistent() {
        let c = SystemConfig::builder()
            .pcpus(2)
            .vm(3)
            .vm(2)
            .build()
            .unwrap();
        for (g, id) in c.vcpu_ids().iter().enumerate() {
            assert_eq!(id.global, g);
        }
        assert_eq!(
            c.vcpu_ids()[3],
            VcpuId {
                vm: 1,
                sibling: 0,
                global: 3
            }
        );
    }

    #[test]
    fn validation_errors() {
        assert!(SystemConfig::builder().pcpus(0).vm(1).build().is_err());
        assert!(SystemConfig::builder().pcpus(1).build().is_err());
        assert!(SystemConfig::builder().pcpus(1).vm(0).build().is_err());
        assert!(SystemConfig::builder()
            .pcpus(1)
            .vm(1)
            .timeslice(0)
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .pcpus(1)
            .vm(1)
            .sync_ratio(0, 5)
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .pcpus(1)
            .vm(1)
            .sync_ratio(3, 2)
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .pcpus(1)
            .vm_weighted(1, 0)
            .build()
            .is_err());
    }

    #[test]
    fn weights_default_and_custom() {
        let c = SystemConfig::builder()
            .pcpus(1)
            .vm(1)
            .vm_weighted(1, 4)
            .build()
            .unwrap();
        assert_eq!(c.vms()[0].weight, 1);
        assert_eq!(c.vms()[1].weight, 4);
    }

    #[test]
    fn sync_ratio_one_to_two() {
        let c = SystemConfig::builder()
            .pcpus(4)
            .vm(2)
            .sync_ratio(1, 2)
            .build()
            .unwrap();
        assert!((c.vms()[0].workload.sync_probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn workload_spec_defaults() {
        let w = WorkloadSpec::default();
        assert_eq!(w.sync_probability, 0.2);
        assert_eq!(w.sync_mechanism, SyncMechanism::Barrier);
        assert!(w.interarrival.is_none());
        assert_eq!(w.load.mean(), 10.0);
        let w = w.with_spinlock();
        assert_eq!(w.sync_mechanism, SyncMechanism::SpinLock);
        let w = w.with_sync_every(5).unwrap();
        assert_eq!(w.sync_every, Some(5));
        assert!(WorkloadSpec::default().with_sync_every(0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vm_vcpus_bounds_checked() {
        let c = SystemConfig::builder().pcpus(1).vm(1).build().unwrap();
        let _ = c.vm_vcpus(5);
    }
}
