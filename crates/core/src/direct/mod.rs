//! The direct time-stepped engine.
//!
//! A straight-line implementation of the framework's model semantics,
//! without the SAN formalism. It exists for two reasons:
//!
//! 1. **Model fidelity** — the paper's Discussion (§V) lists "evaluating
//!    the fidelity of the model" as open work. Running the same
//!    configuration through two independently implemented engines (this
//!    one and [`crate::san_model`]) and comparing reward estimates is the
//!    cross-validation the authors asked for.
//! 2. **Speed** — parameter sweeps (ablations) run orders of magnitude
//!    faster without gate/activity dispatch.
//!
//! # Canonical tick semantics
//!
//! Both engines implement the exact same ordering within one clock tick:
//!
//! 1. **process** — every BUSY VCPU's `remaining_load` decreases by 1;
//!    at zero the job completes and the VCPU becomes READY.
//! 2. **unblock** — a VM blocked on a synchronization point unblocks once
//!    every outstanding job in the VM has completed (the barrier clears).
//! 3. **expire** — every ACTIVE VCPU's timeslice decreases by 1; at zero
//!    the VCPU is scheduled out (INACTIVE, PCPU freed).
//! 4. **schedule** — the pluggable policy runs over the full system state;
//!    its decision is validated and applied. A VCPU scheduled in with
//!    pending work resumes BUSY, otherwise READY.
//! 5. **dispatch** — each unblocked VM generates workloads and hands them
//!    to READY VCPUs (lowest sibling index first). Dispatching a
//!    synchronization-point workload blocks the VM.
//!
//! A job dispatched at tick *t* therefore receives its first processing at
//! tick *t + 1*, and a VCPU scheduled in at tick *t* keeps its PCPU for
//! exactly `timeslice` ticks.

pub mod trace;

pub use trace::{Trace, TraceEvent};

use vsched_des::{RngStreams, Xoshiro256StarStar};

use crate::config::{SyncMechanism, SystemConfig};
use crate::error::CoreError;
use crate::metrics::SampleMetrics;
use crate::observe::TickObserver;
use crate::sched::{validate_decision, SchedulingPolicy};
use crate::types::{PcpuView, VcpuId, VcpuStatus, VcpuView};
use crate::util::{duty_allows, sample_ticks, sample_ticks_scaled, FULL_LEVEL};

#[derive(Debug, Clone)]
struct VcpuState {
    id: VcpuId,
    status: VcpuStatus,
    remaining_load: u64,
    sync_point: bool,
    /// The current job is a critical section that must hold the VM lock
    /// (spinlock extension; implies `sync_point`).
    needs_lock: bool,
    pcpu: Option<usize>,
    timeslice: u64,
    last_in: Option<u64>,
    // Metric counters (ticks observed in each state).
    active_ticks: u64,
    busy_ticks: u64,
    /// Ticks spent spinning on a held lock (spinlock extension).
    spin_ticks: u64,
}

#[derive(Debug, Clone)]
struct VmState {
    blocked: bool,
    /// Workloads generated so far (drives the deterministic sync pattern).
    generated: u64,
    /// Global index of the VCPU holding the VM's spinlock, if any
    /// (spinlock extension). A preempted holder keeps the lock — the
    /// lock-holder-preemption problem.
    lock: Option<usize>,
    /// Arrived-but-undispatched workloads (only used in interarrival mode).
    pending: u64,
    /// Tick of the next workload arrival (interarrival mode).
    next_arrival: Option<u64>,
}

/// The direct engine. See the module docs for the tick semantics.
///
/// # Example
///
/// ```
/// use vsched_core::{direct::DirectSim, PolicyKind, SystemConfig};
///
/// let config = SystemConfig::builder().pcpus(1).vm(2).build()?;
/// let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 7);
/// sim.run(1_000)?;
/// let metrics = sim.metrics();
/// // Two saturated VCPUs share one PCPU roughly evenly.
/// assert!((metrics.avg_vcpu_availability() - 0.5).abs() < 0.05);
/// # Ok::<(), vsched_core::CoreError>(())
/// ```
pub struct DirectSim {
    config: SystemConfig,
    policy: Box<dyn SchedulingPolicy>,
    tick: u64,
    vcpus: Vec<VcpuState>,
    /// `pcpus[p]` = global index of the VCPU holding PCPU `p`.
    pcpus: Vec<Option<usize>>,
    vms: Vec<VmState>,
    /// Whether each VM is currently admitted (dynamic membership; all
    /// `true` for static configurations).
    admitted: Vec<bool>,
    /// Per-VM workload-generation level in per-mille (`1000` = the
    /// configured full rate; `0` = paused). Drives the trace frontend's
    /// load models.
    load_level: Vec<u32>,
    vm_rngs: Vec<Xoshiro256StarStar>,
    pcpu_ticks: Vec<u64>,
    observed_ticks: u64,
    trace: Option<Trace>,
    observer: Option<Box<dyn TickObserver>>,
}

impl std::fmt::Debug for DirectSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectSim")
            .field("tick", &self.tick)
            .field("policy", &self.policy.name())
            .field("config", &self.config.describe())
            .finish()
    }
}

impl DirectSim {
    /// Creates an engine over `config` running `policy`, with randomness
    /// derived from `seed`.
    #[must_use]
    pub fn new(config: SystemConfig, policy: Box<dyn SchedulingPolicy>, seed: u64) -> Self {
        let streams = RngStreams::new(seed);
        let vcpus = config
            .vcpu_ids()
            .iter()
            .map(|&id| VcpuState {
                id,
                status: VcpuStatus::Inactive,
                remaining_load: 0,
                sync_point: false,
                needs_lock: false,
                pcpu: None,
                timeslice: 0,
                last_in: None,
                active_ticks: 0,
                busy_ticks: 0,
                spin_ticks: 0,
            })
            .collect();
        let vms = config
            .vms()
            .iter()
            .map(|_| VmState {
                blocked: false,
                generated: 0,
                lock: None,
                pending: 0,
                next_arrival: None,
            })
            .collect();
        let vm_rngs = (0..config.vms().len())
            .map(|vm| streams.stream(100 + vm as u64))
            .collect();
        DirectSim {
            pcpus: vec![None; config.pcpus()],
            pcpu_ticks: vec![0; config.pcpus()],
            admitted: vec![true; config.vms().len()],
            load_level: vec![FULL_LEVEL; config.vms().len()],
            vcpus,
            vms,
            vm_rngs,
            tick: 0,
            observed_ticks: 0,
            trace: None,
            observer: None,
            policy,
            config,
        }
    }

    /// Attaches an end-of-tick observer (see [`crate::observe`]); replaces
    /// any previous one. With no observer attached the per-tick cost is a
    /// single untaken branch.
    pub fn attach_observer(&mut self, observer: Box<dyn TickObserver>) {
        self.observer = Some(observer);
    }

    /// Removes and returns the attached observer, if any.
    pub fn detach_observer(&mut self) -> Option<Box<dyn TickObserver>> {
        self.observer.take()
    }

    /// Starts recording up to `capacity` [`TraceEvent`]s. Subsequent calls
    /// replace the recording.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace recorded so far, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Stops tracing and returns the recording.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(event);
        }
    }

    /// Current tick count.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.tick
    }

    /// The configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Whether VM `vm` is currently blocked on a synchronization point.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_blocked(&self, vm: usize) -> bool {
        self.vms[vm].blocked
    }

    /// Whether VM `vm` is currently admitted (present in the system).
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_admitted(&self, vm: usize) -> bool {
        self.admitted[vm]
    }

    /// The workload-generation level of VM `vm` in per-mille.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn load_level(&self, vm: usize) -> u32 {
        self.load_level[vm]
    }

    /// Admits or retires VM `vm` at the current tick boundary (trace
    /// frontend). A no-op when the VM is already in the target state, so
    /// a degenerate trace (all VMs present from the start) is bit-identical
    /// to the static path.
    ///
    /// Retiring schedules out every VCPU of the VM, discards its partial
    /// work and synchronization state, and stops workload generation; the
    /// VCPUs disappear from policy candidate sets (their views turn
    /// non-present). Re-admission restarts generation from an empty queue;
    /// in interarrival mode the first arrival is drawn from the admission
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn set_admitted(&mut self, vm: usize, admitted: bool) {
        if self.admitted[vm] == admitted {
            return;
        }
        self.admitted[vm] = admitted;
        if admitted {
            // Fresh interarrival draw on re-admission, anchored "now":
            // the lazy static-path draw is anchored at tick 0 and would
            // otherwise flood the queue with phantom arrivals.
            if let Some(inter) = &self.config.vms()[vm].workload.interarrival {
                let lm = self.load_level[vm];
                if lm > 0 {
                    let d = sample_ticks_scaled(inter, &mut self.vm_rngs[vm], lm);
                    self.vms[vm].next_arrival = Some(self.tick + d);
                }
            }
            return;
        }
        let members: Vec<usize> = self.config.vm_vcpus(vm);
        for g in members {
            self.schedule_out(g);
            let v = &mut self.vcpus[g];
            v.remaining_load = 0;
            v.sync_point = false;
            v.needs_lock = false;
        }
        let state = &mut self.vms[vm];
        state.blocked = false;
        state.lock = None;
        state.pending = 0;
        state.next_arrival = None;
    }

    /// Sets VM `vm`'s workload-generation level in per-mille of the
    /// configured rate (trace frontend; `1000` = full rate, `0` = paused).
    /// A no-op when the level is unchanged. In saturated mode the level
    /// duty-cycles generation ticks; in interarrival mode it scales the
    /// interarrival times, resampling the pending arrival from the
    /// current tick.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range or `per_mille > 1000`.
    pub fn set_load_level(&mut self, vm: usize, per_mille: u32) {
        assert!(
            per_mille <= FULL_LEVEL,
            "load level {per_mille} out of range"
        );
        if self.load_level[vm] == per_mille {
            return;
        }
        self.load_level[vm] = per_mille;
        if let Some(inter) = &self.config.vms()[vm].workload.interarrival {
            if per_mille == 0 {
                // Pause: abort the pending arrival (re-drawn on resume).
                self.vms[vm].next_arrival = None;
            } else if self.admitted[vm] {
                let d = sample_ticks_scaled(inter, &mut self.vm_rngs[vm], per_mille);
                self.vms[vm].next_arrival = Some(self.tick + d);
            }
        }
    }

    /// Snapshot of every VCPU, as a policy would see it.
    #[must_use]
    pub fn vcpu_views(&self) -> Vec<VcpuView> {
        self.vcpus
            .iter()
            .map(|v| VcpuView {
                id: v.id,
                status: v.status,
                remaining_load: v.remaining_load,
                sync_point: v.sync_point,
                assigned_pcpu: v.pcpu,
                timeslice_remaining: v.timeslice,
                last_scheduled_in: v.last_in,
                vm_weight: self.config.vms()[v.id.vm].weight,
                present: self.admitted[v.id.vm],
            })
            .collect()
    }

    /// Snapshot of every PCPU.
    #[must_use]
    pub fn pcpu_views(&self) -> Vec<PcpuView> {
        self.pcpus
            .iter()
            .enumerate()
            .map(|(id, &assigned)| PcpuView {
                id,
                assigned: assigned.map(|g| self.vcpus[g].id),
            })
            .collect()
    }

    /// Advances the simulation by one clock tick.
    ///
    /// # Errors
    ///
    /// [`CoreError::PolicyViolation`] if the policy produces an invalid
    /// decision; any error returned by an attached [`TickObserver`].
    pub fn tick(&mut self) -> Result<(), CoreError> {
        self.tick += 1;

        // Phase 1: process workload on BUSY VCPUs, in global index order
        // (lock hand-off within a tick is index-ordered and deterministic).
        for g in 0..self.vcpus.len() {
            if self.vcpus[g].status != VcpuStatus::Busy {
                continue;
            }
            if self.vcpus[g].needs_lock {
                let vm = self.vcpus[g].id.vm;
                match self.vms[vm].lock {
                    None => {
                        self.vms[vm].lock = Some(g); // acquire, then run
                        let tick = self.tick;
                        self.emit(TraceEvent::LockAcquired { tick, vcpu: g });
                    }
                    Some(holder) if holder == g => {} // already holding
                    Some(_) => {
                        // Spin: burn the tick without making progress.
                        self.vcpus[g].spin_ticks += 1;
                        continue;
                    }
                }
            }
            let v = &mut self.vcpus[g];
            v.remaining_load -= 1;
            if v.remaining_load == 0 {
                v.status = VcpuStatus::Ready;
                v.sync_point = false;
                let released = v.needs_lock;
                if v.needs_lock {
                    v.needs_lock = false;
                    self.vms[v.id.vm].lock = None; // release at section end
                }
                let tick = self.tick;
                self.emit(TraceEvent::JobComplete { tick, vcpu: g });
                if released {
                    self.emit(TraceEvent::LockReleased { tick, vcpu: g });
                }
            }
        }

        // Phase 2: clear barriers whose jobs have all completed.
        for vm in 0..self.vms.len() {
            if self.vms[vm].blocked {
                let outstanding = self
                    .vcpus
                    .iter()
                    .any(|v| v.id.vm == vm && v.remaining_load > 0);
                if !outstanding {
                    self.vms[vm].blocked = false;
                    let tick = self.tick;
                    self.emit(TraceEvent::Unblocked { tick, vm });
                }
            }
        }

        // Phase 3: decrement timeslices; expire to INACTIVE.
        for g in 0..self.vcpus.len() {
            if self.vcpus[g].status.is_active() {
                self.vcpus[g].timeslice -= 1;
                if self.vcpus[g].timeslice == 0 {
                    self.schedule_out(g);
                }
            }
        }

        // Phase 4: run the pluggable scheduling algorithm.
        let vcpu_views = self.vcpu_views();
        let pcpu_views = self.pcpu_views();
        let decision =
            self.policy
                .schedule(&vcpu_views, &pcpu_views, self.tick, self.config.timeslice());
        validate_decision(self.policy.name(), &vcpu_views, &pcpu_views, &decision)?;
        for &g in &decision.preemptions {
            self.schedule_out(g);
        }
        for a in &decision.assignments {
            let v = &mut self.vcpus[a.vcpu];
            v.pcpu = Some(a.pcpu);
            v.timeslice = a.timeslice;
            v.last_in = Some(self.tick);
            v.status = if v.remaining_load > 0 {
                VcpuStatus::Busy
            } else {
                VcpuStatus::Ready
            };
            self.pcpus[a.pcpu] = Some(a.vcpu);
            let tick = self.tick;
            self.emit(TraceEvent::ScheduleIn {
                tick,
                vcpu: a.vcpu,
                pcpu: a.pcpu,
                timeslice: a.timeslice,
            });
        }

        // Phase 5: workload generation and dispatch.
        for vm in 0..self.vms.len() {
            self.dispatch(vm);
        }

        // Metrics: the state after the tick's phases holds until the next
        // tick — sample it.
        self.observed_ticks += 1;
        for v in &mut self.vcpus {
            if v.status.is_active() {
                v.active_ticks += 1;
            }
            if v.status == VcpuStatus::Busy {
                v.busy_ticks += 1;
            }
        }
        for (p, assigned) in self.pcpus.iter().enumerate() {
            if assigned.is_some() {
                self.pcpu_ticks[p] += 1;
            }
        }

        if self.observer.is_some() {
            let vcpu_views = self.vcpu_views();
            let pcpu_views = self.pcpu_views();
            let tick = self.tick;
            if let Some(obs) = self.observer.as_mut() {
                obs.on_tick(tick, &vcpu_views, &pcpu_views)?;
            }
        }
        Ok(())
    }

    /// Runs `ticks` clock ticks.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`DirectSim::tick`].
    pub fn run(&mut self, ticks: u64) -> Result<(), CoreError> {
        for _ in 0..ticks {
            self.tick()?;
        }
        Ok(())
    }

    /// Discards metric counters (transient / warm-up deletion).
    pub fn reset_metrics(&mut self) {
        self.observed_ticks = 0;
        for v in &mut self.vcpus {
            v.active_ticks = 0;
            v.busy_ticks = 0;
            v.spin_ticks = 0;
        }
        for t in &mut self.pcpu_ticks {
            *t = 0;
        }
    }

    /// Metrics over the observation window since the last
    /// [`DirectSim::reset_metrics`] (or construction).
    ///
    /// VCPU utilization is BUSY / (BUSY + READY) — the fraction of a
    /// VCPU's *scheduled* time spent processing workload. The paper's
    /// reward variable "monitors the READY and BUSY states" for exactly
    /// this normalization: READY-while-scheduled is the synchronization
    /// latency Figure 10 measures.
    #[must_use]
    pub fn metrics(&self) -> SampleMetrics {
        let t = self.observed_ticks.max(1) as f64;
        SampleMetrics {
            vcpu_availability: self
                .vcpus
                .iter()
                .map(|v| v.active_ticks as f64 / t)
                .collect(),
            vcpu_utilization: self
                .vcpus
                .iter()
                .map(|v| {
                    if v.active_ticks == 0 {
                        0.0
                    } else {
                        v.busy_ticks.saturating_sub(v.spin_ticks) as f64 / v.active_ticks as f64
                    }
                })
                .collect(),
            pcpu_utilization: self.pcpu_ticks.iter().map(|&x| x as f64 / t).collect(),
            vcpu_spin: self
                .vcpus
                .iter()
                .map(|v| {
                    if v.active_ticks == 0 {
                        0.0
                    } else {
                        v.spin_ticks as f64 / v.active_ticks as f64
                    }
                })
                .collect(),
        }
    }

    fn schedule_out(&mut self, g: usize) {
        let v = &mut self.vcpus[g];
        if let Some(p) = v.pcpu.take() {
            self.pcpus[p] = None;
        }
        v.status = VcpuStatus::Inactive;
        v.timeslice = 0;
        let tick = self.tick;
        self.emit(TraceEvent::ScheduleOut { tick, vcpu: g });
    }

    /// Phase-5 workload generation for one VM.
    fn dispatch(&mut self, vm: usize) {
        if !self.admitted[vm] {
            return;
        }
        let spec = self.config.vms()[vm].workload.clone();
        let level = self.load_level[vm];
        // Saturated mode: the load level duty-cycles generation — tick T
        // generates iff the integer ramp T·level/1000 steps at T. Level
        // 1000 passes every tick (the static path, bit for bit).
        if spec.interarrival.is_none() && !duty_allows(self.tick, level) {
            return;
        }
        // Interarrival mode: accrue arrivals up to the current tick, with
        // interarrival times scaled by 1000/level (level 0 = paused; the
        // next arrival is re-drawn when the level turns positive again).
        if let Some(inter) = &spec.interarrival {
            if level > 0 {
                let state = &mut self.vms[vm];
                if state.next_arrival.is_none() {
                    let d = sample_ticks_scaled(inter, &mut self.vm_rngs[vm], level);
                    state.next_arrival = Some(d);
                }
                while let Some(next) = self.vms[vm].next_arrival {
                    if next > self.tick {
                        break;
                    }
                    self.vms[vm].pending += 1;
                    let d = sample_ticks_scaled(inter, &mut self.vm_rngs[vm], level);
                    self.vms[vm].next_arrival = Some(next + d);
                }
            }
        }
        loop {
            if self.vms[vm].blocked {
                break;
            }
            if spec.interarrival.is_some() && self.vms[vm].pending == 0 {
                break;
            }
            // Lowest-sibling-index READY VCPU receives the workload.
            let Some(g) = self
                .vcpus
                .iter()
                .filter(|v| v.id.vm == vm && v.status == VcpuStatus::Ready)
                .map(|v| v.id.global)
                .min()
            else {
                break;
            };
            let rng = &mut self.vm_rngs[vm];
            let load = sample_ticks(&spec.load, rng);
            self.vms[vm].generated += 1;
            let sync = match spec.sync_every {
                Some(k) => self.vms[vm].generated.is_multiple_of(u64::from(k)),
                None => rng.next_bool(spec.sync_probability),
            };
            if spec.interarrival.is_some() {
                self.vms[vm].pending -= 1;
            }
            let v = &mut self.vcpus[g];
            v.remaining_load = load;
            v.sync_point = sync;
            v.status = VcpuStatus::Busy;
            let mut barrier_set = false;
            if sync {
                match spec.sync_mechanism {
                    SyncMechanism::Barrier => {
                        self.vms[vm].blocked = true;
                        barrier_set = true;
                    }
                    SyncMechanism::SpinLock => v.needs_lock = true,
                }
            }
            let tick = self.tick;
            self.emit(TraceEvent::Dispatch {
                tick,
                vcpu: g,
                load,
                sync,
            });
            if barrier_set {
                self.emit(TraceEvent::Blocked { tick, vm });
            }
        }
    }
}

#[cfg(test)]
mod tests;
