use vsched_des::Dist;

use crate::config::{SystemConfig, VmSpec, WorkloadSpec};
use crate::direct::DirectSim;
use crate::sched::{PolicyKind, RoundRobin, ScheduleDecision, SchedulingPolicy};
use crate::types::{PcpuView, VcpuStatus, VcpuView};

fn config(pcpus: usize, vms: &[usize]) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vms {
        b = b.vm(n);
    }
    b.build().unwrap()
}

fn config_with_workload(pcpus: usize, vms: &[usize], workload: WorkloadSpec) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vms {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: workload.clone(),
            weight: 1,
        });
    }
    b.build().unwrap()
}

/// Deterministic, never-syncing workload: every job takes exactly 4 ticks.
fn det_workload(load: f64) -> WorkloadSpec {
    WorkloadSpec {
        load: Dist::deterministic(load).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    }
}

#[test]
fn single_vcpu_single_pcpu_stays_busy() {
    let cfg = config_with_workload(1, &[1], det_workload(4.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 1);
    sim.run(1000).unwrap();
    let m = sim.metrics();
    // One VCPU on one PCPU with saturated work: essentially always busy
    // (modulo the single tick lost at each timeslice boundary, which our
    // same-tick reschedule avoids entirely).
    assert!(m.vcpu_availability[0] > 0.99, "{m:?}");
    assert!(m.vcpu_utilization[0] > 0.99, "{m:?}");
    assert!(m.pcpu_utilization[0] > 0.99, "{m:?}");
}

#[test]
fn two_vcpus_share_one_pcpu_evenly() {
    let cfg = config_with_workload(1, &[1, 1], det_workload(4.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 2);
    sim.run(10_000).unwrap();
    let m = sim.metrics();
    assert!((m.vcpu_availability[0] - 0.5).abs() < 0.01, "{m:?}");
    assert!((m.vcpu_availability[1] - 0.5).abs() < 0.01, "{m:?}");
    assert!(m.pcpu_utilization[0] > 0.99, "PCPU never idles");
}

#[test]
fn job_dispatched_at_t_runs_l_ticks() {
    // White-box trace: dispatch at tick 1, load 4 → READY again at tick 5.
    let cfg = config_with_workload(1, &[1], det_workload(4.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 3);
    sim.tick().unwrap(); // t=1: scheduled in, job dispatched
    let v = &sim.vcpu_views()[0];
    assert_eq!(v.status, VcpuStatus::Busy);
    assert_eq!(v.remaining_load, 4);
    for _ in 0..3 {
        sim.tick().unwrap();
    }
    assert_eq!(sim.vcpu_views()[0].remaining_load, 1);
    sim.tick().unwrap(); // t=5: job completes... and a new one dispatches
    let v = &sim.vcpu_views()[0];
    assert_eq!(v.remaining_load, 4, "saturated generator refills same tick");
}

#[test]
fn timeslice_expiry_schedules_out() {
    // Two VCPUs, one PCPU, timeslice 5: holder changes every 5 ticks.
    let cfg = {
        let w = det_workload(100.0); // long job, no sync
        let mut b = SystemConfig::builder().pcpus(1).timeslice(5);
        for _ in 0..2 {
            b = b.vm_spec(VmSpec {
                vcpus: 1,
                workload: w.clone(),
                weight: 1,
            });
        }
        b.build().unwrap()
    };
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 4);
    sim.tick().unwrap(); // t=1: VCPU 0 in
    assert_eq!(sim.pcpu_views()[0].assigned.unwrap().global, 0);
    for _ in 0..5 {
        sim.tick().unwrap();
    }
    // t=6: VCPU 0's slice (ticks 2-6) expired; VCPU 1 took over.
    assert_eq!(sim.pcpu_views()[0].assigned.unwrap().global, 1);
    let v0 = &sim.vcpu_views()[0];
    assert_eq!(v0.status, VcpuStatus::Inactive);
    assert!(v0.remaining_load > 0, "preempted mid-job keeps its work");
}

#[test]
fn sync_point_blocks_vm_until_barrier_clears() {
    // One VM, 2 VCPUs, 2 PCPUs, sync on every workload (1:1): after the
    // first sync job dispatches, the sibling must idle until it completes.
    let w = WorkloadSpec {
        load: Dist::deterministic(6.0).unwrap(),
        sync_probability: 1.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    };
    let cfg = config_with_workload(2, &[2], w);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 5);
    sim.tick().unwrap();
    assert!(sim.vm_blocked(0), "first dispatched job is a sync point");
    let views = sim.vcpu_views();
    let busy = views
        .iter()
        .filter(|v| v.status == VcpuStatus::Busy)
        .count();
    let ready = views
        .iter()
        .filter(|v| v.status == VcpuStatus::Ready)
        .count();
    assert_eq!(busy, 1, "only the sync job runs");
    assert_eq!(ready, 1, "the sibling waits at the barrier");
    // The barrier clears when the job completes (6 ticks later), and the
    // next sync job dispatches immediately.
    for _ in 0..6 {
        sim.tick().unwrap();
    }
    let views = sim.vcpu_views();
    assert_eq!(
        views
            .iter()
            .filter(|v| v.status == VcpuStatus::Busy)
            .count(),
        1,
        "next sync job dispatched after barrier"
    );
}

#[test]
fn sync_latency_hurts_rrs_vcpu_utilization() {
    // The paper's central qualitative claim (Figure 10): with more VCPUs
    // than PCPUs and frequent sync points, RRS wastes VCPU time because a
    // preempted lock holder blocks its siblings.
    let mk = |sync_probability: f64| {
        let w = WorkloadSpec {
            load: Dist::Uniform {
                low: 5.0,
                high: 15.0,
            },
            sync_probability,
            sync_mechanism: Default::default(),
            sync_every: None,
            interarrival: None,
        };
        config_with_workload(4, &[2, 4], w)
    };
    let run = |cfg: SystemConfig| {
        let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 6);
        sim.run(2_000).unwrap();
        sim.reset_metrics();
        sim.run(20_000).unwrap();
        sim.metrics().avg_vcpu_utilization()
    };
    let low_sync = run(mk(0.2)); // 1:5
    let high_sync = run(mk(0.5)); // 1:2
    assert!(
        high_sync < low_sync - 0.03,
        "RRS VCPU utilization must degrade with sync rate: 1:5 → {low_sync:.3}, 1:2 → {high_sync:.3}"
    );
}

#[test]
fn scs_starves_smp_vm_on_one_pcpu() {
    // Figure 8, one-PCPU column: SCS cannot schedule the 2-VCPU VM at all.
    let cfg = config(1, &[2, 1, 1]);
    let mut sim = DirectSim::new(cfg, PolicyKind::StrictCo.create(), 7);
    sim.run(5_000).unwrap();
    let m = sim.metrics();
    assert_eq!(m.vcpu_availability[0], 0.0);
    assert_eq!(m.vcpu_availability[1], 0.0);
    assert!(m.vcpu_availability[2] > 0.4);
    assert!(m.vcpu_availability[3] > 0.4);
}

#[test]
fn rcs_schedules_smp_vm_on_one_pcpu() {
    // Figure 8: RCS *can* schedule the 2-VCPU VM with one PCPU, but its
    // VCPUs receive less than the 1-VCPU VMs due to the skew constraint.
    let cfg = config(1, &[2, 1, 1]);
    let mut sim = DirectSim::new(cfg, PolicyKind::relaxed_co_default().create(), 8);
    sim.run(20_000).unwrap();
    let m = sim.metrics();
    assert!(
        m.vcpu_availability[0] > 0.02,
        "RCS must give the SMP VM some time: {m:?}"
    );
    let smp_avg = (m.vcpu_availability[0] + m.vcpu_availability[1]) / 2.0;
    assert!(
        smp_avg < m.vcpu_availability[2],
        "skew-capped SMP VCPUs receive less than lone VCPUs: {m:?}"
    );
}

#[test]
fn rrs_is_fair_at_every_pcpu_count() {
    // Figure 8: RRS always achieves scheduling fairness.
    for pcpus in 1..=4 {
        let cfg = config(pcpus, &[2, 1, 1]);
        let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 9);
        sim.run(20_000).unwrap();
        let m = sim.metrics();
        let max = m.vcpu_availability.iter().cloned().fold(f64::MIN, f64::max);
        let min = m.vcpu_availability.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min < 0.06,
            "RRS unfair at {pcpus} PCPUs: {:?}",
            m.vcpu_availability
        );
    }
}

#[test]
fn scs_fragmentation_wastes_pcpus() {
    // Figure 9: with VCPUs > PCPUs, SCS cannot fully use the PCPUs.
    let cfg = config(4, &[2, 3]);
    let mut sim = DirectSim::new(cfg, PolicyKind::StrictCo.create(), 10);
    sim.run(2_000).unwrap();
    sim.reset_metrics();
    sim.run(20_000).unwrap();
    let scs_util = sim.metrics().avg_pcpu_utilization();

    let cfg = config(4, &[2, 3]);
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 10);
    sim.run(2_000).unwrap();
    sim.reset_metrics();
    sim.run(20_000).unwrap();
    let rrs_util = sim.metrics().avg_pcpu_utilization();

    assert!(
        scs_util < rrs_util - 0.05,
        "SCS must fragment: SCS {scs_util:.3} vs RRS {rrs_util:.3}"
    );
}

#[test]
fn interarrival_mode_limits_utilization() {
    // A slow Poisson-ish arrival stream cannot keep the VCPU busy.
    let w = WorkloadSpec {
        load: Dist::deterministic(2.0).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: Some(Dist::deterministic(10.0).unwrap()),
    };
    let cfg = config_with_workload(1, &[1], w);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 11);
    sim.run(10_000).unwrap();
    let m = sim.metrics();
    // 2 ticks of work every 10 ticks → utilization ≈ 0.2.
    assert!(
        (m.vcpu_utilization[0] - 0.2).abs() < 0.02,
        "expected ~0.2, got {}",
        m.vcpu_utilization[0]
    );
}

#[test]
fn policy_violation_is_reported() {
    /// A deliberately broken policy: assigns the same PCPU twice.
    #[derive(Debug)]
    struct Broken;
    impl SchedulingPolicy for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn schedule(
            &mut self,
            vcpus: &[VcpuView],
            _pcpus: &[PcpuView],
            _t: u64,
            ts: u64,
        ) -> ScheduleDecision {
            let mut d = ScheduleDecision::none();
            if vcpus.len() >= 2 {
                d.assign(0, 0, ts);
                d.assign(1, 0, ts);
            }
            d
        }
    }
    let cfg = config(2, &[1, 1]);
    let mut sim = DirectSim::new(cfg, Box::new(Broken), 12);
    let err = sim.tick().unwrap_err();
    assert!(err.to_string().contains("broken"));
}

#[test]
fn reset_metrics_clears_counters() {
    let cfg = config(1, &[1]);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 13);
    sim.run(100).unwrap();
    sim.reset_metrics();
    let m = sim.metrics();
    assert_eq!(m.vcpu_availability[0], 0.0);
    assert_eq!(m.pcpu_utilization[0], 0.0);
}

#[test]
fn determinism_per_seed() {
    let run = |seed: u64| {
        let cfg = config(2, &[2, 1]);
        let mut sim = DirectSim::new(cfg, PolicyKind::relaxed_co_default().create(), seed);
        sim.run(5_000).unwrap();
        sim.metrics()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn conservation_invariants_hold_throughout() {
    // At every tick: a PCPU's assignee points back at it; ACTIVE VCPUs have
    // PCPUs; INACTIVE VCPUs do not; no PCPU is double-assigned.
    let cfg = config(3, &[2, 2, 1]);
    let mut sim = DirectSim::new(cfg, PolicyKind::relaxed_co_default().create(), 14);
    for _ in 0..2_000 {
        sim.tick().unwrap();
        let vcpus = sim.vcpu_views();
        let pcpus = sim.pcpu_views();
        let mut seen = vec![false; pcpus.len()];
        for v in &vcpus {
            match (v.status.is_active(), v.assigned_pcpu) {
                (true, Some(p)) => {
                    assert!(!seen[p], "PCPU {p} double-assigned");
                    seen[p] = true;
                    assert_eq!(pcpus[p].assigned, Some(v.id), "back-pointer");
                    assert!(v.timeslice_remaining > 0, "active implies slice left");
                }
                (false, None) => {}
                other => panic!("inconsistent VCPU state {other:?} for {}", v.id),
            }
        }
        for p in &pcpus {
            if let Some(id) = p.assigned {
                assert_eq!(vcpus[id.global].assigned_pcpu, Some(p.id));
            }
        }
    }
}

#[test]
fn trace_records_scheduling_lifecycle() {
    use crate::direct::TraceEvent;
    let cfg = config_with_workload(1, &[1], det_workload(3.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 21);
    sim.enable_trace(1000);
    sim.run(10).unwrap();
    let trace = sim.trace().expect("tracing enabled");
    let events = trace.events();
    assert!(matches!(
        events[0],
        TraceEvent::ScheduleIn {
            tick: 1,
            vcpu: 0,
            pcpu: 0,
            ..
        }
    ));
    assert!(matches!(
        events[1],
        TraceEvent::Dispatch {
            tick: 1,
            vcpu: 0,
            load: 3,
            sync: false
        }
    ));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::JobComplete { tick: 4, vcpu: 0 })),
        "3-tick job dispatched at t=1 completes at t=4: {events:?}"
    );
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn trace_gantt_shows_rotation() {
    let cfg = {
        let w = det_workload(100.0);
        let mut b = SystemConfig::builder().pcpus(1).timeslice(4);
        for _ in 0..2 {
            b = b.vm_spec(VmSpec {
                vcpus: 1,
                workload: w.clone(),
                weight: 1,
            });
        }
        b.build().unwrap()
    };
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 22);
    sim.enable_trace(1000);
    sim.run(16).unwrap();
    let gantt = sim.trace().unwrap().render_gantt(2, 0, 17);
    // Alternating 4-tick slices on one PCPU.
    assert!(gantt.contains("vcpu0"), "{gantt}");
    let lanes: Vec<&str> = gantt.lines().collect();
    assert_eq!(lanes.len(), 2);
    // At any column, exactly one lane is scheduled (busy '#') after t=1.
    let l0: Vec<char> = lanes[0].chars().collect();
    let l1: Vec<char> = lanes[1].chars().collect();
    let offset = lanes[0].find('|').unwrap() + 1;
    for col in offset + 2..offset + 16 {
        let active = usize::from(l0[col] == '#') + usize::from(l1[col] == '#');
        assert_eq!(active, 1, "column {col} of\n{gantt}");
    }
}

#[test]
fn trace_disabled_by_default_and_take() {
    let cfg = config(1, &[1]);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 23);
    sim.run(10).unwrap();
    assert!(sim.trace().is_none());
    sim.enable_trace(10);
    sim.run(50).unwrap();
    let t = sim.take_trace().unwrap();
    assert!(!t.events().is_empty());
    assert!(sim.trace().is_none(), "take_trace stops recording");
}

#[test]
fn trace_records_barrier_blocking() {
    use crate::direct::TraceEvent;
    let w = WorkloadSpec {
        load: Dist::deterministic(5.0).unwrap(),
        sync_probability: 1.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    };
    let cfg = config_with_workload(2, &[2], w);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 24);
    sim.enable_trace(1000);
    sim.run(20).unwrap();
    let events = sim.trace().unwrap().events();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Blocked { vm: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Unblocked { vm: 0, .. })));
}

#[test]
fn deterministic_sync_pattern_is_exact() {
    use crate::direct::TraceEvent;
    // Every 4th workload is a sync point, exactly.
    let w = WorkloadSpec {
        load: Dist::deterministic(3.0).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    }
    .with_sync_every(4)
    .unwrap();
    let cfg = config_with_workload(1, &[1], w);
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 31);
    sim.enable_trace(100_000);
    sim.run(2_000).unwrap();
    let events = sim.take_trace().unwrap();
    let syncs: Vec<bool> = events
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Dispatch { sync, .. } => Some(*sync),
            _ => None,
        })
        .collect();
    assert!(syncs.len() > 100);
    for (i, &sync) in syncs.iter().enumerate() {
        assert_eq!(sync, (i + 1) % 4 == 0, "dispatch {i}");
    }
}

#[test]
fn deterministic_and_bernoulli_sync_agree_statistically() {
    // At the same average rate (1:5), the deterministic pattern and the
    // Bernoulli pattern must produce similar utilization.
    let mk = |every: bool| {
        let mut w = WorkloadSpec::paper_default(); // Bernoulli 0.2
        if every {
            w.sync_probability = 0.0;
            w = w.with_sync_every(5).unwrap();
        }
        config_with_workload(4, &[2, 4], w)
    };
    let run = |cfg: SystemConfig| {
        let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 32);
        sim.run(2_000).unwrap();
        sim.reset_metrics();
        sim.run(30_000).unwrap();
        sim.metrics().avg_vcpu_utilization()
    };
    let bernoulli = run(mk(false));
    let every_kth = run(mk(true));
    assert!(
        (bernoulli - every_kth).abs() < 0.05,
        "patterns should agree at equal rates: {bernoulli:.3} vs {every_kth:.3}"
    );
}

#[test]
fn retire_masks_views_and_frees_pcpus_direct() {
    let cfg = config_with_workload(2, &[1, 1], det_workload(5.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 11);
    sim.run(10).unwrap();
    assert!(sim.vm_admitted(1));
    sim.set_admitted(1, false);
    assert!(!sim.vm_admitted(1));
    let views = sim.vcpu_views();
    assert!(views[0].present);
    assert!(!views[1].present);
    assert_eq!(views[1].status, VcpuStatus::Inactive);
    assert_eq!(views[1].remaining_load, 0);
    assert!(
        !views[1].is_schedulable(),
        "retired VCPUs are not candidates"
    );
    assert!(
        sim.pcpu_views()
            .iter()
            .all(|p| p.assigned.is_none_or(|id| id.vm != 1)),
        "retirement freed VM 1's PCPU"
    );
    sim.run(50).unwrap();
    assert_eq!(
        sim.vcpu_views()[1].status,
        VcpuStatus::Inactive,
        "a retired VM never runs"
    );
    sim.set_admitted(1, true);
    sim.run(2).unwrap();
    assert_eq!(
        sim.vcpu_views()[1].status,
        VcpuStatus::Busy,
        "a re-admitted VM resumes generating work"
    );
}

#[test]
fn load_level_zero_pauses_saturated_generation_direct() {
    let cfg = config_with_workload(1, &[1], det_workload(3.0));
    let mut sim = DirectSim::new(cfg, Box::new(RoundRobin::new()), 13);
    sim.run(10).unwrap();
    assert_eq!(sim.load_level(0), 1000);
    sim.set_load_level(0, 0);
    assert_eq!(sim.load_level(0), 0);
    sim.run(10).unwrap();
    assert_ne!(
        sim.vcpu_views()[0].status,
        VcpuStatus::Busy,
        "no new jobs at level 0"
    );
    sim.set_load_level(0, 1000);
    sim.run(2).unwrap();
    assert_eq!(sim.vcpu_views()[0].status, VcpuStatus::Busy);
}

#[test]
fn duty_cycle_halves_generated_jobs_direct() {
    let mk = || config_with_workload(1, &[1], det_workload(1.0));
    let run_at = |level: u32| {
        let mut sim = DirectSim::new(mk(), Box::new(RoundRobin::new()), 17);
        sim.set_load_level(0, level);
        sim.run(2000).unwrap();
        sim.metrics().vcpu_utilization[0]
    };
    let full = run_at(1000);
    let half = run_at(500);
    assert!(full > 0.95, "saturated at load 1: {full}");
    assert!(
        (half - full / 2.0).abs() < 0.05,
        "level 500 should halve utilization: full {full}, half {half}"
    );
}

#[test]
fn no_op_setters_keep_run_bit_identical_direct() {
    // The degenerate-trace path calls the setters with identity values;
    // that must not disturb RNG streams or any state.
    let mk = || config_with_workload(2, &[2, 1], det_workload(3.0));
    let mut plain = DirectSim::new(mk(), Box::new(RoundRobin::new()), 9);
    plain.run(300).unwrap();
    let mut touched = DirectSim::new(mk(), Box::new(RoundRobin::new()), 9);
    touched.set_admitted(0, true);
    touched.set_load_level(1, 1000);
    touched.run(150).unwrap();
    touched.set_admitted(1, true);
    touched.set_load_level(0, 1000);
    touched.run(150).unwrap();
    assert_eq!(
        plain.metrics().to_observations(),
        touched.metrics().to_observations()
    );
    assert_eq!(plain.vcpu_views(), touched.vcpu_views());
    assert_eq!(plain.pcpu_views(), touched.pcpu_views());
}

#[test]
fn engines_track_each_other_under_churn() {
    // The same churn script on both engines: the long-run metric estimates
    // must stay close (the same statistical-agreement contract the static
    // differential tests use).
    let mk = || config_with_workload(2, &[2, 1], det_workload(4.0));
    let script_d = |sim: &mut DirectSim| {
        sim.run(2000).unwrap();
        sim.set_admitted(1, false);
        sim.run(2000).unwrap();
        sim.set_admitted(1, true);
        sim.set_load_level(0, 500);
        sim.run(2000).unwrap();
    };
    let mut d = DirectSim::new(mk(), Box::new(RoundRobin::new()), 21);
    script_d(&mut d);
    let mut s =
        crate::san_model::SanSystem::new_dynamic(mk(), Box::new(RoundRobin::new()), 21).unwrap();
    s.run(2000).unwrap();
    s.set_admitted(1, false);
    s.run(2000).unwrap();
    s.set_admitted(1, true);
    s.set_load_level(0, 500);
    s.run(2000).unwrap();
    let (dm, sm) = (d.metrics(), s.metrics());
    for (i, (a, b)) in dm
        .vcpu_availability
        .iter()
        .zip(&sm.vcpu_availability)
        .enumerate()
    {
        assert!(
            (a - b).abs() < 0.05,
            "availability[{i}]: direct {a} san {b}"
        );
    }
    for (i, (a, b)) in dm
        .pcpu_utilization
        .iter()
        .zip(&sm.pcpu_utilization)
        .enumerate()
    {
        assert!((a - b).abs() < 0.05, "pcpu util[{i}]: direct {a} san {b}");
    }
}
