//! Event tracing for the direct engine.
//!
//! The paper's framework reports only aggregate reward variables; when a
//! scheduling algorithm misbehaves, aggregates don't say *why*. The trace
//! recorder captures every scheduling-relevant transition — schedule
//! in/out, dispatch, completion, barrier block/unblock, lock hand-off —
//! and can render a Gantt-style timeline for a window of ticks.
//!
//! Enable with [`crate::direct::DirectSim::enable_trace`]; recording is
//! off by default and costs nothing when disabled.

use serde::{Deserialize, Serialize};

/// One scheduling-relevant transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A VCPU was assigned a PCPU.
    ScheduleIn {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
        /// PCPU granted.
        pcpu: usize,
        /// Timeslice granted.
        timeslice: u64,
    },
    /// A VCPU relinquished its PCPU (expiry or preemption).
    ScheduleOut {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
    },
    /// A workload was dispatched to a VCPU.
    Dispatch {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
        /// Job duration in ticks.
        load: u64,
        /// Whether the job is a synchronization point.
        sync: bool,
    },
    /// A VCPU finished its job.
    JobComplete {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
    },
    /// A VM blocked at a barrier.
    Blocked {
        /// Tick of the event.
        tick: u64,
        /// VM index.
        vm: usize,
    },
    /// A VM's barrier cleared.
    Unblocked {
        /// Tick of the event.
        tick: u64,
        /// VM index.
        vm: usize,
    },
    /// A VCPU acquired its VM's spinlock (spinlock extension).
    LockAcquired {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
    },
    /// A VCPU released its VM's spinlock (spinlock extension).
    LockReleased {
        /// Tick of the event.
        tick: u64,
        /// Global VCPU index.
        vcpu: usize,
    },
}

impl TraceEvent {
    /// Tick at which the event occurred.
    #[must_use]
    pub fn tick(&self) -> u64 {
        match *self {
            TraceEvent::ScheduleIn { tick, .. }
            | TraceEvent::ScheduleOut { tick, .. }
            | TraceEvent::Dispatch { tick, .. }
            | TraceEvent::JobComplete { tick, .. }
            | TraceEvent::Blocked { tick, .. }
            | TraceEvent::Unblocked { tick, .. }
            | TraceEvent::LockAcquired { tick, .. }
            | TraceEvent::LockReleased { tick, .. } => tick,
        }
    }
}

/// A bounded recording of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a recorder holding at most `capacity` events; further
    /// events are counted but discarded.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a Gantt-style timeline of `num_vcpus` lanes over the tick
    /// window `[from, to)`.
    ///
    /// Legend: `.` descheduled, `r` READY (scheduled, no work), `#` BUSY,
    /// `S` BUSY on a synchronization-point job.
    #[must_use]
    pub fn render_gantt(&self, num_vcpus: usize, from: u64, to: u64) -> String {
        #[derive(Clone, Copy, Default)]
        struct LaneState {
            active: bool,
            busy: bool,
            sync: bool,
        }
        let width = to.saturating_sub(from) as usize;
        let mut lanes = vec![vec!['.'; width]; num_vcpus];
        let mut state = vec![LaneState::default(); num_vcpus];
        let mut cursor = from;
        let fill = |state: &[LaneState], lanes: &mut [Vec<char>], upto: u64, cursor: &mut u64| {
            let end = upto.clamp(from, to);
            while *cursor < end {
                let col = (*cursor - from) as usize;
                for (lane, s) in lanes.iter_mut().zip(state) {
                    lane[col] = match (s.active, s.busy, s.sync) {
                        (false, _, _) => '.',
                        (true, false, _) => 'r',
                        (true, true, false) => '#',
                        (true, true, true) => 'S',
                    };
                }
                *cursor += 1;
            }
        };
        for ev in &self.events {
            // The state set at tick t holds from t (inclusive) onwards, so
            // paint the columns *before* t with the previous state first.
            fill(&state, &mut lanes, ev.tick(), &mut cursor);
            match *ev {
                TraceEvent::ScheduleIn { vcpu, .. } if vcpu < num_vcpus => {
                    state[vcpu].active = true;
                }
                TraceEvent::ScheduleOut { vcpu, .. } if vcpu < num_vcpus => {
                    state[vcpu].active = false;
                }
                TraceEvent::Dispatch { vcpu, sync, .. } if vcpu < num_vcpus => {
                    state[vcpu].busy = true;
                    state[vcpu].sync = sync;
                }
                TraceEvent::JobComplete { vcpu, .. } if vcpu < num_vcpus => {
                    state[vcpu].busy = false;
                    state[vcpu].sync = false;
                }
                _ => {}
            }
        }
        fill(&state, &mut lanes, to, &mut cursor);
        let mut out = String::new();
        for (g, lane) in lanes.iter().enumerate() {
            out.push_str(&format!("vcpu{g:<2} |"));
            out.extend(lane.iter());
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::new(2);
        for tick in 0..5 {
            t.push(TraceEvent::JobComplete { tick, vcpu: 0 });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn event_tick_accessor() {
        let e = TraceEvent::Blocked { tick: 7, vm: 1 };
        assert_eq!(e.tick(), 7);
        let e = TraceEvent::ScheduleIn {
            tick: 9,
            vcpu: 0,
            pcpu: 1,
            timeslice: 30,
        };
        assert_eq!(e.tick(), 9);
    }

    #[test]
    fn gantt_renders_states() {
        let mut t = Trace::new(100);
        t.push(TraceEvent::ScheduleIn {
            tick: 1,
            vcpu: 0,
            pcpu: 0,
            timeslice: 10,
        });
        t.push(TraceEvent::Dispatch {
            tick: 2,
            vcpu: 0,
            load: 3,
            sync: false,
        });
        t.push(TraceEvent::JobComplete { tick: 5, vcpu: 0 });
        t.push(TraceEvent::Dispatch {
            tick: 6,
            vcpu: 0,
            load: 2,
            sync: true,
        });
        t.push(TraceEvent::ScheduleOut { tick: 8, vcpu: 0 });
        let g = t.render_gantt(1, 0, 10);
        // tick:   0123456789
        // state:  .r###rSS..
        assert!(g.contains("|.r###rSS..|"), "got: {g}");
    }

    #[test]
    fn gantt_window_clips() {
        let mut t = Trace::new(100);
        t.push(TraceEvent::ScheduleIn {
            tick: 0,
            vcpu: 0,
            pcpu: 0,
            timeslice: 10,
        });
        let g = t.render_gantt(1, 5, 8);
        assert!(g.contains("|rrr|"), "got: {g}");
    }

    #[test]
    fn gantt_ignores_out_of_range_vcpus() {
        let mut t = Trace::new(100);
        t.push(TraceEvent::ScheduleIn {
            tick: 0,
            vcpu: 5,
            pcpu: 0,
            timeslice: 10,
        });
        let g = t.render_gantt(1, 0, 3);
        assert!(g.contains("|...|"));
    }

    #[test]
    fn events_serialize() {
        let e = TraceEvent::LockAcquired { tick: 3, vcpu: 2 };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
