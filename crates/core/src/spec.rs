//! Serde-facing parameter specs shared by every config surface.
//!
//! These types are the JSON spelling of kernel parameters — distributions
//! and synchronization mechanisms — used by campaign sweep specs, trace
//! files, and the CLI. They live in `vsched-core` so that every frontend
//! (campaign cells, trace readers, experiment configs) parses the *same*
//! spelling to the same validated kernel value; `vsched-campaign`
//! re-exports them unchanged, so canonical cell JSON (and therefore every
//! content-addressed store key) is unaffected by the move.

use serde::{Deserialize, Serialize};
use vsched_des::Dist;

use crate::config::SyncMechanism;
use crate::error::CoreError;

/// A load or interarrival distribution, as written in config files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", deny_unknown_fields)]
pub enum DistSpec {
    /// Constant value.
    Deterministic {
        /// The constant.
        value: f64,
    },
    /// Continuous uniform on `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Erlang with `k` stages and total mean `mean`.
    Erlang {
        /// Number of stages.
        k: u32,
        /// Mean of the sum.
        mean: f64,
    },
    /// Normal truncated at zero.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Geometric number of trials (support 1, 2, …).
    Geometric {
        /// Success probability.
        p: f64,
    },
    /// Discrete uniform over `low..=high`.
    DiscreteUniform {
        /// Inclusive lower bound.
        low: u64,
        /// Inclusive upper bound.
        high: u64,
    },
}

impl DistSpec {
    /// Converts to a validated kernel distribution.
    ///
    /// # Errors
    ///
    /// [`CoreError::Des`] for out-of-domain parameters.
    pub fn to_dist(&self) -> Result<Dist, CoreError> {
        Ok(match *self {
            DistSpec::Deterministic { value } => Dist::deterministic(value)?,
            DistSpec::Uniform { low, high } => Dist::uniform(low, high)?,
            DistSpec::Exponential { mean } => Dist::exponential(mean)?,
            DistSpec::Erlang { k, mean } => Dist::erlang(k, mean)?,
            DistSpec::Normal { mean, std_dev } => Dist::normal(mean, std_dev)?,
            DistSpec::Geometric { p } => Dist::geometric(p)?,
            DistSpec::DiscreteUniform { low, high } => Dist::discrete_uniform(low, high)?,
        })
    }
}

/// Synchronization-point semantics, as written in config files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", deny_unknown_fields)]
pub enum SyncMechanismSpec {
    /// Barrier synchronization (the paper's semantics; default).
    #[default]
    Barrier,
    /// Spinlock critical sections (the §V future-work extension).
    Spinlock,
}

impl SyncMechanismSpec {
    /// The kernel mechanism this spec selects.
    #[must_use]
    pub fn to_mechanism(self) -> SyncMechanism {
        match self {
            SyncMechanismSpec::Barrier => SyncMechanism::Barrier,
            SyncMechanismSpec::Spinlock => SyncMechanism::SpinLock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_spec_json_spelling_is_stable() {
        // Store keys hash this spelling; it must never drift.
        let spec = DistSpec::Uniform {
            low: 5.0,
            high: 15.0,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(json, r#"{"uniform":{"low":5.0,"high":15.0}}"#);
        let back: DistSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_variant_converts() {
        let specs = [
            DistSpec::Deterministic { value: 4.0 },
            DistSpec::Uniform {
                low: 1.0,
                high: 2.0,
            },
            DistSpec::Exponential { mean: 3.0 },
            DistSpec::Erlang { k: 2, mean: 6.0 },
            DistSpec::Normal {
                mean: 5.0,
                std_dev: 1.0,
            },
            DistSpec::Geometric { p: 0.5 },
            DistSpec::DiscreteUniform { low: 1, high: 9 },
        ];
        for s in specs {
            s.to_dist().unwrap();
        }
        assert!(DistSpec::Exponential { mean: -1.0 }.to_dist().is_err());
    }

    #[test]
    fn sync_mechanism_spelling() {
        assert_eq!(
            serde_json::to_string(&SyncMechanismSpec::Spinlock).unwrap(),
            r#""spinlock""#
        );
        assert_eq!(
            SyncMechanismSpec::Spinlock.to_mechanism(),
            SyncMechanism::SpinLock
        );
        assert_eq!(
            SyncMechanismSpec::default().to_mechanism(),
            SyncMechanism::Barrier
        );
    }
}
