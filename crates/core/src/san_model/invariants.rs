//! The paper model's expected invariants, declared as data.
//!
//! `vsched-analyze` checks these as named certificates: each one must hold
//! in the initial marking, in every marking reached during bounded
//! exploration, and across every probed firing. A violation is reported as
//! a `nonconserving-gate` diagnostic naming the activity that broke it.
//!
//! The model encodes register-style state (a status place holds 0/1/2, a
//! `pcpu` place holds an index-plus-one), so most conservation laws are
//! *relations* between places rather than weighted token sums; the
//! [`InvariantKind::Linear`] form is used where a genuine weighted sum is
//! conserved and is checked exactly against the incidence matrix.

use vsched_san::{Marking, PlaceId};

use crate::config::SystemConfig;
use crate::san_model::layout::Layout;
use crate::types::VcpuStatus;

/// A marking predicate; `Err` carries what was observed instead.
pub type RelationFn = Box<dyn Fn(&Marking) -> Result<(), String>>;

/// How an expected invariant is expressed.
pub enum InvariantKind {
    /// A weighted token sum `Σ wᵢ·m(pᵢ)` that every firing must preserve.
    /// Checked exactly: the weight vector must annihilate every incidence
    /// column (linear and probed).
    Linear(Vec<(PlaceId, i64)>),
    /// An arbitrary predicate over the marking; `Err` carries what was
    /// observed. Checked on every explored marking.
    Relation(RelationFn),
}

impl std::fmt::Debug for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantKind::Linear(terms) => write!(f, "Linear({} terms)", terms.len()),
            InvariantKind::Relation(_) => write!(f, "Relation(..)"),
        }
    }
}

/// One named, checkable conservation law of a model.
#[derive(Debug)]
pub struct ModelInvariant {
    /// Certificate name (stable, used in reports and CI).
    pub name: String,
    /// One-line statement of the law.
    pub description: String,
    /// The checkable form.
    pub kind: InvariantKind,
}

impl ModelInvariant {
    fn relation(
        name: impl Into<String>,
        description: impl Into<String>,
        check: impl Fn(&Marking) -> Result<(), String> + 'static,
    ) -> Self {
        ModelInvariant {
            name: name.into(),
            description: description.into(),
            kind: InvariantKind::Relation(Box::new(check)),
        }
    }
}

/// The conservation laws the paper's composed model is expected to satisfy,
/// for the given configuration.
#[must_use]
pub fn expected_invariants(config: &SystemConfig, layout: &Layout) -> Vec<ModelInvariant> {
    let mut out = Vec::new();
    let total_vcpus = config.total_vcpus();

    // --- total-vcpus: the VCPU population is conserved -------------------
    // Every VCPU slot always holds a valid status encoding, so no slot can
    // be lost or duplicated by any gate function.
    {
        let l = layout.clone();
        out.push(ModelInvariant::relation(
            "total-vcpus",
            format!(
                "all {total_vcpus} VCPU slots hold a valid status (INACTIVE/READY/BUSY) \
                 and a 0/1 spinning flag"
            ),
            move |m| {
                for (g, v) in l.vcpus.iter().enumerate() {
                    let s = m.tokens(v.status);
                    if !(0..=2).contains(&s) {
                        return Err(format!("VCPU {g} status place holds {s}, outside 0..=2"));
                    }
                    let spin = m.tokens(v.spinning);
                    if !(0..=1).contains(&spin) {
                        return Err(format!("VCPU {g} spinning place holds {spin}"));
                    }
                }
                Ok(())
            },
        ));
    }

    // --- total-pcpus: the PCPU↔VCPU assignment is a partial matching -----
    // A VCPU is ACTIVE iff it holds a PCPU, both assignment tables are
    // mutually inverse, and no PCPU is double-booked — the token encoding
    // of "at most one VCPU per core, at most one core per VCPU".
    {
        let l = layout.clone();
        out.push(ModelInvariant::relation(
            "total-pcpus",
            "PCPU assignment places and VCPU Schedule_In places form a \
             consistent partial matching (ACTIVE ⟺ assigned, no double booking)",
            move |m| {
                for (p, &place) in l.pcpus.iter().enumerate() {
                    let a = m.tokens(place);
                    if a < 0 || a as usize > l.vcpus.len() {
                        return Err(format!("PCPU {p} assigned place holds {a}"));
                    }
                    if a > 0 {
                        let g = (a - 1) as usize;
                        let back = m.tokens(l.vcpus[g].pcpu);
                        if back != p as i64 + 1 {
                            return Err(format!(
                                "PCPU {p} claims VCPU {g}, but that VCPU's pcpu place holds {back}"
                            ));
                        }
                    }
                }
                for (g, v) in l.vcpus.iter().enumerate() {
                    let q = m.tokens(v.pcpu);
                    if q < 0 || q as usize > l.pcpus.len() {
                        return Err(format!("VCPU {g} pcpu place holds {q}"));
                    }
                    let active = VcpuStatus::from_token(m.tokens(v.status)).is_active();
                    if active != (q > 0) {
                        return Err(format!(
                            "VCPU {g} is {} but its pcpu place holds {q}",
                            if active { "ACTIVE" } else { "INACTIVE" }
                        ));
                    }
                    if q > 0 {
                        let back = m.tokens(l.pcpus[(q - 1) as usize]);
                        if back != g as i64 + 1 {
                            return Err(format!(
                                "VCPU {g} claims PCPU {}, but that PCPU's place holds {back}",
                                q - 1
                            ));
                        }
                    }
                }
                Ok(())
            },
        ));
    }

    // --- per-VM token conservation ---------------------------------------
    for (k, vm_cfg) in config.vms().iter().enumerate() {
        let l = layout.clone();
        let siblings: Vec<usize> = (0..total_vcpus).filter(|&g| layout.vm_of(g) == k).collect();
        let sib = siblings.clone();
        out.push(ModelInvariant::relation(
            format!("vm{k}-ready-count"),
            format!(
                "VM {k}'s Num_VCPUs_ready join place equals the number of \
                 READY siblings ({} VCPUs)",
                vm_cfg.vcpus
            ),
            move |m| {
                let declared = m.tokens(l.vms[k].ready_count);
                let actual = sib
                    .iter()
                    .filter(|&&g| m.tokens(l.vcpus[g].status) == VcpuStatus::Ready.to_token())
                    .count() as i64;
                if declared != actual {
                    return Err(format!(
                        "Num_VCPUs_ready holds {declared} but {actual} siblings are READY"
                    ));
                }
                Ok(())
            },
        ));

        let l = layout.clone();
        out.push(ModelInvariant::relation(
            format!("vm{k}-sync-tokens"),
            format!("VM {k}'s Blocked flag is 0/1 and the spinlock holder is a sibling or free"),
            move |m| {
                let b = m.tokens(l.vms[k].blocked);
                if !(0..=1).contains(&b) {
                    return Err(format!("Blocked place holds {b}"));
                }
                let holder = m.tokens(l.vms[k].lock_holder);
                if holder != 0 {
                    let g = (holder - 1) as usize;
                    if holder < 0 || g >= l.vcpus.len() || l.vm_of(g) != k {
                        return Err(format!("lock_holder names {holder}, not a sibling id + 1"));
                    }
                }
                Ok(())
            },
        ));
    }

    // --- tick-tokens: intra-tick control tokens never accumulate ---------
    {
        let l = layout.clone();
        out.push(ModelInvariant::relation(
            "tick-tokens",
            "every per-tick control token (halt, tick_expire, tick_sched, \
             per-VCPU tick, per-VM tick_unblock and window) stays 0/1",
            move |m| {
                let check = |name: &str, p: PlaceId| -> Result<(), String> {
                    let t = m.tokens(p);
                    if (0..=1).contains(&t) {
                        Ok(())
                    } else {
                        Err(format!("{name} holds {t}, expected 0 or 1"))
                    }
                };
                check("halt", l.halt)?;
                check("tick_expire", l.tick_expire)?;
                check("tick_sched", l.tick_sched)?;
                for (g, v) in l.vcpus.iter().enumerate() {
                    check(&format!("vcpu {g} tick"), v.tick)?;
                }
                for (k, vm) in l.vms.iter().enumerate() {
                    check(&format!("vm {k} tick_unblock"), vm.tick_unblock)?;
                    check(&format!("vm {k} window"), vm.window)?;
                }
                Ok(())
            },
        ));
    }

    out
}
