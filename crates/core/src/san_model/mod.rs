//! The SAN-based engine: the paper's virtualization model, faithfully.
//!
//! [`SanSystem`] compiles a [`SystemConfig`] and a [`SchedulingPolicy`]
//! into a Stochastic Activity Network (see the `build` module source for
//! the mapping to the
//! paper's figures), runs it on the `vsched-san` simulator, and reads the
//! three metrics off rate reward variables:
//!
//! * VCPU availability — reward `1` while `status ∈ {READY, BUSY}`,
//! * VCPU utilization — reward `1` while `status = BUSY`,
//! * PCPU utilization — reward `1` while the PCPU is ASSIGNED,
//!
//! exactly the "reward variable that monitors the state transition" the
//! paper describes for each figure.

mod build;
pub mod invariants;
mod layout;
mod symmetry;

#[cfg(test)]
mod tests;

pub use build::PolicyHandle;
pub use invariants::{expected_invariants, InvariantKind, ModelInvariant};
pub use layout::{DynVmPlaces, Layout, VcpuPlaces, VmPlaces};
pub use symmetry::{vm_rotations, MarkingRotation};

use vsched_san::{RewardId, ShardMode, Simulator};

use crate::config::SystemConfig;
use crate::error::CoreError;
use crate::metrics::SampleMetrics;
use crate::observe::TickObserver;
use crate::sched::SchedulingPolicy;
use crate::types::{PcpuView, VcpuView};

use build::ErrorCell;

/// A compiled model plus its layout, without a simulator attached — the
/// input of `vsched-analyze`'s static pass, which needs mutable access to
/// the model (gate closures are `FnMut`) to probe-fire activities on
/// markings of its own choosing.
pub struct AnalysisModel {
    /// The built SAN model (owns the gate closures, including the policy).
    pub model: vsched_san::Model,
    /// The place layout of the composed model.
    pub layout: Layout,
    error: ErrorCell,
    policy: PolicyHandle,
}

impl std::fmt::Debug for AnalysisModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisModel")
            .field("model", &self.model)
            .finish()
    }
}

impl AnalysisModel {
    /// Takes the policy-violation error recorded by the `Scheduling_Func`
    /// gate during probing, if any (the gate halts the model and stores the
    /// error instead of panicking).
    #[must_use]
    pub fn take_error(&self) -> Option<CoreError> {
        self.error.lock().expect("error cell").take()
    }

    /// A detached probe for the same error cell — lets an analysis pass
    /// poll for policy violations while it holds `self.model` mutably.
    pub fn error_probe(&self) -> impl Fn() -> Option<CoreError> {
        let cell = std::sync::Arc::clone(&self.error);
        move || cell.lock().expect("error cell").take()
    }

    /// Snapshots the embedded policy's internal state (see
    /// [`crate::sched::SchedulingPolicy::save_state`]); `None` if the
    /// policy does not support snapshotting.
    #[must_use]
    pub fn save_policy_state(&self) -> Option<crate::sched::PolicyState> {
        self.policy.lock().expect("policy lock").save_state()
    }

    /// Restores a snapshot into the embedded policy; `false` if rejected.
    pub fn load_policy_state(&self, state: &crate::sched::PolicyState) -> bool {
        self.policy.lock().expect("policy lock").load_state(state)
    }

    /// Whether the embedded policy declares VM-rotation equivariance (see
    /// [`crate::sched::SchedulingPolicy::rotation_equivariant`]).
    #[must_use]
    pub fn policy_rotation_equivariant(&self) -> bool {
        self.policy
            .lock()
            .expect("policy lock")
            .rotation_equivariant()
    }

    /// A clone of the shared policy handle, for callers that need repeated
    /// access without borrowing `self` (the verifier holds `self.model`
    /// mutably while probing).
    #[must_use]
    pub fn policy_handle(&self) -> PolicyHandle {
        std::sync::Arc::clone(&self.policy)
    }
}

/// Compiles `config` + `policy` into a bare model for static analysis.
///
/// # Errors
///
/// [`CoreError::San`] if model construction fails.
pub fn build_analysis_model(
    config: &SystemConfig,
    policy: Box<dyn SchedulingPolicy>,
) -> Result<AnalysisModel, CoreError> {
    let (model, layout, error, policy) = build::build_model(config, policy, false)?;
    Ok(AnalysisModel {
        model,
        layout,
        error,
        policy,
    })
}

/// The SAN engine for one simulation run. See the module docs.
///
/// # Example
///
/// ```
/// use vsched_core::{san_model::SanSystem, PolicyKind, SystemConfig};
///
/// let config = SystemConfig::builder().pcpus(2).vm(2).build()?;
/// let mut system = SanSystem::new(config, PolicyKind::StrictCo.create(), 7)?;
/// system.run(500)?;
/// assert_eq!(system.time(), 500);
/// assert!(system.metrics().avg_pcpu_utilization() > 0.9);
/// # Ok::<(), vsched_core::CoreError>(())
/// ```
pub struct SanSystem {
    sim: Simulator,
    config: SystemConfig,
    layout: Layout,
    error: ErrorCell,
    avail: Vec<RewardId>,
    util: Vec<RewardId>,
    spin: Vec<RewardId>,
    putil: Vec<RewardId>,
    horizon: f64,
    observer: Option<Box<dyn TickObserver>>,
}

impl std::fmt::Debug for SanSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanSystem")
            .field("config", &self.config.describe())
            .field("time", &self.sim.time())
            .finish()
    }
}

impl SanSystem {
    /// Compiles `config` + `policy` into a SAN and prepares the simulator
    /// with randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// [`CoreError::San`] if model construction fails (cannot happen for a
    /// validated [`SystemConfig`], but the SAN layer's errors are surfaced
    /// rather than unwrapped).
    pub fn new(
        config: SystemConfig,
        policy: Box<dyn SchedulingPolicy>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::build(config, policy, seed, false)
    }

    /// Like [`SanSystem::new`] but compiles a *dynamic* model carrying
    /// per-VM admission and load-level places (the trace frontend). At the
    /// identity marking — every VM admitted at full level, which is how
    /// the system starts — a dynamic system is bit-identical to the static
    /// one; [`SanSystem::set_admitted`] and [`SanSystem::set_load_level`]
    /// then retire/re-admit VMs and modulate generation rates at event
    /// boundaries.
    ///
    /// # Errors
    ///
    /// [`CoreError::San`] if model construction fails.
    pub fn new_dynamic(
        config: SystemConfig,
        policy: Box<dyn SchedulingPolicy>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::build(config, policy, seed, true)
    }

    fn build(
        config: SystemConfig,
        policy: Box<dyn SchedulingPolicy>,
        seed: u64,
        dynamic: bool,
    ) -> Result<Self, CoreError> {
        let (model, layout, error, _policy) = build::build_model(&config, policy, dynamic)?;
        let mut sim = Simulator::new(model, seed);
        let mut avail = Vec::with_capacity(config.total_vcpus());
        let mut util = Vec::with_capacity(config.total_vcpus());
        let mut spin = Vec::with_capacity(config.total_vcpus());
        for (g, v) in layout.vcpus.iter().copied().enumerate() {
            let id = config.vcpu_ids()[g];
            avail.push(sim.add_rate_reward_with_reads(
                format!("availability {id}"),
                [v.status],
                move |m| f64::from(m.tokens(v.status) >= 1),
            ));
            util.push(sim.add_rate_reward_with_reads(
                format!("utilization {id}"),
                [v.status],
                move |m| f64::from(m.tokens(v.status) == 2),
            ));
            spin.push(sim.add_rate_reward_with_reads(
                format!("spin {id}"),
                [v.spinning],
                move |m| f64::from(m.tokens(v.spinning) == 1),
            ));
        }
        let putil = layout
            .pcpus
            .iter()
            .copied()
            .enumerate()
            .map(|(p, place)| {
                sim.add_rate_reward_with_reads(format!("PCPU {p} utilization"), [place], move |m| {
                    f64::from(m.tokens(place) > 0)
                })
            })
            .collect();
        Ok(SanSystem {
            sim,
            config,
            layout,
            error,
            avail,
            util,
            spin,
            putil,
            horizon: 0.0,
            observer: None,
        })
    }

    /// Sets the lane budget for intra-replication sharding (see
    /// [`vsched_san::Simulator::set_shards`]): `0` or `1` is the
    /// sequential engine, `>= 2` fires conflict-free per-VM shards in
    /// parallel with bit-identical results.
    pub fn set_shards(&mut self, shards: usize) {
        self.sim.set_shards(shards);
    }

    /// Sets the engine selection policy (see
    /// [`vsched_san::Simulator::set_shard_mode`]); [`ShardMode::Auto`]
    /// engages the sharded engine only where measurement says it pays.
    pub fn set_shard_mode(&mut self, mode: ShardMode) {
        self.sim.set_shard_mode(mode);
    }

    /// Overrides the available parallelism the shard-mode resolution sees
    /// (see [`vsched_san::Simulator::set_shard_available_override`]) —
    /// tests and the perf harness force lane counts through this.
    pub fn set_shard_available_override(&mut self, avail: Option<usize>) {
        self.sim.set_shard_available_override(avail);
    }

    /// Sets the minimum shard-plan width at which [`ShardMode::Auto`]
    /// engages lanes (see
    /// [`vsched_san::Simulator::set_auto_shard_threshold`]).
    pub fn set_auto_shard_threshold(&mut self, min_shards: usize) {
        self.sim.set_auto_shard_threshold(min_shards);
    }

    /// Lane count the sharded engine used on the most recent run, or
    /// `None` if the sequential engine ran (see
    /// [`vsched_san::Simulator::resolved_shards`]).
    #[must_use]
    pub fn resolved_shards(&self) -> Option<usize> {
        self.sim.resolved_shards()
    }

    /// Attaches an end-of-tick observer (see [`crate::observe`]); replaces
    /// any previous one.
    ///
    /// With an observer attached the simulator is stepped one clock period
    /// at a time so a snapshot can be taken at every tick boundary (event
    /// processing order — and therefore every sampled value — is identical
    /// to an unobserved run), and the future-event-list monotonicity check
    /// of the underlying `vsched-san` simulator is switched on.
    pub fn attach_observer(&mut self, observer: Box<dyn TickObserver>) {
        self.sim.enable_event_monotonicity_check();
        self.observer = Some(observer);
    }

    /// Removes and returns the attached observer, if any.
    pub fn detach_observer(&mut self) -> Option<Box<dyn TickObserver>> {
        self.observer.take()
    }

    /// Advances the model by `ticks` clock periods.
    ///
    /// # Errors
    ///
    /// * [`CoreError::PolicyViolation`] if the plugged-in scheduling
    ///   function produced an invalid decision (the model halts at the
    ///   offending tick);
    /// * [`CoreError::San`] for SAN-level failures;
    /// * any error returned by an attached [`TickObserver`].
    pub fn run(&mut self, ticks: u64) -> Result<(), CoreError> {
        if self.observer.is_none() {
            self.horizon += ticks as f64;
            self.sim.run_until(self.horizon)?;
            if let Some(e) = self.error.lock().expect("error cell").take() {
                return Err(e);
            }
            return Ok(());
        }
        // Observed run: step one clock period at a time. All activities
        // fire at integer times, so stopping at every integer boundary
        // processes exactly the same events in the same order as one long
        // run — only the observation points differ.
        for _ in 0..ticks {
            self.horizon += 1.0;
            self.sim.run_until(self.horizon)?;
            if let Some(e) = self.error.lock().expect("error cell").take() {
                return Err(e);
            }
            let vcpu_views = self.vcpu_views();
            let pcpu_views = self.pcpu_views();
            let tick = self.time();
            if let Some(obs) = self.observer.as_mut() {
                obs.on_tick(tick, &vcpu_views, &pcpu_views)?;
            }
        }
        Ok(())
    }

    /// Current tick (value of the hypervisor clock place).
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.marking().tokens(self.layout.clock) as u64
    }

    /// The configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Restarts the metric observation windows (warm-up deletion).
    pub fn reset_metrics(&mut self) {
        self.sim.reset_rewards();
    }

    /// Switches the underlying simulator between incremental reevaluation
    /// (the default) and the full-rescan reference mode. Both modes are
    /// bit-identical by construction; the toggle exists so differential
    /// checkers and the perf harness can compare them.
    pub fn set_full_rescan(&mut self, on: bool) {
        self.sim.set_full_rescan(on);
    }

    /// The three paper metrics over the current observation window.
    ///
    /// VCPU utilization is the ratio of the useful-BUSY-fraction reward
    /// (BUSY minus spinning) to the ACTIVE-fraction reward — the fraction
    /// of scheduled time spent making progress (see [`crate::metrics`]).
    #[must_use]
    pub fn metrics(&self) -> SampleMetrics {
        let availability: Vec<f64> = self
            .avail
            .iter()
            .map(|&r| self.sim.rate_reward_average(r))
            .collect();
        let spin_avg: Vec<f64> = self
            .spin
            .iter()
            .map(|&r| self.sim.rate_reward_average(r))
            .collect();
        let utilization = self
            .util
            .iter()
            .zip(&availability)
            .zip(&spin_avg)
            .map(|((&r, &active), &spinning)| {
                if active == 0.0 {
                    0.0
                } else {
                    (self.sim.rate_reward_average(r) - spinning).max(0.0) / active
                }
            })
            .collect();
        let vcpu_spin = spin_avg
            .iter()
            .zip(&availability)
            .map(|(&spinning, &active)| {
                if active == 0.0 {
                    0.0
                } else {
                    spinning / active
                }
            })
            .collect();
        SampleMetrics {
            vcpu_availability: availability,
            vcpu_utilization: utilization,
            pcpu_utilization: self
                .putil
                .iter()
                .map(|&r| self.sim.rate_reward_average(r))
                .collect(),
            vcpu_spin,
        }
    }

    /// Snapshot of every VCPU from the current marking.
    #[must_use]
    pub fn vcpu_views(&self) -> Vec<VcpuView> {
        self.layout.vcpu_views(self.sim.marking(), &self.config)
    }

    /// Snapshot of every PCPU from the current marking.
    #[must_use]
    pub fn pcpu_views(&self) -> Vec<PcpuView> {
        self.layout.pcpu_views(self.sim.marking(), &self.config)
    }

    /// Whether VM `vm` is currently blocked on a synchronization point.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_blocked(&self, vm: usize) -> bool {
        self.sim.marking().tokens(self.layout.vms[vm].blocked) == 1
    }

    /// Whether VM `vm` is currently admitted (always true on a static
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn vm_admitted(&self, vm: usize) -> bool {
        self.layout.vm_admitted(self.sim.marking(), vm)
    }

    /// VM `vm`'s workload-generation level in per-mille (1000 on a static
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    #[must_use]
    pub fn load_level(&self, vm: usize) -> u32 {
        self.layout.vm_load_level(self.sim.marking(), vm)
    }

    /// Admits or retires VM `vm` at the current instant (trace frontend).
    /// A no-op when the admission state is unchanged, so replaying a
    /// degenerate trace leaves the system bit-identical to a static run.
    ///
    /// Retirement schedules every member VCPU out, erases the VM's job
    /// and synchronization state, and drops the `admitted` token, which
    /// disables the VM's workload generator and removes its VCPUs from
    /// every policy's candidate set (`present = false`). The mutation goes
    /// through [`vsched_san::Simulator::apply_external`], which keeps the
    /// reward accumulators exact and re-derives the shard plan on the next
    /// sharded run.
    ///
    /// # Panics
    ///
    /// Panics if the system was not built with [`SanSystem::new_dynamic`]
    /// or `vm` is out of range.
    pub fn set_admitted(&mut self, vm: usize, admitted: bool) {
        let d = self
            .layout
            .dyn_vms
            .as_ref()
            .expect("set_admitted on a static SAN model")[vm];
        if (self.sim.marking().tokens(d.admitted) == 1) == admitted {
            return;
        }
        let layout = &self.layout;
        self.sim.apply_external(|m| {
            if admitted {
                m.set(d.admitted, 1);
            } else {
                layout.retire_vm(m, vm);
            }
        });
    }

    /// Sets VM `vm`'s workload-generation level in per-mille of the
    /// configured rate (trace frontend; `1000` = full rate, `0` = paused).
    /// A no-op when the level is unchanged. Saturated generators are
    /// duty-cycled on the shared clock; interarrival generators rescale
    /// their rate, resampling the pending arrival from the current
    /// instant.
    ///
    /// # Panics
    ///
    /// Panics if the system was not built with [`SanSystem::new_dynamic`],
    /// `vm` is out of range, or `per_mille > 1000`.
    pub fn set_load_level(&mut self, vm: usize, per_mille: u32) {
        assert!(
            per_mille <= crate::util::FULL_LEVEL,
            "load level {per_mille} out of range"
        );
        let d = self
            .layout
            .dyn_vms
            .as_ref()
            .expect("set_load_level on a static SAN model")[vm];
        if self.sim.marking().tokens(d.load_level) == i64::from(per_mille) {
            return;
        }
        self.sim
            .apply_external(|m| m.set(d.load_level, i64::from(per_mille)));
    }

    /// The underlying SAN simulator (for reward/statistics inspection).
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// White-box access to the place layout for invariant tests.
    #[cfg(test)]
    pub(crate) fn layout_for_tests(&self) -> &Layout {
        &self.layout
    }
}
