use vsched_des::Dist;

use crate::config::{SystemConfig, VmSpec, WorkloadSpec};
use crate::san_model::SanSystem;
use crate::sched::{PolicyKind, RoundRobin, ScheduleDecision, SchedulingPolicy};
use crate::types::{PcpuView, VcpuStatus, VcpuView};

fn config(pcpus: usize, vms: &[usize]) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vms {
        b = b.vm(n);
    }
    b.build().unwrap()
}

fn det_workload(load: f64) -> WorkloadSpec {
    WorkloadSpec {
        load: Dist::deterministic(load).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    }
}

fn config_with_workload(pcpus: usize, vms: &[usize], workload: WorkloadSpec) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vms {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: workload.clone(),
            weight: 1,
        });
    }
    b.build().unwrap()
}

#[test]
fn clock_advances_one_per_tick() {
    let cfg = config(1, &[1]);
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 1).unwrap();
    assert_eq!(sys.time(), 0);
    sys.run(5).unwrap();
    assert_eq!(sys.time(), 5);
    sys.run(3).unwrap();
    assert_eq!(sys.time(), 8);
}

#[test]
fn saturated_vcpu_is_always_busy() {
    let cfg = config_with_workload(1, &[1], det_workload(4.0));
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 2).unwrap();
    sys.run(10).unwrap();
    sys.reset_metrics();
    sys.run(1000).unwrap();
    let m = sys.metrics();
    assert!(m.vcpu_availability[0] > 0.99, "{m:?}");
    assert!(m.vcpu_utilization[0] > 0.99, "{m:?}");
    assert!(m.pcpu_utilization[0] > 0.99, "{m:?}");
}

#[test]
fn first_tick_dispatches_a_job() {
    let cfg = config_with_workload(2, &[2], det_workload(6.0));
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 3).unwrap();
    sys.run(1).unwrap();
    let views = sys.vcpu_views();
    assert!(
        views.iter().all(|v| v.status == VcpuStatus::Busy),
        "{views:?}"
    );
    assert_eq!(views[0].remaining_load, 6);
}

#[test]
fn sync_point_blocks_and_unblocks() {
    let w = WorkloadSpec {
        load: Dist::deterministic(6.0).unwrap(),
        sync_probability: 1.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    };
    let cfg = config_with_workload(2, &[2], w);
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 4).unwrap();
    sys.run(1).unwrap();
    assert!(sys.vm_blocked(0));
    let views = sys.vcpu_views();
    let busy = views
        .iter()
        .filter(|v| v.status == VcpuStatus::Busy)
        .count();
    let ready = views
        .iter()
        .filter(|v| v.status == VcpuStatus::Ready)
        .count();
    assert_eq!((busy, ready), (1, 1), "one sync job runs, sibling waits");
    // Six ticks later the job completes, the barrier clears, and the next
    // sync job dispatches within the same tick.
    sys.run(6).unwrap();
    let views = sys.vcpu_views();
    assert_eq!(
        views
            .iter()
            .filter(|v| v.status == VcpuStatus::Busy)
            .count(),
        1
    );
    assert!(sys.vm_blocked(0), "next sync job re-blocked the VM");
}

#[test]
fn timeslice_rotation_under_contention() {
    let cfg = {
        let mut b = SystemConfig::builder().pcpus(1).timeslice(5);
        for _ in 0..2 {
            b = b.vm_spec(VmSpec {
                vcpus: 1,
                workload: det_workload(100.0),
                weight: 1,
            });
        }
        b.build().unwrap()
    };
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 5).unwrap();
    sys.run(1).unwrap();
    assert_eq!(sys.pcpu_views()[0].assigned.unwrap().global, 0);
    sys.run(5).unwrap();
    assert_eq!(
        sys.pcpu_views()[0].assigned.unwrap().global,
        1,
        "slice expired, RR moved on"
    );
    let v0 = &sys.vcpu_views()[0];
    assert_eq!(v0.status, VcpuStatus::Inactive);
    assert!(v0.remaining_load > 0, "preempted job is preserved");
}

#[test]
fn two_vcpus_share_one_pcpu_fairly() {
    let cfg = config_with_workload(1, &[1, 1], det_workload(4.0));
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 6).unwrap();
    sys.run(10_000).unwrap();
    let m = sys.metrics();
    assert!((m.vcpu_availability[0] - 0.5).abs() < 0.01, "{m:?}");
    assert!((m.vcpu_availability[1] - 0.5).abs() < 0.01, "{m:?}");
    assert!(m.pcpu_utilization[0] > 0.99);
}

#[test]
fn scs_starves_smp_vm_on_one_pcpu() {
    let cfg = config(1, &[2, 1, 1]);
    let mut sys = SanSystem::new(cfg, PolicyKind::StrictCo.create(), 7).unwrap();
    sys.run(5_000).unwrap();
    let m = sys.metrics();
    assert_eq!(m.vcpu_availability[0], 0.0);
    assert_eq!(m.vcpu_availability[1], 0.0);
    assert!(m.vcpu_availability[2] > 0.4);
    assert!(m.vcpu_availability[3] > 0.4);
}

#[test]
fn interarrival_mode_limits_utilization() {
    let w = WorkloadSpec {
        load: Dist::deterministic(2.0).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: Some(Dist::deterministic(10.0).unwrap()),
    };
    let cfg = config_with_workload(1, &[1], w);
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 8).unwrap();
    sys.run(10_000).unwrap();
    let m = sys.metrics();
    assert!(
        (m.vcpu_utilization[0] - 0.2).abs() < 0.03,
        "expected ~0.2, got {}",
        m.vcpu_utilization[0]
    );
}

#[test]
fn policy_violation_halts_and_reports() {
    #[derive(Debug)]
    struct Broken;
    impl SchedulingPolicy for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn schedule(
            &mut self,
            vcpus: &[VcpuView],
            _pcpus: &[PcpuView],
            _t: u64,
            ts: u64,
        ) -> ScheduleDecision {
            let mut d = ScheduleDecision::none();
            if !vcpus.is_empty() {
                d.assign(0, 0, ts);
                d.assign(0, 0, ts); // double assignment: invalid
            }
            d
        }
    }
    let cfg = config(1, &[1]);
    let mut sys = SanSystem::new(cfg, Box::new(Broken), 9).unwrap();
    let err = sys.run(10).unwrap_err();
    assert!(err.to_string().contains("broken"), "{err}");
}

#[test]
fn ready_count_place_matches_derived_value() {
    // The Num_VCPUs_ready join place must stay consistent with the statuses
    // through every kind of transition.
    let cfg = config(2, &[2, 2]);
    let mut sys = SanSystem::new(cfg, PolicyKind::relaxed_co_default().create(), 10).unwrap();
    for _ in 0..500 {
        sys.run(1).unwrap();
        let views = sys.vcpu_views();
        for vm in 0..2 {
            let derived = views
                .iter()
                .filter(|v| v.id.vm == vm && v.status == VcpuStatus::Ready)
                .count() as i64;
            let place = sys
                .simulator()
                .marking()
                .tokens(sys.layout_for_tests().vms[vm].ready_count);
            assert_eq!(place, derived, "tick {}: VM {vm}", sys.time());
        }
    }
}

#[test]
fn conservation_invariants_hold() {
    let cfg = config(3, &[2, 2, 1]);
    let mut sys = SanSystem::new(cfg, PolicyKind::relaxed_co_default().create(), 11).unwrap();
    for _ in 0..500 {
        sys.run(1).unwrap();
        let vcpus = sys.vcpu_views();
        let pcpus = sys.pcpu_views();
        let mut seen = vec![false; pcpus.len()];
        for v in &vcpus {
            match (v.status.is_active(), v.assigned_pcpu) {
                (true, Some(p)) => {
                    assert!(!seen[p]);
                    seen[p] = true;
                    assert_eq!(pcpus[p].assigned, Some(v.id));
                }
                (false, None) => {}
                other => panic!("inconsistent state {other:?}"),
            }
        }
    }
}

#[test]
fn determinism_per_seed() {
    let run = |seed: u64| {
        let cfg = config(2, &[2, 1]);
        let mut sys = SanSystem::new(cfg, PolicyKind::RoundRobin.create(), seed).unwrap();
        sys.run(2_000).unwrap();
        sys.metrics()
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn paper_model_has_fully_declared_read_sets() {
    // Every guard / rate closure in the paper model declares its read-set,
    // so no activity should land on the conservative always-revisit list —
    // the incremental reevaluation path covers the whole model.
    let cfg = config(2, &[2, 2, 1]);
    let analysis =
        crate::san_model::build_analysis_model(&cfg, PolicyKind::RoundRobin.create()).unwrap();
    assert_eq!(
        analysis.model.conservative_activities().count(),
        0,
        "paper model must have no undeclared (conservative) activities"
    );
}

#[test]
fn incremental_and_full_rescan_agree_on_paper_model() {
    let run = |full: bool| {
        let cfg = config(2, &[2, 1]);
        let mut sys = SanSystem::new(cfg, PolicyKind::Sedf { period: 100 }.create(), 77).unwrap();
        sys.set_full_rescan(full);
        sys.run(1_500).unwrap();
        sys.metrics()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn reset_metrics_restarts_window() {
    let cfg = config(1, &[1]);
    let mut sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 12).unwrap();
    sys.run(100).unwrap();
    let before = sys.metrics().vcpu_availability[0];
    assert!(before > 0.9);
    sys.reset_metrics();
    let m = sys.metrics();
    // No time observed yet in the new window.
    assert_eq!(m.vcpu_availability[0], 0.0);
}

#[test]
fn spinlock_spin_survives_same_tick_deschedule() {
    // Lock-holder preemption: VM 1's two VCPUs share a spinlock but only
    // one PCPU's worth of time (SEDF keeps the 1-VCPU VM saturated on the
    // other PCPU), so the non-holder spins away whole 2-tick slices. A
    // spin tick whose spinner expires in the *same* tick's phase 3 must
    // still count — the PCPU was burned in phase 1 — or the SAN engine
    // reports roughly half the direct engine's spin fraction.
    let mk = || {
        let w = WorkloadSpec {
            load: Dist::deterministic(7.0).unwrap(),
            sync_probability: 0.0,
            sync_mechanism: crate::config::SyncMechanism::SpinLock,
            sync_every: None,
            interarrival: None,
        }
        .with_sync_every(4)
        .unwrap();
        SystemConfig::builder()
            .pcpus(2)
            .timeslice(2)
            .vm_spec(VmSpec {
                vcpus: 1,
                workload: w.clone(),
                weight: 1,
            })
            .vm_spec(VmSpec {
                vcpus: 2,
                workload: w,
                weight: 1,
            })
            .build()
            .unwrap()
    };
    let policy = || PolicyKind::Sedf { period: 50 }.create();
    let mut sys = SanSystem::new(mk(), policy(), 17).unwrap();
    sys.run(2_000).unwrap();
    let san = sys.metrics();
    let mut direct = crate::direct::DirectSim::new(mk(), policy(), 17);
    direct.run(2_000).unwrap();
    let dm = direct.metrics();
    assert!(
        dm.vcpu_spin.iter().any(|&s| s > 0.1),
        "scenario must actually spin: {dm:?}"
    );
    for g in 0..3 {
        assert!(
            (san.vcpu_spin[g] - dm.vcpu_spin[g]).abs() < 0.02,
            "VCPU {g}: SAN spin {} vs direct {}",
            san.vcpu_spin[g],
            dm.vcpu_spin[g]
        );
        assert!(
            (san.vcpu_utilization[g] - dm.vcpu_utilization[g]).abs() < 0.02,
            "VCPU {g}: SAN util {} vs direct {}",
            san.vcpu_utilization[g],
            dm.vcpu_utilization[g]
        );
    }
}

#[test]
fn deterministic_sync_pattern_in_san() {
    // 1 VCPU, 1 PCPU, every 3rd job a barrier: with det(4) loads the VM
    // blocks exactly after every third dispatch; metrics must match the
    // direct engine's.
    let mk = || {
        let w = WorkloadSpec {
            load: Dist::deterministic(4.0).unwrap(),
            sync_probability: 0.0,
            sync_mechanism: Default::default(),
            sync_every: None,
            interarrival: None,
        }
        .with_sync_every(3)
        .unwrap();
        config_with_workload(2, &[2], w)
    };
    let mut sys = SanSystem::new(mk(), Box::new(RoundRobin::new()), 41).unwrap();
    sys.run(5_000).unwrap();
    let san = sys.metrics();
    let mut direct = crate::direct::DirectSim::new(mk(), Box::new(RoundRobin::new()), 41);
    direct.run(5_000).unwrap();
    let dm = direct.metrics();
    for (a, b) in san.to_observations().iter().zip(dm.to_observations()) {
        assert!((a - b).abs() < 0.02, "SAN {a} vs direct {b}");
    }
}

#[test]
fn paper_model_shards_per_vm() {
    let cfg = config(2, &[2, 2, 1]);
    let sys = SanSystem::new(cfg, Box::new(RoundRobin::new()), 1).unwrap();
    let model = sys.simulator().model();
    let plan = vsched_san::ShardPlan::derive(model);
    assert_eq!(plan.num_shards(), 3, "one shard per VM");
    for k in 0..3 {
        let unblock = model.activity_by_name(&format!("vm{k}/Unblock")).unwrap();
        let generate = model
            .activity_by_name(&format!("vm{k}/WL_Generate"))
            .unwrap();
        assert_eq!(plan.activity_shard(unblock), Some(k));
        assert_eq!(plan.activity_shard(generate), Some(k));
    }
    // Sibling VCPUs share their VM's shard (spinlock hand-off within a VM
    // is index-ordered, so siblings must never fire concurrently).
    let p00 = model.activity_by_name("vm0/vcpu0/Processing_load").unwrap();
    let p01 = model.activity_by_name("vm0/vcpu1/Processing_load").unwrap();
    let p10 = model.activity_by_name("vm1/vcpu0/Processing_load").unwrap();
    assert_eq!(plan.activity_shard(p00), Some(0));
    assert_eq!(plan.activity_shard(p01), Some(0));
    assert_eq!(plan.activity_shard(p10), Some(1));
    // Cross-VM coordination stays on the sequential path: the clock is
    // timed, `Timeslice`/`Scheduling_Func` have undeclared (whole-system)
    // gates, and `Scheduling`/`End_Tick` can enable the higher-priority
    // `WL_Generate` mid-batch.
    for name in [
        "Clock",
        "Timeslice",
        "Scheduling_Func",
        "vm0/Scheduling",
        "vm0/End_Tick",
    ] {
        let a = model.activity_by_name(name).unwrap();
        assert_eq!(plan.activity_shard(a), None, "{name} must stay global");
    }
}

#[test]
fn sharded_run_is_bit_identical_on_paper_model() {
    // A workload that exercises every sharded code path: barriers on one
    // VM, spinlocks on another, plus an uneven third VM.
    let mk = || {
        let spin = WorkloadSpec {
            load: Dist::Uniform {
                low: 1.0,
                high: 9.0,
            },
            sync_probability: 0.4,
            sync_mechanism: crate::config::SyncMechanism::SpinLock,
            sync_every: None,
            interarrival: None,
        };
        let barrier = WorkloadSpec {
            load: Dist::deterministic(4.0).unwrap(),
            sync_probability: 0.0,
            sync_mechanism: crate::config::SyncMechanism::Barrier,
            sync_every: None,
            interarrival: None,
        }
        .with_sync_every(3)
        .unwrap();
        SystemConfig::builder()
            .pcpus(3)
            .vm_spec(VmSpec {
                vcpus: 2,
                workload: spin,
                weight: 1,
            })
            .vm_spec(VmSpec {
                vcpus: 2,
                workload: barrier,
                weight: 1,
            })
            .vm_spec(VmSpec {
                vcpus: 1,
                workload: det_workload(6.0),
                weight: 1,
            })
            .build()
            .unwrap()
    };
    let mut sequential = SanSystem::new(mk(), Box::new(RoundRobin::new()), 77).unwrap();
    sequential.run(400).unwrap();
    let seq_metrics = sequential.metrics();
    for shards in [2, 3, 8] {
        let mut sharded = SanSystem::new(mk(), Box::new(RoundRobin::new()), 77).unwrap();
        sharded.set_shards(shards);
        sharded.run(400).unwrap();
        assert_eq!(
            sharded.simulator().marking().as_slice(),
            sequential.simulator().marking().as_slice(),
            "marking with {shards} shards"
        );
        let m = sharded.metrics();
        assert_eq!(
            m.to_observations(),
            seq_metrics.to_observations(),
            "metrics with {shards} shards"
        );
    }
}

#[test]
fn auto_mode_fingerprint_matches_explicit_shards() {
    // The ISSUE's regression contract: `--shards auto` on the paper model
    // produces the same fingerprint (final marking + metrics) as explicit
    // `--shards 1` and `--shards 4`. The paper plan is one shard per VM
    // (width 3, below the default auto threshold of 64), so auto is
    // exercised on both of its decision branches: the default threshold
    // (auto resolves to sequential) and a lowered threshold with forced
    // parallelism (auto resolves to real lanes).
    use vsched_san::ShardMode;
    let cfg = || config(2, &[2, 2, 1]);
    let fingerprint = |sys: &mut SanSystem| {
        let m = sys.metrics();
        (
            sys.simulator().marking().as_slice().to_vec(),
            m.to_observations(),
        )
    };
    let mut reference = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 5).unwrap();
    reference.set_shards(1); // explicit `--shards 1` spelling: sequential
    reference.run(400).unwrap();
    let want = fingerprint(&mut reference);

    let mut fixed = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 5).unwrap();
    fixed.set_shards(4);
    fixed.run(400).unwrap();
    assert_eq!(fingerprint(&mut fixed), want, "--shards 4");

    let mut auto_seq = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 5).unwrap();
    auto_seq.set_shard_mode(ShardMode::Auto);
    auto_seq.set_shard_available_override(Some(4));
    auto_seq.run(400).unwrap();
    assert_eq!(
        auto_seq.resolved_shards(),
        None,
        "plan width 3 is below the default auto threshold"
    );
    assert_eq!(
        fingerprint(&mut auto_seq),
        want,
        "--shards auto (sequential)"
    );

    let mut auto_lanes = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 5).unwrap();
    auto_lanes.set_shard_mode(ShardMode::Auto);
    auto_lanes.set_shard_available_override(Some(4));
    auto_lanes.set_auto_shard_threshold(2);
    auto_lanes.run(400).unwrap();
    assert_eq!(
        auto_lanes.resolved_shards(),
        Some(3),
        "lowered threshold engages one lane per VM shard"
    );
    assert_eq!(fingerprint(&mut auto_lanes), want, "--shards auto (lanes)");
}

#[test]
fn sharded_run_with_forced_threads_is_bit_identical() {
    // Same contract as `sharded_run_is_bit_identical_on_paper_model`, but
    // with available parallelism pinned to 4 so helper threads spawn even
    // on single-core machines — this is the variant the TSan CI job leans
    // on to race-check the lane pool under a real model.
    let cfg = || config(2, &[2, 2, 1]);
    let mut sequential = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 31).unwrap();
    sequential.run(300).unwrap();
    let seq_metrics = sequential.metrics();
    for shards in [2, 3] {
        let mut sharded = SanSystem::new(cfg(), Box::new(RoundRobin::new()), 31).unwrap();
        sharded.set_shards(shards);
        sharded.set_shard_available_override(Some(4));
        sharded.run(300).unwrap();
        assert_eq!(
            sharded.resolved_shards(),
            Some(shards.min(3)),
            "forced parallelism must engage {shards} lanes (capped at plan width)"
        );
        assert_eq!(
            sharded.simulator().marking().as_slice(),
            sequential.simulator().marking().as_slice(),
            "marking with {shards} threaded shards"
        );
        assert_eq!(
            sharded.metrics().to_observations(),
            seq_metrics.to_observations(),
            "metrics with {shards} threaded shards"
        );
    }
}

#[test]
fn dynamic_identity_is_bit_identical_to_static() {
    // A dynamic model left at the identity marking (every VM admitted at
    // full level), with no-op setters sprinkled in, must be bit-identical
    // to the static model: same static-place marking, same metrics.
    let mk = || config_with_workload(2, &[2, 1], det_workload(3.0));
    let mut stat = SanSystem::new(mk(), Box::new(RoundRobin::new()), 9).unwrap();
    let mut dynamic = SanSystem::new_dynamic(mk(), Box::new(RoundRobin::new()), 9).unwrap();
    dynamic.set_admitted(0, true);
    dynamic.set_load_level(1, 1000);
    stat.run(300).unwrap();
    dynamic.run(150).unwrap();
    dynamic.set_admitted(1, true);
    dynamic.set_load_level(0, 1000);
    dynamic.run(150).unwrap();
    let s = stat.simulator().marking().as_slice();
    let d = dynamic.simulator().marking().as_slice();
    assert_eq!(&d[..s.len()], s, "static places agree");
    assert_eq!(
        stat.metrics().to_observations(),
        dynamic.metrics().to_observations()
    );
}

#[test]
fn retire_masks_views_and_frees_pcpus() {
    let cfg = config_with_workload(2, &[1, 1], det_workload(5.0));
    let mut sys = SanSystem::new_dynamic(cfg, Box::new(RoundRobin::new()), 11).unwrap();
    sys.run(10).unwrap();
    assert!(sys.vm_admitted(1));
    sys.set_admitted(1, false);
    assert!(!sys.vm_admitted(1));
    let views = sys.vcpu_views();
    assert!(views[0].present);
    assert!(!views[1].present);
    assert_eq!(views[1].status, VcpuStatus::Inactive);
    assert_eq!(views[1].remaining_load, 0);
    assert!(
        !views[1].is_schedulable(),
        "retired VCPUs are not candidates"
    );
    assert!(
        sys.pcpu_views()
            .iter()
            .all(|p| p.assigned.is_none_or(|id| id.vm != 1)),
        "retirement freed VM 1's PCPU"
    );
    sys.run(50).unwrap();
    assert_eq!(
        sys.vcpu_views()[1].status,
        VcpuStatus::Inactive,
        "a retired VM never runs"
    );
    sys.set_admitted(1, true);
    sys.run(2).unwrap();
    assert_eq!(
        sys.vcpu_views()[1].status,
        VcpuStatus::Busy,
        "a re-admitted VM resumes generating work"
    );
}

#[test]
fn load_level_zero_pauses_saturated_generation() {
    let cfg = config_with_workload(1, &[1], det_workload(3.0));
    let mut sys = SanSystem::new_dynamic(cfg, Box::new(RoundRobin::new()), 13).unwrap();
    sys.run(10).unwrap();
    assert_eq!(sys.load_level(0), 1000);
    sys.set_load_level(0, 0);
    assert_eq!(sys.load_level(0), 0);
    sys.run(10).unwrap();
    assert_ne!(
        sys.vcpu_views()[0].status,
        VcpuStatus::Busy,
        "no new jobs at level 0"
    );
    sys.set_load_level(0, 1000);
    sys.run(2).unwrap();
    assert_eq!(sys.vcpu_views()[0].status, VcpuStatus::Busy);
}

#[test]
fn duty_cycle_halves_generated_jobs() {
    // Level 500 thins generation ticks to every other tick; with load 1
    // each job completes inside its tick, so VCPU utilization lands near
    // one half of the full-level run.
    let mk = || config_with_workload(1, &[1], det_workload(1.0));
    let run_at = |level: u32| {
        let mut sys = SanSystem::new_dynamic(mk(), Box::new(RoundRobin::new()), 17).unwrap();
        sys.set_load_level(0, level);
        sys.run(2000).unwrap();
        sys.metrics().vcpu_utilization[0]
    };
    let full = run_at(1000);
    let half = run_at(500);
    assert!(full > 0.95, "saturated at load 1: {full}");
    assert!(
        (half - full / 2.0).abs() < 0.05,
        "level 500 should halve utilization: full {full}, half {half}"
    );
}

#[test]
fn dynamic_sharded_run_is_bit_identical_after_churn() {
    // Membership events invalidate the shard plan; the re-derived plan
    // must keep sharded execution bit-identical to sequential across the
    // retire / load-level / re-admit cycle.
    let mk = || config_with_workload(3, &[2, 2, 1], det_workload(4.0));
    let script = |sys: &mut SanSystem| {
        sys.run(100).unwrap();
        sys.set_admitted(1, false);
        sys.set_load_level(2, 250);
        sys.run(100).unwrap();
        sys.set_admitted(1, true);
        sys.set_load_level(2, 1000);
        sys.run(100).unwrap();
    };
    let mut sequential = SanSystem::new_dynamic(mk(), Box::new(RoundRobin::new()), 77).unwrap();
    script(&mut sequential);
    for shards in [2, 4] {
        let mut sharded = SanSystem::new_dynamic(mk(), Box::new(RoundRobin::new()), 77).unwrap();
        sharded.set_shards(shards);
        script(&mut sharded);
        assert_eq!(
            sharded.simulator().marking().as_slice(),
            sequential.simulator().marking().as_slice(),
            "marking with {shards} shards"
        );
        assert_eq!(
            sharded.metrics().to_observations(),
            sequential.metrics().to_observations(),
            "metrics with {shards} shards"
        );
    }
}
