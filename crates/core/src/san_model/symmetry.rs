//! VM-rotation symmetry of the composed SAN model.
//!
//! When every VM sub-model is identical (same VCPU count, weight and
//! workload), cyclically relabeling the VMs maps the model onto itself:
//! the paper's metamorphic rotation oracle exploits exactly this
//! invariance. This module materializes the rotation group as concrete
//! permutations of the flat marking vector so the verifier can quotient
//! its state space by it.
//!
//! A rotation by `s` maps VM `v` to `(v + s) % V` and, because the VMs
//! are identical (each with `k` VCPUs), VCPU `g` to `(g + s·k) % n`.
//! Most places simply move to the rotated entity's slot; the id-valued
//! places need their *values* remapped as well:
//!
//! * `pcpus[p]` (VCPU id + 1) — position fixed, value remapped;
//! * `lock_holder` (VCPU id + 1) — position rotated *and* value remapped;
//! * `vcpu.pcpu` (PCPU id + 1) — position rotated, value unchanged
//!   (PCPUs are not relabeled).
//!
//! The hypervisor places (`clock`, `halt`, `tick_expire`, `tick_sched`)
//! are fixed points.

use crate::config::SystemConfig;
use crate::san_model::layout::Layout;

/// One cyclic VM relabeling, compiled to a marking-vector permutation.
#[derive(Debug, Clone)]
pub struct MarkingRotation {
    /// VM shift: VM `v` maps to `(v + vm_shift) % num_vms`.
    pub vm_shift: usize,
    /// VCPU shift (`vm_shift · vcpus_per_vm`): VCPU `g` maps to
    /// `(g + vcpu_shift) % num_vcpus`.
    pub vcpu_shift: usize,
    /// Total VMs (modulus of the VM action).
    pub num_vms: usize,
    /// Total VCPUs (modulus of the VCPU action).
    pub num_vcpus: usize,
    /// `dst[i] = src[perm[i]]`.
    perm: Vec<usize>,
    /// Destination indices holding a VCPU id **plus one** (0 = none),
    /// whose values must be remapped after permuting.
    vcpu_valued: Vec<usize>,
}

impl MarkingRotation {
    /// Applies the rotation to a flat marking snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than the model this rotation was built
    /// for.
    #[must_use]
    pub fn apply(&self, src: &[i64]) -> Vec<i64> {
        let mut dst: Vec<i64> = self.perm.iter().map(|&j| src[j]).collect();
        for &i in &self.vcpu_valued {
            let t = dst[i];
            if t > 0 {
                dst[i] = self.rotate_vcpu_id(t);
            }
        }
        dst
    }

    /// Remaps a VCPU id **plus one** token (`t > 0`) under the rotation.
    fn rotate_vcpu_id(&self, t: i64) -> i64 {
        ((t as usize - 1 + self.vcpu_shift) % self.num_vcpus) as i64 + 1
    }
}

/// The non-trivial cyclic VM rotations of `config`'s model, as marking
/// permutations over `num_places` places.
///
/// Returns an empty vector — no symmetry to exploit — unless the model is
/// static (no admission places: retiring VM 0 but not VM 1 breaks the
/// symmetry), has at least two VMs, and every VM sub-model is identical.
#[must_use]
pub fn vm_rotations(
    config: &SystemConfig,
    layout: &Layout,
    num_places: usize,
) -> Vec<MarkingRotation> {
    let vms = config.vms();
    let num_vms = vms.len();
    if layout.dyn_vms.is_some() || num_vms < 2 || vms.iter().any(|v| *v != vms[0]) {
        return Vec::new();
    }
    let k = vms[0].vcpus;
    let num_vcpus = layout.vcpus.len();
    (1..num_vms)
        .map(|vm_shift| {
            let mut perm: Vec<usize> = (0..num_places).collect();
            for (g, src) in layout.vcpus.iter().enumerate() {
                let dst = &layout.vcpus[(g + vm_shift * k) % num_vcpus];
                for (d, s) in [
                    (dst.status, src.status),
                    (dst.remaining_load, src.remaining_load),
                    (dst.sync_point, src.sync_point),
                    (dst.timeslice, src.timeslice),
                    (dst.last_in, src.last_in),
                    (dst.pcpu, src.pcpu),
                    (dst.tick, src.tick),
                    (dst.spinning, src.spinning),
                ] {
                    perm[d.index()] = s.index();
                }
            }
            for (v, src) in layout.vms.iter().enumerate() {
                let dst = &layout.vms[(v + vm_shift) % num_vms];
                for (d, s) in [
                    (dst.blocked, src.blocked),
                    (dst.ready_count, src.ready_count),
                    (dst.wl_pending, src.wl_pending),
                    (dst.wl_load, src.wl_load),
                    (dst.wl_sync, src.wl_sync),
                    (dst.window, src.window),
                    (dst.tick_unblock, src.tick_unblock),
                    (dst.lock_holder, src.lock_holder),
                    (dst.generated, src.generated),
                ] {
                    perm[d.index()] = s.index();
                }
            }
            let vcpu_valued = layout
                .pcpus
                .iter()
                .chain(layout.vms.iter().map(|p| &p.lock_holder))
                .map(|p| p.index())
                .collect();
            MarkingRotation {
                vm_shift,
                vcpu_shift: vm_shift * k,
                num_vms,
                num_vcpus,
                perm,
                vcpu_valued,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SystemConfig, VmSpec, WorkloadSpec};
    use crate::san_model::build_analysis_model;
    use crate::sched::PolicyKind;

    fn identical_vms(num_vms: usize, vcpus: usize) -> SystemConfig {
        let mut b = SystemConfig::builder().pcpus(2);
        for _ in 0..num_vms {
            b = b.vm(vcpus);
        }
        b.build().unwrap()
    }

    fn rotations_of(
        config: &SystemConfig,
    ) -> (crate::san_model::AnalysisModel, Vec<MarkingRotation>) {
        let am = build_analysis_model(config, PolicyKind::RoundRobin.create()).unwrap();
        let n = am.model.initial_marking().len();
        let rots = vm_rotations(config, &am.layout, n);
        (am, rots)
    }

    #[test]
    fn identical_vms_yield_one_rotation_per_shift() {
        let config = identical_vms(3, 2);
        let (_, rots) = rotations_of(&config);
        assert_eq!(rots.len(), 2, "shifts 1 and 2 of a 3-cycle");
        assert_eq!(rots[0].vcpu_shift, 2);
        assert_eq!(rots[1].vcpu_shift, 4);
    }

    #[test]
    fn heterogeneous_vms_yield_none() {
        let config = SystemConfig::builder()
            .pcpus(2)
            .vm(2)
            .vm(1)
            .build()
            .unwrap();
        let (_, rots) = rotations_of(&config);
        assert!(rots.is_empty(), "different VCPU counts break the symmetry");

        let config = SystemConfig::builder()
            .pcpus(2)
            .vm_spec(VmSpec::new(1).with_weight(2))
            .vm_spec(VmSpec::new(1))
            .build()
            .unwrap();
        let (_, rots) = rotations_of(&config);
        assert!(rots.is_empty(), "different weights break the symmetry");
    }

    #[test]
    fn rotation_composes_to_identity() {
        let config = identical_vms(2, 2);
        let (am, rots) = rotations_of(&config);
        assert_eq!(rots.len(), 1);
        // Perturb the initial marking so the test sees real movement:
        // VCPU 0 BUSY on PCPU 1, VM 0 holding its lock via VCPU 1.
        let mut m = am.model.initial_marking().as_slice().to_vec();
        let v0 = &am.layout.vcpus[0];
        m[v0.status.index()] = 2;
        m[v0.pcpu.index()] = 2;
        m[am.layout.pcpus[1].index()] = 1;
        m[am.layout.vms[0].lock_holder.index()] = 2;
        let once = rots[0].apply(&m);
        assert_ne!(once, m, "the half-turn must move the asymmetric state");
        let twice = rots[0].apply(&once);
        assert_eq!(twice, m, "applying the 2-cycle twice is the identity");
    }

    #[test]
    fn id_valued_places_are_remapped() {
        let config = identical_vms(2, 2);
        let (am, rots) = rotations_of(&config);
        let l = &am.layout;
        let mut m = am.model.initial_marking().as_slice().to_vec();
        // VCPU 0 on PCPU 0; VM 0's lock held by VCPU 1.
        m[l.pcpus[0].index()] = 1;
        m[l.vcpus[0].pcpu.index()] = 1;
        m[l.vms[0].lock_holder.index()] = 2;
        let r = rots[0].apply(&m);
        // PCPU 0 now holds the rotated VCPU (0 -> 2), id + 1 = 3.
        assert_eq!(r[l.pcpus[0].index()], 3);
        // The rotated VCPU slot carries the unchanged PCPU id + 1.
        assert_eq!(r[l.vcpus[2].pcpu.index()], 1);
        assert_eq!(r[l.vcpus[0].pcpu.index()], 0);
        // VM 1's lock is now held by the rotated holder (1 -> 3), id+1 = 4.
        assert_eq!(r[l.vms[1].lock_holder.index()], 4);
        assert_eq!(r[l.vms[0].lock_holder.index()], 0);
    }

    #[test]
    fn hypervisor_places_are_fixed_points() {
        let config = identical_vms(2, 1);
        let (am, rots) = rotations_of(&config);
        let l = &am.layout;
        let mut m = am.model.initial_marking().as_slice().to_vec();
        m[l.clock.index()] = 42;
        m[l.halt.index()] = 1;
        let r = rots[0].apply(&m);
        assert_eq!(r[l.clock.index()], 42);
        assert_eq!(r[l.halt.index()], 1);
    }

    #[test]
    fn dynamic_models_have_no_rotations() {
        let config = identical_vms(2, 1);
        let (model, layout, _, _) =
            crate::san_model::build::build_model(&config, PolicyKind::RoundRobin.create(), true)
                .unwrap();
        let rots = vm_rotations(&config, &layout, model.initial_marking().len());
        assert!(rots.is_empty(), "admission places break the symmetry");
    }

    #[test]
    fn all_rotations_are_bijections() {
        let config = identical_vms(3, 2);
        let (am, rots) = rotations_of(&config);
        let n = am.model.initial_marking().len();
        for rot in &rots {
            let mut seen = vec![false; n];
            for &j in &rot.perm {
                assert!(!seen[j], "source index {j} used twice");
                seen[j] = true;
            }
        }
        // Workload distribution differences also disable the group.
        let config = SystemConfig::builder()
            .pcpus(2)
            .vm_spec(VmSpec::new(1))
            .vm_spec(VmSpec {
                vcpus: 1,
                workload: WorkloadSpec {
                    sync_probability: 0.5,
                    ..WorkloadSpec::default()
                },
                weight: 1,
            })
            .build()
            .unwrap();
        let (_, rots) = rotations_of(&config);
        assert!(rots.is_empty(), "different workloads break the symmetry");
    }
}
