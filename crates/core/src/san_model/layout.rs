//! Place layout of the virtualization SAN: how the paper's extended places
//! map onto marking state, plus view construction and decision application.

use vsched_san::{Marking, PlaceId};

use crate::config::SystemConfig;
use crate::sched::ScheduleDecision;
use crate::types::{PcpuView, VcpuStatus, VcpuView};

/// Field places of one VCPU — the paper's `VCPU_slot` extended place
/// (`remaining_load`, `sync_point`, `status`) plus the scheduler-side
/// `VCPU` place fields (`Timeslice`, `Last_Scheduled_In`) and the
/// `Schedule_In`/`Schedule_Out` linkage, which in the flattened composed
/// model becomes a direct `pcpu` assignment field.
#[derive(Debug, Clone, Copy)]
pub struct VcpuPlaces {
    /// 0 = INACTIVE, 1 = READY, 2 = BUSY.
    pub status: PlaceId,
    /// Ticks of work left in the current job.
    pub remaining_load: PlaceId,
    /// 1 when the current job is a synchronization point.
    pub sync_point: PlaceId,
    /// Ticks left in the current timeslice.
    pub timeslice: PlaceId,
    /// Tick of the last schedule-in **plus one** (0 = never).
    pub last_in: PlaceId,
    /// Assigned PCPU index **plus one** (0 = none).
    pub pcpu: PlaceId,
    /// Per-VCPU clock-tick token driving `Processing_load`.
    pub tick: PlaceId,
    /// 1 while the VCPU is spinning on a held lock (spinlock extension).
    pub spinning: PlaceId,
}

/// Join places of one VM (the paper's Table 1): `Blocked`,
/// `Num_VCPUs_ready`, and the `Workload` buffer, plus the per-tick dispatch
/// window token.
#[derive(Debug, Clone, Copy)]
pub struct VmPlaces {
    /// 1 while a synchronization point blocks the VM.
    pub blocked: PlaceId,
    /// Number of READY VCPUs (the paper's `Num_VCPUs_ready`).
    pub ready_count: PlaceId,
    /// Generated-but-undispatched workloads.
    pub wl_pending: PlaceId,
    /// `load` field of the buffered workload (saturated mode).
    pub wl_load: PlaceId,
    /// `sync_point` field of the buffered workload (saturated mode).
    pub wl_sync: PlaceId,
    /// Per-tick token bounding dispatch to the tick instant.
    pub window: PlaceId,
    /// Per-VM clock-tick token driving the barrier (`Unblock`) check.
    pub tick_unblock: PlaceId,
    /// Holder of the VM spinlock: VCPU global id **plus one** (0 = free;
    /// spinlock extension).
    pub lock_holder: PlaceId,
    /// Workloads generated so far (drives the deterministic sync pattern).
    pub generated: PlaceId,
}

/// Per-VM membership places of a *dynamic* model (trace frontend). These
/// are appended after every static place, so a dynamic model's static
/// place ids are identical to the equivalent static model's.
#[derive(Debug, Clone, Copy)]
pub struct DynVmPlaces {
    /// 1 while the VM is admitted (present); 0 after retirement.
    pub admitted: PlaceId,
    /// Workload-generation level in per-mille (1000 = full rate).
    pub load_level: PlaceId,
}

/// Complete place layout of the composed virtualization model.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Per-VCPU places, indexed by global VCPU id.
    pub vcpus: Vec<VcpuPlaces>,
    /// Per-PCPU `assigned` places: VCPU global id **plus one** (0 = IDLE).
    pub pcpus: Vec<PlaceId>,
    /// Per-VM join places.
    pub vms: Vec<VmPlaces>,
    /// The hypervisor clock (tick counter).
    pub clock: PlaceId,
    /// Set to 1 to halt the model (policy violation detected).
    pub halt: PlaceId,
    /// Clock-tick token for the timeslice bookkeeping activity.
    pub tick_expire: PlaceId,
    /// Clock-tick token for the scheduling-function activity.
    pub tick_sched: PlaceId,
    /// Per-VM membership places (`Some` only for dynamic models).
    pub dyn_vms: Option<Vec<DynVmPlaces>>,
    /// VM index of each global VCPU id.
    vm_of_table: Vec<usize>,
}

impl Layout {
    /// Builds the [`VcpuView`] array a policy receives, from a marking.
    #[must_use]
    pub fn vcpu_views(&self, marking: &Marking, config: &SystemConfig) -> Vec<VcpuView> {
        self.vcpus
            .iter()
            .zip(config.vcpu_ids())
            .map(|(p, &id)| {
                let pcpu = marking.tokens(p.pcpu);
                let last_in = marking.tokens(p.last_in);
                VcpuView {
                    id,
                    status: VcpuStatus::from_token(marking.tokens(p.status)),
                    remaining_load: marking.tokens(p.remaining_load) as u64,
                    sync_point: marking.tokens(p.sync_point) != 0,
                    assigned_pcpu: (pcpu > 0).then(|| (pcpu - 1) as usize),
                    timeslice_remaining: marking.tokens(p.timeslice) as u64,
                    last_scheduled_in: (last_in > 0).then(|| (last_in - 1) as u64),
                    vm_weight: config.vms()[id.vm].weight,
                    present: self.vm_admitted(marking, id.vm),
                }
            })
            .collect()
    }

    /// Whether VM `vm` is admitted in `marking`. Static models are always
    /// fully admitted.
    #[must_use]
    pub fn vm_admitted(&self, marking: &Marking, vm: usize) -> bool {
        match &self.dyn_vms {
            None => true,
            Some(d) => marking.tokens(d[vm].admitted) == 1,
        }
    }

    /// VM `vm`'s workload-generation level in per-mille. Static models are
    /// always at full level (1000).
    #[must_use]
    pub fn vm_load_level(&self, marking: &Marking, vm: usize) -> u32 {
        match &self.dyn_vms {
            None => crate::util::FULL_LEVEL,
            Some(d) => marking.tokens(d[vm].load_level) as u32,
        }
    }

    /// Retires VM `vm` in `marking`: every member VCPU is scheduled out
    /// with its job state erased, the VM's join places are cleared, and
    /// the `admitted` token drops to 0 so the generators stay disabled and
    /// policies see `present = false`. `Last_Scheduled_In` and `generated`
    /// are deliberately kept — the direct engine keeps the same history
    /// across a retire/re-admit cycle.
    ///
    /// # Panics
    ///
    /// Panics if the layout is not dynamic.
    pub fn retire_vm(&self, marking: &mut Marking, vm: usize) {
        let d = self.dyn_vms.as_ref().expect("retire_vm on a static model")[vm];
        for g in 0..self.vcpus.len() {
            if self.vm_of(g) != vm {
                continue;
            }
            self.schedule_out(marking, g);
            let v = &self.vcpus[g];
            marking.set(v.remaining_load, 0);
            marking.set(v.sync_point, 0);
            marking.set(v.spinning, 0);
        }
        let p = &self.vms[vm];
        marking.set(p.blocked, 0);
        marking.set(p.ready_count, 0);
        marking.set(p.wl_pending, 0);
        marking.set(p.wl_load, 0);
        marking.set(p.wl_sync, 0);
        marking.set(p.lock_holder, 0);
        marking.set(d.admitted, 0);
    }

    /// Builds the [`PcpuView`] array from a marking.
    #[must_use]
    pub fn pcpu_views(&self, marking: &Marking, config: &SystemConfig) -> Vec<PcpuView> {
        self.pcpus
            .iter()
            .enumerate()
            .map(|(id, &place)| {
                let v = marking.tokens(place);
                PcpuView {
                    id,
                    assigned: (v > 0).then(|| config.vcpu_ids()[(v - 1) as usize]),
                }
            })
            .collect()
    }

    /// Schedules VCPU `g` out: INACTIVE, PCPU freed, ready count adjusted.
    pub fn schedule_out(&self, marking: &mut Marking, g: usize) {
        let v = &self.vcpus[g];
        let pcpu = marking.tokens(v.pcpu);
        if pcpu > 0 {
            marking.set(self.pcpus[(pcpu - 1) as usize], 0);
            marking.set(v.pcpu, 0);
        }
        if marking.tokens(v.status) == VcpuStatus::Ready.to_token() {
            let vm = self.vm_of(g);
            marking.add(self.vms[vm].ready_count, -1);
        }
        marking.set(v.status, VcpuStatus::Inactive.to_token());
        marking.set(v.timeslice, 0);
        // `spinning` is deliberately left alone: if the VCPU spun in this
        // tick's processing phase it burned its PCPU for the whole tick,
        // and the spin rate reward samples the end-of-tick marking —
        // clearing the flag here would erase the spin tick whenever the
        // spinner expires or is preempted in the same tick (the direct
        // engine counts that tick). `Processing_load` resets the flag at
        // the next tick for any non-BUSY VCPU, so it cannot go stale.
    }

    /// Applies a validated [`ScheduleDecision`] at tick `now`.
    pub fn apply_decision(&self, marking: &mut Marking, decision: &ScheduleDecision, now: i64) {
        for &g in &decision.preemptions {
            self.schedule_out(marking, g);
        }
        for a in &decision.assignments {
            let v = &self.vcpus[a.vcpu];
            marking.set(v.pcpu, a.pcpu as i64 + 1);
            marking.set(self.pcpus[a.pcpu], a.vcpu as i64 + 1);
            marking.set(v.timeslice, a.timeslice as i64);
            marking.set(v.last_in, now + 1);
            let status = if marking.tokens(v.remaining_load) > 0 {
                VcpuStatus::Busy
            } else {
                let vm = self.vm_of(a.vcpu);
                marking.add(self.vms[vm].ready_count, 1);
                VcpuStatus::Ready
            };
            marking.set(v.status, status.to_token());
        }
    }

    /// VM index of VCPU `g` (derived from the layout ordering).
    #[must_use]
    pub fn vm_of(&self, g: usize) -> usize {
        self.vm_of_table[g]
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        vcpus: Vec<VcpuPlaces>,
        pcpus: Vec<PlaceId>,
        vms: Vec<VmPlaces>,
        clock: PlaceId,
        halt: PlaceId,
        tick_expire: PlaceId,
        tick_sched: PlaceId,
        dyn_vms: Option<Vec<DynVmPlaces>>,
        vm_of_table: Vec<usize>,
    ) -> Self {
        Layout {
            vcpus,
            pcpus,
            vms,
            clock,
            halt,
            tick_expire,
            tick_sched,
            dyn_vms,
            vm_of_table,
        }
    }
}
