//! Compiles a [`SystemConfig`] + policy into a SAN model.
//!
//! The composed model mirrors the paper's structure:
//!
//! * **Figure 5 (Workload Generator)** → per-VM `WL_Generate` activity with
//!   the `WL_Output` gate sampling `load` and `sync_point` into the
//!   `Workload` buffer; enabled only when a VCPU is READY and the VM is
//!   not `Blocked`.
//! * **Figure 3 (Job Scheduler)** → per-VM `Scheduling` activity whose
//!   input conditions are the paper's "(i) there is a pending workload and
//!   (ii) there is at least one READY VCPU"; its gate moves the workload
//!   fields into the chosen `VCPU_slot`.
//! * **Figure 4 (VCPU)** → per-VCPU `Processing_load` activity decrementing
//!   `remaining_load` on each Clock tick; completion flips the status to
//!   READY and increments `Num_VCPUs_ready`.
//! * **Figure 6 (VCPU Scheduler)** → the `Clock` timed activity (period 1),
//!   the `Timeslice` bookkeeping activity, and the `Scheduling_Func` gate
//!   that calls the user-defined policy over the full VCPU/PCPU state —
//!   the paper's C-function interface, as a Rust closure.
//! * **Figure 7 / Tables 1–2 (composition)** → all of the above are built
//!   into one flattened model whose shared places (`Blocked`,
//!   `Num_VCPUs_ready`, `VCPUx_slot`, `Schedule_In/Out` ≙ the `pcpu`
//!   assignment fields) are the join places.
//!
//! Intra-tick ordering is enforced by instantaneous-activity priorities:
//! `Processing_load` (50) → `Unblock` (40) → `Timeslice` (30) →
//! `Scheduling_Func` (20) → `WL_Generate` (12) → `Scheduling` (10) →
//! `End_Tick` (1).

use std::sync::{Arc, Mutex};

use vsched_des::Dist;
use vsched_san::{Model, ModelBuilder, PlaceId, SanError};

use crate::config::{SyncMechanism, SystemConfig};
use crate::error::CoreError;
use crate::san_model::layout::{DynVmPlaces, Layout, VcpuPlaces, VmPlaces};
use crate::sched::{validate_decision, SchedulingPolicy};
use crate::types::VcpuStatus;
use crate::util::{duty_allows, sample_ticks, FULL_LEVEL};

/// Intra-tick phase priorities (higher completes first).
pub(crate) mod priority {
    /// `Processing_load` — BUSY VCPUs advance their jobs.
    pub const PROCESS: i32 = 50;
    /// `Unblock` — barriers whose jobs completed clear.
    pub const UNBLOCK: i32 = 40;
    /// `Timeslice` — slice bookkeeping and expiry.
    pub const EXPIRE: i32 = 30;
    /// `Scheduling_Func` — the pluggable policy runs.
    pub const SCHED: i32 = 20;
    /// `WL_Generate` — workload generation into the buffer.
    pub const GENERATE: i32 = 12;
    /// `Scheduling` (job scheduler) — dispatch to READY VCPUs.
    pub const DISPATCH: i32 = 10;
    /// `End_Tick` — the dispatch window closes.
    pub const END_TICK: i32 = 1;
}

/// Error slot shared between the `Scheduling_Func` gate and [`super::SanSystem`].
pub(crate) type ErrorCell = Arc<Mutex<Option<CoreError>>>;

/// Shared handle on the policy captured inside the `Scheduling_Func` gate.
/// The exhaustive-state verifier uses it to snapshot/restore the policy's
/// hidden state (cursors, credits, skew counters) between probe firings;
/// the lock is uncontended for the same reason as inside the gate.
pub type PolicyHandle = Arc<Mutex<Box<dyn SchedulingPolicy>>>;

/// Builds the flattened composed model. Returns the model, its place
/// layout, and the shared error cell for policy violations.
///
/// With `dynamic` set the model additionally carries per-VM `admitted`
/// (init 1) and `load_level` (init 1000, per-mille) places — appended
/// *after* every static place so static place ids are unchanged — and the
/// workload generators are gated/scaled by them. At the identity marking
/// (all admitted, full level) the dynamic model is bit-identical to the
/// static one: the extra guard terms are tautologies, the rate multiplier
/// is exactly 1.0, and no activity indices or RNG stream assignments move.
pub(crate) fn build_model(
    config: &SystemConfig,
    policy: Box<dyn SchedulingPolicy>,
    dynamic: bool,
) -> Result<(Model, Layout, ErrorCell, PolicyHandle), SanError> {
    let mut mb = ModelBuilder::new();

    // ----- Places ---------------------------------------------------------
    let clock = mb.place("clock", 0)?;
    let halt = mb.place("halt", 0)?;
    let tick_expire = mb.place("tick_expire", 0)?;
    let tick_sched = mb.place("tick_sched", 0)?;

    let mut vcpu_places = Vec::new();
    let mut vm_places = Vec::new();
    let mut vm_of_table = Vec::new();
    for (k, vm) in config.vms().iter().enumerate() {
        let places = mb.scope(&format!("vm{k}"), |mb| {
            Ok(VmPlaces {
                blocked: mb.place("Blocked", 0)?,
                ready_count: mb.place("Num_VCPUs_ready", 0)?,
                wl_pending: mb.place("Workload.pending", 0)?,
                wl_load: mb.place("Workload.load", 0)?,
                wl_sync: mb.place("Workload.sync_point", 0)?,
                window: mb.place("window", 0)?,
                tick_unblock: mb.place("tick_unblock", 0)?,
                lock_holder: mb.place("lock_holder", 0)?,
                generated: mb.place("generated", 0)?,
            })
        })?;
        vm_places.push(places);
        for j in 0..vm.vcpus {
            let vp = mb.scope(&format!("vm{k}"), |mb| {
                mb.scope(&format!("vcpu{j}"), |mb| {
                    Ok(VcpuPlaces {
                        status: mb.place("slot.status", 0)?,
                        remaining_load: mb.place("slot.remaining_load", 0)?,
                        sync_point: mb.place("slot.sync_point", 0)?,
                        timeslice: mb.place("Timeslice", 0)?,
                        last_in: mb.place("Last_Scheduled_In", 0)?,
                        pcpu: mb.place("Schedule_In", 0)?,
                        tick: mb.place("tick", 0)?,
                        spinning: mb.place("spinning", 0)?,
                    })
                })
            })?;
            vcpu_places.push(vp);
            vm_of_table.push(k);
        }
    }
    let pcpu_places: Vec<PlaceId> = (0..config.pcpus())
        .map(|p| mb.place(&format!("pcpu{p}.assigned"), 0))
        .collect::<Result<_, _>>()?;

    // Membership places come last so every static place id is unchanged.
    let dyn_vms: Option<Vec<DynVmPlaces>> = if dynamic {
        let mut d = Vec::with_capacity(config.vms().len());
        for k in 0..config.vms().len() {
            d.push(DynVmPlaces {
                admitted: mb.place(&format!("vm{k}.admitted"), 1)?,
                load_level: mb.place(&format!("vm{k}.load_level"), i64::from(FULL_LEVEL))?,
            });
        }
        Some(d)
    } else {
        None
    };

    let layout = Layout::new(
        vcpu_places,
        pcpu_places,
        vm_places,
        clock,
        halt,
        tick_expire,
        tick_sched,
        dyn_vms,
        vm_of_table,
    );

    // ----- Clock (Figure 6): period-1 timed activity ----------------------
    {
        let mut clock_act = mb
            .activity("Clock")?
            .timed(Dist::Deterministic { value: 1.0 })
            .guard("not_halted", move |m| m.tokens(halt) == 0)
            .reads([halt])
            .output_arc(clock, 1)
            .output_arc(tick_expire, 1)
            .output_arc(tick_sched, 1);
        for v in &layout.vcpus {
            clock_act = clock_act.output_arc(v.tick, 1);
        }
        for vm in &layout.vms {
            clock_act = clock_act
                .output_arc(vm.tick_unblock, 1)
                .output_arc(vm.window, 1);
        }
        clock_act.done()?;
    }

    // ----- Processing_load (Figure 4), one per VCPU ------------------------
    //
    // Per-VCPU instantaneous activities at equal priority complete in
    // activity-declaration (= global VCPU index) order, so spinlock
    // hand-off within a tick is index-ordered — identical to the direct
    // engine's phase-1 loop.
    for (g, v) in layout.vcpus.iter().copied().enumerate() {
        let vm = layout.vms[layout.vm_of(g)];
        let mechanism = config.vms()[layout.vm_of(g)].workload.sync_mechanism;
        mb.scope(&format!("vm{}", layout.vm_of(g)), |mb| {
            mb.scope(&format!("vcpu{}", config.vcpu_ids()[g].sibling), |mb| {
                mb.activity("Processing_load")?
                    .instantaneous(priority::PROCESS)
                    .input_arc(v.tick, 1)
                    .output_gate("process", move |m, _| {
                        if m.tokens(v.status) != VcpuStatus::Busy.to_token() {
                            m.set(v.spinning, 0);
                            return;
                        }
                        // Spinlock extension: a critical-section job must
                        // hold the VM lock to make progress.
                        if mechanism == SyncMechanism::SpinLock && m.tokens(v.sync_point) == 1 {
                            let me = g as i64 + 1;
                            let holder = m.tokens(vm.lock_holder);
                            if holder == 0 {
                                m.set(vm.lock_holder, me); // acquire
                            } else if holder != me {
                                m.set(v.spinning, 1); // spin, no progress
                                return;
                            }
                        }
                        m.set(v.spinning, 0);
                        m.add(v.remaining_load, -1);
                        if m.tokens(v.remaining_load) == 0 {
                            if mechanism == SyncMechanism::SpinLock
                                && m.tokens(v.sync_point) == 1
                                && m.tokens(vm.lock_holder) == g as i64 + 1
                            {
                                m.set(vm.lock_holder, 0); // release
                            }
                            m.set(v.status, VcpuStatus::Ready.to_token());
                            m.set(v.sync_point, 0);
                            m.add(vm.ready_count, 1);
                        }
                    })
                    .reads([v.status, v.sync_point, v.remaining_load, vm.lock_holder])
                    .writes([
                        v.spinning,
                        v.remaining_load,
                        v.status,
                        v.sync_point,
                        vm.lock_holder,
                        vm.ready_count,
                    ])
                    .done()
            })
        })?;
    }

    // ----- Unblock (barrier clearing), one per VM --------------------------
    for (k, vm) in layout.vms.iter().copied().enumerate() {
        let members: Vec<_> = layout
            .vcpus
            .iter()
            .copied()
            .enumerate()
            .filter(|&(g, _)| layout.vm_of(g) == k)
            .map(|(_, v)| v)
            .collect();
        let clear_reads: Vec<PlaceId> = std::iter::once(vm.blocked)
            .chain(members.iter().map(|v| v.remaining_load))
            .collect();
        mb.scope(&format!("vm{k}"), |mb| {
            mb.activity("Unblock")?
                .instantaneous(priority::UNBLOCK)
                .input_arc(vm.tick_unblock, 1)
                .output_gate("clear_barrier", move |m, _| {
                    if m.tokens(vm.blocked) == 1
                        && members.iter().all(|v| m.tokens(v.remaining_load) == 0)
                    {
                        m.set(vm.blocked, 0);
                    }
                })
                .reads(clear_reads)
                .writes([vm.blocked])
                .done()
        })?;
    }

    // ----- Timeslice bookkeeping (Figure 6) --------------------------------
    {
        let l = layout.clone();
        mb.activity("Timeslice")?
            .instantaneous(priority::EXPIRE)
            .input_arc(tick_expire, 1)
            .output_gate("expire", move |m, _| {
                for (g, v) in l.vcpus.iter().enumerate() {
                    if VcpuStatus::from_token(m.tokens(v.status)).is_active() {
                        m.add(v.timeslice, -1);
                        if m.tokens(v.timeslice) == 0 {
                            l.schedule_out(m, g);
                        }
                    }
                }
            })
            .done()?;
    }

    // ----- Scheduling_Func (Figure 6): the pluggable policy ----------------
    let error_cell: ErrorCell = Arc::new(Mutex::new(None));
    let policy_handle: PolicyHandle = Arc::new(Mutex::new(policy));
    {
        let l = layout.clone();
        let cfg = config.clone();
        let cell = Arc::clone(&error_cell);
        // Gate closures are `Fn`; the stateful policy lives behind a lock
        // (uncontended: `Scheduling_Func` is global, never fired on a
        // worker thread). The handle is shared with the caller so the
        // verifier can snapshot/restore the policy between probe firings.
        let policy = Arc::clone(&policy_handle);
        mb.activity("Scheduling_Func")?
            .instantaneous(priority::SCHED)
            .input_arc(tick_sched, 1)
            .guard("not_halted", move |m| m.tokens(halt) == 0)
            .reads([halt])
            .output_gate("schedule", move |m, _| {
                let vcpus = l.vcpu_views(m, &cfg);
                let pcpus = l.pcpu_views(m, &cfg);
                let now = m.tokens(l.clock);
                let mut policy = policy.lock().expect("policy lock");
                let decision = policy.schedule(&vcpus, &pcpus, now as u64, cfg.timeslice());
                match validate_decision(policy.name(), &vcpus, &pcpus, &decision) {
                    Ok(()) => l.apply_decision(m, &decision, now),
                    Err(e) => {
                        *cell.lock().expect("error cell") = Some(e);
                        m.set(l.halt, 1);
                    }
                }
            })
            .done()?;
    }

    // ----- Workload Generator (Figure 5) + Job Scheduler (Figure 3) -------
    for (k, vm) in layout.vms.iter().copied().enumerate() {
        let spec = config.vms()[k].workload.clone();
        let mechanism = spec.sync_mechanism;
        let dvm = layout.dyn_vms.as_ref().map(|d| d[k]);
        mb.scope(&format!("vm{k}"), |mb| {
            match spec.interarrival.clone() {
                None => {
                    // Saturated generator: a new workload materializes
                    // whenever the buffer is free, a VCPU is READY, and the
                    // VM is not blocked — the paper's Figure 5 conditions.
                    let load_dist = spec.load.clone();
                    let sync_p = spec.sync_probability;
                    let sync_every = spec.sync_every;
                    let mut gen = mb
                        .activity("WL_Generate")?
                        .instantaneous(priority::GENERATE)
                        .guard("can_generate", move |m| {
                            m.tokens(halt) == 0
                                && m.tokens(vm.wl_pending) == 0
                                && m.tokens(vm.blocked) == 0
                                && m.tokens(vm.ready_count) > 0
                                && m.tokens(vm.window) > 0
                        })
                        .reads([halt, vm.wl_pending, vm.blocked, vm.ready_count, vm.window]);
                    if let Some(d) = dvm {
                        // Trace frontend: generation is admission-gated and
                        // duty-cycled by the per-mille load level. At the
                        // identity marking (admitted, level 1000) this
                        // guard is a tautology for every tick >= 1 — the
                        // only ticks the window token permits — so the
                        // degenerate trace stays bit-identical to the
                        // static model.
                        gen = gen
                            .guard("trace_duty", move |m| {
                                m.tokens(d.admitted) == 1 && {
                                    let t = m.tokens(clock);
                                    t >= 1 && duty_allows(t as u64, m.tokens(d.load_level) as u32)
                                }
                            })
                            .reads([d.admitted, d.load_level, clock]);
                    }
                    gen.output_gate("WL_Output", move |m, rng| {
                        let load = sample_ticks(&load_dist, rng) as i64;
                        m.add(vm.generated, 1);
                        let sync = match sync_every {
                            Some(k) => i64::from(m.tokens(vm.generated) % i64::from(k) == 0),
                            None => i64::from(rng.next_bool(sync_p)),
                        };
                        m.set(vm.wl_load, load);
                        m.set(vm.wl_sync, sync);
                        m.set(vm.wl_pending, 1);
                    })
                    .reads([vm.generated])
                    .writes([vm.generated, vm.wl_load, vm.wl_sync, vm.wl_pending])
                    .done()?;
                }
                Some(inter) => {
                    // Rate-limited generator: arrivals accumulate in the
                    // buffer as a counter; fields are sampled at dispatch.
                    let mut gen = mb
                        .activity("WL_Generate")?
                        .timed(inter)
                        .guard("not_halted", move |m| m.tokens(halt) == 0)
                        .reads([halt]);
                    if let Some(d) = dvm {
                        // Trace frontend: interarrival times stretch by
                        // 1000/level. Level 0 drives the multiplier to 0,
                        // which *disables* the activity (the pending
                        // arrival aborts; resuming resamples anchored at
                        // the current instant). At level 1000 the
                        // multiplier is exactly 1.0 and `base / 1.0` is
                        // bit-exact, so the degenerate trace changes
                        // nothing.
                        gen = gen
                            .guard("admitted", move |m| m.tokens(d.admitted) == 1)
                            .reads([d.admitted])
                            .rate_multiplier(move |m| m.tokens(d.load_level) as f64 / 1000.0)
                            .reads([d.load_level]);
                    }
                    gen.output_arc(vm.wl_pending, 1).done()?;
                }
            }

            // Job Scheduler: dispatch one buffered workload to the lowest
            // READY sibling; fires repeatedly within the tick window until
            // the buffer or the READY set drains.
            let members: Vec<_> = layout
                .vcpus
                .iter()
                .copied()
                .enumerate()
                .filter(|&(g, _)| layout.vm_of(g) == k)
                .map(|(_, v)| v)
                .collect();
            let members_gate = members.clone();
            let dispatch_reads: Vec<PlaceId> =
                [halt, vm.wl_pending, vm.blocked, vm.ready_count, vm.window]
                    .into_iter()
                    .chain(members.iter().map(|v| v.status))
                    .collect();
            let load_dist = spec.load.clone();
            let sync_p = spec.sync_probability;
            let sync_every = spec.sync_every;
            let sample_at_dispatch = spec.interarrival.is_some();
            // Declared for analysis; `Scheduling` still takes the
            // sequential path (its `ready_count` write can enable the
            // higher-priority `WL_Generate`, so shard derivation demotes
            // it).
            let dispatch_gate_reads: Vec<PlaceId> = [vm.generated, vm.wl_load, vm.wl_sync]
                .into_iter()
                .chain(members.iter().map(|v| v.status))
                .collect();
            let dispatch_writes: Vec<PlaceId> =
                [vm.generated, vm.ready_count, vm.wl_pending, vm.blocked]
                    .into_iter()
                    .chain(
                        members
                            .iter()
                            .flat_map(|v| [v.remaining_load, v.sync_point, v.status]),
                    )
                    .collect();
            mb.activity("Scheduling")?
                .instantaneous(priority::DISPATCH)
                .guard("can_dispatch", move |m| {
                    m.tokens(halt) == 0
                        && m.tokens(vm.wl_pending) > 0
                        && m.tokens(vm.blocked) == 0
                        && m.tokens(vm.ready_count) > 0
                        && m.tokens(vm.window) > 0
                        && members_gate
                            .iter()
                            .any(|v| m.tokens(v.status) == VcpuStatus::Ready.to_token())
                })
                .reads(dispatch_reads)
                .output_gate("dispatch", move |m, rng| {
                    let Some(v) = members
                        .iter()
                        .find(|v| m.tokens(v.status) == VcpuStatus::Ready.to_token())
                    else {
                        return;
                    };
                    let (load, sync) = if sample_at_dispatch {
                        m.add(vm.generated, 1);
                        let sync = match sync_every {
                            Some(k) => i64::from(m.tokens(vm.generated) % i64::from(k) == 0),
                            None => i64::from(rng.next_bool(sync_p)),
                        };
                        (sample_ticks(&load_dist, rng) as i64, sync)
                    } else {
                        (m.tokens(vm.wl_load), m.tokens(vm.wl_sync))
                    };
                    m.set(v.remaining_load, load);
                    m.set(v.sync_point, sync);
                    m.set(v.status, VcpuStatus::Busy.to_token());
                    m.add(vm.ready_count, -1);
                    m.add(vm.wl_pending, -1);
                    if sync == 1 && mechanism == SyncMechanism::Barrier {
                        m.set(vm.blocked, 1);
                    }
                })
                .reads(dispatch_gate_reads)
                .writes(dispatch_writes)
                .done()?;

            // The dispatch window closes at the end of the tick instant.
            mb.activity("End_Tick")?
                .instantaneous(priority::END_TICK)
                .input_arc(vm.window, 1)
                .done()?;
            Ok(())
        })?;
    }

    let model = mb.build()?;
    Ok((model, layout, error_cell, policy_handle))
}
