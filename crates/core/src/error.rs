//! Error type for the framework.

use std::error::Error;
use std::fmt;

/// Errors from configuring or running a virtualization-system simulation.
#[derive(Debug)]
pub enum CoreError {
    /// The system configuration is invalid (e.g. no PCPUs, a VM with zero
    /// VCPUs, or more VCPUs in one VM than PCPUs — the paper requires "at
    /// most the same number of VCPUs as the number of physical cores").
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
    /// A scheduling policy produced an inconsistent decision; the message
    /// names the policy and the violated invariant.
    PolicyViolation {
        /// Policy name.
        policy: String,
        /// Violated invariant.
        reason: String,
    },
    /// A runtime invariant checker (see [`crate::observe`]) observed an
    /// illegal system state; the message names the invariant from the
    /// checker's catalogue and the tick where it broke.
    InvariantViolation {
        /// Name of the violated invariant (e.g. `gang-atomicity`).
        invariant: String,
        /// Tick at which the violation was observed.
        tick: u64,
        /// What was observed.
        reason: String,
    },
    /// Error bubbled up from the SAN engine.
    San(vsched_san::SanError),
    /// Error bubbled up from the statistics layer.
    Stats(vsched_stats::StatsError),
    /// Error bubbled up from the DES kernel (invalid distribution).
    Des(vsched_des::DesError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
            CoreError::PolicyViolation { policy, reason } => {
                write!(
                    f,
                    "scheduling policy `{policy}` violated an invariant: {reason}"
                )
            }
            CoreError::InvariantViolation {
                invariant,
                tick,
                reason,
            } => {
                write!(
                    f,
                    "invariant `{invariant}` violated at tick {tick}: {reason}"
                )
            }
            CoreError::San(e) => write!(f, "SAN engine error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Des(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::San(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Des(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vsched_san::SanError> for CoreError {
    fn from(e: vsched_san::SanError) -> Self {
        CoreError::San(e)
    }
}

impl From<vsched_stats::StatsError> for CoreError {
    fn from(e: vsched_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<vsched_des::DesError> for CoreError {
    fn from(e: vsched_des::DesError) -> Self {
        CoreError::Des(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            reason: "no PCPUs".into(),
        };
        assert!(e.to_string().contains("no PCPUs"));
        assert!(e.source().is_none());

        let e = CoreError::InvariantViolation {
            invariant: "clock-monotonic".into(),
            tick: 42,
            reason: "went backwards".into(),
        };
        assert!(e.to_string().contains("clock-monotonic"));
        assert!(e.to_string().contains("tick 42"));
        assert!(e.source().is_none());

        let e: CoreError = vsched_san::SanError::UnknownPlace { name: "p".into() }.into();
        assert!(e.source().is_some());

        let e: CoreError = vsched_stats::StatsError::NotEnoughData { have: 0, need: 2 }.into();
        assert!(e.to_string().contains("statistics"));

        let e: CoreError = vsched_des::DesError::InvalidDistribution {
            family: "uniform",
            reason: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("kernel"));
    }
}
