//! The experiment runner: replicated simulations with Mobius-style
//! confidence-interval termination, over either engine.

use vsched_san::ShardMode;
use vsched_stats::{ConfidenceInterval, StoppingRule};

use crate::config::SystemConfig;
use crate::direct::DirectSim;
use crate::error::CoreError;
use crate::metrics::{MetricsReport, SampleMetrics};
use crate::san_model::SanSystem;
use crate::sched::PolicyKind;

/// Which engine executes the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The faithful SAN engine ([`crate::san_model::SanSystem`]) — what the
    /// paper runs on Mobius. Default.
    San,
    /// The fast time-stepped engine ([`crate::direct::DirectSim`]) with
    /// identical semantics; use for large sweeps.
    Direct,
}

/// Configures and runs a replicated experiment.
///
/// Defaults follow the paper: 95% confidence with interval width under 0.1
/// (half-width 0.05) on **every** metric, at least 5 and at most 40
/// replications, 1 000 warm-up ticks and 20 000 observed ticks per
/// replication. See the crate-level example.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    config: SystemConfig,
    policy: PolicyKind,
    engine: Engine,
    warmup: u64,
    horizon: u64,
    seed: u64,
    rule: StoppingRule,
    exact_replications: Option<usize>,
    parallel: bool,
    jobs: Option<usize>,
    shard_mode: ShardMode,
}

impl ExperimentBuilder {
    /// Starts an experiment over `config` with `policy`.
    #[must_use]
    pub fn new(config: SystemConfig, policy: PolicyKind) -> Self {
        ExperimentBuilder {
            config,
            policy,
            engine: Engine::San,
            warmup: 1_000,
            horizon: 20_000,
            seed: 0x5eed,
            rule: StoppingRule::paper_default()
                .with_min_replications(5)
                .with_max_replications(40),
            exact_replications: None,
            parallel: true,
            jobs: None,
            shard_mode: ShardMode::Off,
        }
    }

    /// Selects the execution engine (default [`Engine::San`]).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Warm-up ticks discarded at the start of each replication.
    #[must_use]
    pub fn warmup(mut self, ticks: u64) -> Self {
        self.warmup = ticks;
        self
    }

    /// Observed ticks per replication.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Base seed; replication `r` uses `seed + r`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the confidence-interval stopping rule.
    #[must_use]
    pub fn stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Runs exactly `n` replications instead of a stopping rule (`n ≥ 2`).
    #[must_use]
    pub fn replications_exact(mut self, n: usize) -> Self {
        self.exact_replications = Some(n);
        self
    }

    /// Enables/disables parallel replications (default enabled). Results
    /// are bit-identical either way: replications are merged in index
    /// order, so threading never changes the statistics.
    #[must_use]
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Intra-replication sharding of the SAN engine (default
    /// [`ShardMode::Off`]). A pure wall-clock knob: sharded execution is
    /// bit-identical to sequential by contract, so any mode yields the
    /// same statistics. Ignored by [`Engine::Direct`], which has no
    /// sharded path.
    #[must_use]
    pub fn shard_mode(mut self, mode: ShardMode) -> Self {
        self.shard_mode = mode;
        self
    }

    /// Caps the replication worker pool at `jobs` threads. `0` restores
    /// the default (one worker per available core). Any value yields
    /// bit-identical results; this knob only trades wall-clock time for
    /// CPU occupancy.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { None } else { Some(jobs) };
        self
    }

    /// The worker count [`ExperimentBuilder::run`] will use.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        if self.parallel {
            vsched_exec::resolve_jobs(self.jobs)
        } else {
            1
        }
    }

    /// Runs one replication with the given index and returns its metrics.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (policy violations, SAN failures).
    pub fn run_replication(&self, rep: u64) -> Result<SampleMetrics, CoreError> {
        let seed = self.seed.wrapping_add(rep);
        match self.engine {
            Engine::Direct => {
                let mut sim = DirectSim::new(self.config.clone(), self.policy.create(), seed);
                sim.run(self.warmup)?;
                sim.reset_metrics();
                sim.run(self.horizon)?;
                Ok(sim.metrics())
            }
            Engine::San => {
                let mut sys = SanSystem::new(self.config.clone(), self.policy.create(), seed)?;
                if self.shard_mode != ShardMode::Off {
                    sys.set_shard_mode(self.shard_mode);
                }
                sys.run(self.warmup)?;
                sys.reset_metrics();
                sys.run(self.horizon)?;
                Ok(sys.metrics())
            }
        }
    }

    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] for an exact replication count < 2;
    /// * engine errors from any replication.
    pub fn run(&self) -> Result<MetricsReport, CoreError> {
        match self.exact_replications {
            Some(n) => self.run_exact(n),
            None => self.run_until_converged(),
        }
    }

    fn run_exact(&self, n: usize) -> Result<MetricsReport, CoreError> {
        if n < 2 {
            return Err(CoreError::InvalidConfig {
                reason: format!("need at least 2 replications for confidence intervals, got {n}"),
            });
        }
        let samples: Vec<SampleMetrics> =
            vsched_exec::run_indexed(self.effective_jobs(), 0, n, |rep| self.run_replication(rep))?;
        let arity = samples[0].to_observations().len();
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n); arity];
        for s in &samples {
            for (c, x) in columns.iter_mut().zip(s.to_observations()) {
                c.push(x);
            }
        }
        let intervals: Vec<ConfidenceInterval> = columns
            .iter()
            .map(|c| ConfidenceInterval::from_samples(c, self.rule.level))
            .collect::<Result<_, _>>()?;
        Ok(MetricsReport::from_intervals(
            intervals,
            self.config.total_vcpus(),
            self.config.pcpus(),
            n,
        ))
    }

    fn run_until_converged(&self) -> Result<MetricsReport, CoreError> {
        let (controller, _samples) = vsched_exec::run_converged(
            self.effective_jobs(),
            self.rule,
            |rep| self.run_replication(rep),
            SampleMetrics::to_observations,
        )?;
        Ok(MetricsReport::from_intervals(
            controller.intervals()?,
            self.config.total_vcpus(),
            self.config.pcpus(),
            controller.replications(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SystemConfig {
        SystemConfig::builder()
            .pcpus(2)
            .vm(2)
            .vm(1)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_replications_direct_parallel() {
        let report = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .warmup(200)
            .horizon(2_000)
            .replications_exact(4)
            .run()
            .unwrap();
        assert_eq!(report.replications, 4);
        assert_eq!(report.vcpu_availability.len(), 3);
        assert_eq!(report.pcpu_utilization.len(), 2);
        // 3 VCPUs on 2 PCPUs, saturated: both PCPUs near full.
        assert!(report.avg_pcpu_utilization() > 0.95);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let base = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .warmup(100)
            .horizon(1_000)
            .replications_exact(3);
        let par = base.clone().parallel(true).run().unwrap();
        let seq = base.parallel(false).run().unwrap();
        assert_eq!(
            par.vcpu_availability_means(),
            seq.vcpu_availability_means(),
            "same seeds, same results, regardless of threading"
        );
    }

    #[test]
    fn stopping_rule_converges() {
        let rule = StoppingRule::new(0.95, 0.05)
            .with_min_replications(3)
            .with_max_replications(20);
        let report = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .warmup(200)
            .horizon(4_000)
            .stopping_rule(rule)
            .run()
            .unwrap();
        assert!(report.replications >= 3);
        assert!(report.replications <= 20);
        for ci in &report.vcpu_availability {
            assert!(ci.half_width <= 0.05 || report.replications == 20);
        }
    }

    #[test]
    fn exact_needs_two() {
        let err = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .replications_exact(1)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn san_engine_small_run() {
        let report = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::San)
            .warmup(100)
            .horizon(1_000)
            .replications_exact(2)
            .run()
            .unwrap();
        assert_eq!(report.replications, 2);
        assert!(report.avg_pcpu_utilization() > 0.9);
    }

    #[test]
    fn shard_mode_never_changes_statistics() {
        let base = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::San)
            .warmup(100)
            .horizon(1_000)
            .replications_exact(2)
            .parallel(false);
        let sequential = base.clone().run().unwrap();
        for mode in [ShardMode::Fixed(2), ShardMode::Fixed(4), ShardMode::Auto] {
            let sharded = base.clone().shard_mode(mode).run().unwrap();
            assert_eq!(
                sequential.vcpu_availability_means(),
                sharded.vcpu_availability_means(),
                "{mode:?} must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn seeds_change_results() {
        let base = ExperimentBuilder::new(small_config(), PolicyKind::RoundRobin)
            .engine(Engine::Direct)
            .warmup(100)
            .horizon(1_000);
        let a = base.clone().seed(1).run_replication(0).unwrap();
        let b = base.seed(2).run_replication(0).unwrap();
        assert_ne!(a, b);
    }
}
