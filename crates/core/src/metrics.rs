//! The paper's three reward variables and their reporting types.

use serde::{Deserialize, Serialize};
use vsched_stats::ConfidenceInterval;

/// Metrics from **one** simulation run (one replication).
///
/// All values are fractions in `[0, 1]`:
///
/// * `vcpu_availability[v]` — fraction of observed time VCPU `v` was
///   ACTIVE (READY or BUSY); the paper's fairness metric (Figure 8).
/// * `vcpu_utilization[v]` — fraction of VCPU `v`'s *scheduled* time spent
///   BUSY, i.e. `BUSY / (BUSY + READY)`; the synchronization-latency
///   metric (Figure 10). The paper's reward variable "monitors the READY
///   and BUSY states" — READY-while-scheduled is precisely the
///   synchronization wait this metric exposes. (The un-normalized BUSY
///   fraction of total time is `availability × utilization`.)
/// * `pcpu_utilization[p]` — fraction of observed time PCPU `p` was
///   ASSIGNED; the fragmentation metric (Figure 9).
/// * `vcpu_spin[v]` — fraction of VCPU `v`'s scheduled time spent
///   *spinning* on a held lock (always zero under the paper's barrier
///   synchronization; nonzero only with the
///   [`crate::config::SyncMechanism::SpinLock`] extension). Spinning time
///   is excluded from `vcpu_utilization` — a spinning VCPU burns its PCPU
///   without making progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleMetrics {
    /// Per-VCPU ACTIVE fraction, indexed by global VCPU id.
    pub vcpu_availability: Vec<f64>,
    /// Per-VCPU useful-BUSY fraction of scheduled time.
    pub vcpu_utilization: Vec<f64>,
    /// Per-PCPU ASSIGNED fraction, indexed by PCPU id.
    pub pcpu_utilization: Vec<f64>,
    /// Per-VCPU spinning fraction of scheduled time (spinlock extension).
    pub vcpu_spin: Vec<f64>,
}

impl SampleMetrics {
    /// Average VCPU availability across all VCPUs.
    #[must_use]
    pub fn avg_vcpu_availability(&self) -> f64 {
        mean(&self.vcpu_availability)
    }

    /// Average VCPU utilization across all VCPUs (Figure 10's y-axis).
    #[must_use]
    pub fn avg_vcpu_utilization(&self) -> f64 {
        mean(&self.vcpu_utilization)
    }

    /// Average PCPU utilization across all PCPUs (Figure 9's y-axis).
    #[must_use]
    pub fn avg_pcpu_utilization(&self) -> f64 {
        mean(&self.pcpu_utilization)
    }

    /// Average spin fraction across all VCPUs.
    #[must_use]
    pub fn avg_vcpu_spin(&self) -> f64 {
        mean(&self.vcpu_spin)
    }

    /// Flattens into the observation vector recorded per replication:
    /// `[avail_0..avail_V, util_0..util_V, spin_0..spin_V, putil_0..putil_P]`.
    #[must_use]
    pub fn to_observations(&self) -> Vec<f64> {
        let mut obs = Vec::with_capacity(observation_arity(
            self.vcpu_availability.len(),
            self.pcpu_utilization.len(),
        ));
        obs.extend_from_slice(&self.vcpu_availability);
        obs.extend_from_slice(&self.vcpu_utilization);
        obs.extend_from_slice(&self.vcpu_spin);
        obs.extend_from_slice(&self.pcpu_utilization);
        obs
    }
}

/// Length of the per-replication observation vector for a system with
/// `num_vcpus` VCPUs and `num_pcpus` PCPUs.
#[must_use]
pub const fn observation_arity(num_vcpus: usize, num_pcpus: usize) -> usize {
    3 * num_vcpus + num_pcpus
}

impl SampleMetrics {
    /// Mean availability of each **VM** (averaged over its VCPUs), using
    /// the topology in `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not match the metrics' VCPU count.
    #[must_use]
    pub fn vm_availability(&self, config: &crate::SystemConfig) -> Vec<f64> {
        group_by_vm(&self.vcpu_availability, config)
    }

    /// Mean utilization of each **VM** (averaged over its VCPUs).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not match the metrics' VCPU count.
    #[must_use]
    pub fn vm_utilization(&self, config: &crate::SystemConfig) -> Vec<f64> {
        group_by_vm(&self.vcpu_utilization, config)
    }
}

fn group_by_vm(per_vcpu: &[f64], config: &crate::SystemConfig) -> Vec<f64> {
    assert_eq!(
        per_vcpu.len(),
        config.total_vcpus(),
        "metrics do not match the configuration's VCPU count"
    );
    let mut sums = vec![0.0; config.vms().len()];
    let mut counts = vec![0usize; config.vms().len()];
    for (x, id) in per_vcpu.iter().zip(config.vcpu_ids()) {
        sums[id.vm] += x;
        counts[id.vm] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Aggregated experiment output: confidence intervals for every metric,
/// over all replications.
///
/// Serializes losslessly (shortest-round-trip float text), which the
/// campaign result store relies on: a report loaded from disk is
/// bit-identical to the freshly computed one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-VCPU availability intervals, indexed by global VCPU id.
    pub vcpu_availability: Vec<ConfidenceInterval>,
    /// Per-VCPU utilization intervals.
    pub vcpu_utilization: Vec<ConfidenceInterval>,
    /// Per-PCPU utilization intervals.
    pub pcpu_utilization: Vec<ConfidenceInterval>,
    /// Per-VCPU spin-fraction intervals (spinlock extension).
    pub vcpu_spin: Vec<ConfidenceInterval>,
    /// Number of replications run.
    pub replications: usize,
}

impl MetricsReport {
    /// Splits a flat interval vector (in [`SampleMetrics::to_observations`]
    /// order) back into the three metric groups.
    ///
    /// # Panics
    ///
    /// Panics if `intervals.len() != observation_arity(num_vcpus, num_pcpus)`.
    #[must_use]
    pub fn from_intervals(
        intervals: Vec<ConfidenceInterval>,
        num_vcpus: usize,
        num_pcpus: usize,
        replications: usize,
    ) -> Self {
        assert_eq!(
            intervals.len(),
            observation_arity(num_vcpus, num_pcpus),
            "interval vector has wrong arity"
        );
        let mut it = intervals.into_iter();
        let vcpu_availability: Vec<_> = it.by_ref().take(num_vcpus).collect();
        let vcpu_utilization: Vec<_> = it.by_ref().take(num_vcpus).collect();
        let vcpu_spin: Vec<_> = it.by_ref().take(num_vcpus).collect();
        let pcpu_utilization: Vec<_> = it.collect();
        MetricsReport {
            vcpu_availability,
            vcpu_utilization,
            pcpu_utilization,
            vcpu_spin,
            replications,
        }
    }

    /// Mean availability of each VCPU.
    #[must_use]
    pub fn vcpu_availability_means(&self) -> Vec<f64> {
        self.vcpu_availability.iter().map(|ci| ci.mean).collect()
    }

    /// Mean utilization of each VCPU.
    #[must_use]
    pub fn vcpu_utilization_means(&self) -> Vec<f64> {
        self.vcpu_utilization.iter().map(|ci| ci.mean).collect()
    }

    /// Mean utilization of each PCPU.
    #[must_use]
    pub fn pcpu_utilization_means(&self) -> Vec<f64> {
        self.pcpu_utilization.iter().map(|ci| ci.mean).collect()
    }

    /// Grand average VCPU availability (mean of per-VCPU means).
    #[must_use]
    pub fn avg_vcpu_availability(&self) -> f64 {
        mean(&self.vcpu_availability_means())
    }

    /// Grand average VCPU utilization — Figure 10's reported quantity.
    #[must_use]
    pub fn avg_vcpu_utilization(&self) -> f64 {
        mean(&self.vcpu_utilization_means())
    }

    /// Grand average PCPU utilization — Figure 9's reported quantity.
    #[must_use]
    pub fn avg_pcpu_utilization(&self) -> f64 {
        mean(&self.pcpu_utilization_means())
    }

    /// Mean spin fraction of each VCPU (spinlock extension).
    #[must_use]
    pub fn vcpu_spin_means(&self) -> Vec<f64> {
        self.vcpu_spin.iter().map(|ci| ci.mean).collect()
    }

    /// Grand average spin fraction (spinlock extension).
    #[must_use]
    pub fn avg_vcpu_spin(&self) -> f64 {
        mean(&self.vcpu_spin_means())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> SampleMetrics {
        SampleMetrics {
            vcpu_availability: vec![1.0, 0.5],
            vcpu_utilization: vec![0.8, 0.4],
            pcpu_utilization: vec![0.9, 0.3, 0.6],
            vcpu_spin: vec![0.1, 0.3],
        }
    }

    #[test]
    fn averages() {
        let m = metrics();
        assert!((m.avg_vcpu_availability() - 0.75).abs() < 1e-12);
        assert!((m.avg_vcpu_utilization() - 0.6).abs() < 1e-12);
        assert!((m.avg_pcpu_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn observation_vector_layout() {
        let m = metrics();
        let obs = m.to_observations();
        assert_eq!(obs, vec![1.0, 0.5, 0.8, 0.4, 0.1, 0.3, 0.9, 0.3, 0.6]);
        assert_eq!(obs.len(), observation_arity(2, 3));
    }

    #[test]
    fn report_roundtrip() {
        let ci = |mean: f64| ConfidenceInterval {
            mean,
            half_width: 0.01,
            level: 0.95,
            n: 5,
        };
        let obs = metrics().to_observations();
        let intervals: Vec<_> = obs.iter().map(|&m| ci(m)).collect();
        let report = MetricsReport::from_intervals(intervals, 2, 3, 5);
        assert_eq!(report.vcpu_availability_means(), vec![1.0, 0.5]);
        assert_eq!(report.vcpu_utilization_means(), vec![0.8, 0.4]);
        assert_eq!(report.vcpu_spin_means(), vec![0.1, 0.3]);
        assert!((report.avg_vcpu_spin() - 0.2).abs() < 1e-12);
        assert_eq!(report.pcpu_utilization_means(), vec![0.9, 0.3, 0.6]);
        assert!((report.avg_pcpu_utilization() - 0.6).abs() < 1e-12);
        assert!((report.avg_vcpu_availability() - 0.75).abs() < 1e-12);
        assert!((report.avg_vcpu_utilization() - 0.6).abs() < 1e-12);
        assert_eq!(report.replications, 5);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn report_arity_checked() {
        let _ = MetricsReport::from_intervals(vec![], 2, 3, 5);
    }

    #[test]
    fn vm_grouping() {
        let config = crate::SystemConfig::builder()
            .pcpus(2)
            .vm(2)
            .vm(1)
            .build()
            .unwrap();
        let m = SampleMetrics {
            vcpu_availability: vec![0.4, 0.6, 1.0],
            vcpu_utilization: vec![0.2, 0.4, 0.9],
            pcpu_utilization: vec![1.0, 1.0],
            vcpu_spin: vec![0.0, 0.0, 0.0],
        };
        assert_eq!(m.vm_availability(&config), vec![0.5, 1.0]);
        let util = m.vm_utilization(&config);
        assert!((util[0] - 0.3).abs() < 1e-12);
        assert_eq!(util[1], 0.9);
    }

    #[test]
    #[should_panic(expected = "VCPU count")]
    fn vm_grouping_checks_arity() {
        let config = crate::SystemConfig::builder()
            .pcpus(1)
            .vm(3)
            .build()
            .unwrap();
        let m = SampleMetrics {
            vcpu_availability: vec![0.5],
            vcpu_utilization: vec![0.5],
            pcpu_utilization: vec![1.0],
            vcpu_spin: vec![0.0],
        };
        let _ = m.vm_availability(&config);
    }

    #[test]
    fn empty_means_are_zero() {
        let m = SampleMetrics {
            vcpu_availability: vec![],
            vcpu_utilization: vec![],
            pcpu_utilization: vec![],
            vcpu_spin: vec![],
        };
        assert_eq!(m.avg_vcpu_availability(), 0.0);
        assert_eq!(m.avg_vcpu_spin(), 0.0);
    }
}
