//! # vsched-core — a simulation framework to evaluate VCPU scheduling algorithms
//!
//! A from-scratch Rust reproduction of *"A Simulation Framework to Evaluate
//! Virtual CPU Scheduling Algorithms"* (Pham, Li, Estrada, Kalbarczyk, Iyer —
//! IEEE ICDCS Workshops 2013).
//!
//! ## What this crate models
//!
//! A virtualization system: physical CPUs (**PCPUs**), a hypervisor **VCPU
//! scheduler** driven by a unit-period clock, and a set of **VMs**, each
//! containing a workload generator, a job scheduler, and one or more
//! **VCPUs**. The hypervisor assigns PCPUs to VCPUs according to a pluggable
//! scheduling algorithm — the paper's `bool schedule(VCPU_host_external*,
//! int, PCPU_external*, int, long)` C interface becomes the
//! [`SchedulingPolicy`] trait here.
//!
//! Two execution engines share identical semantics:
//!
//! * [`san_model`] — the faithful reproduction: the system is compiled into
//!   a Stochastic Activity Network (via `vsched-san`, our Mobius
//!   replacement) mirroring the paper's Figures 3–7, and simulated with
//!   reward variables.
//! * [`direct`] — a fast time-stepped engine used to validate the SAN
//!   model's fidelity (the paper's Discussion §V asks for exactly this) and
//!   to run large parameter sweeps.
//!
//! ## Built-in policies
//!
//! * [`sched::RoundRobin`] — the naive default of KVM/VirtualBox (**RRS**),
//! * [`sched::StrictCo`] — VMware-style gang scheduling (**SCS**),
//! * [`sched::RelaxedCo`] — ESX 3/4 relaxed co-scheduling with a
//!   cumulative-skew threshold (**RCS**),
//! * [`sched::Balance`] — Sukwong & Kim's balance scheduling
//!   (anti-VCPU-stacking),
//! * [`sched::Credit`] — a Xen-like proportional-share credit scheduler,
//! * [`sched::Sedf`] — Xen's Simple Earliest Deadline First scheduler,
//! * [`sched::Bvt`] — Borrowed Virtual Time,
//! * [`sched::Fcfs`] — first-come-first-served baseline.
//!
//! ## Metrics (the paper's three reward variables)
//!
//! * **VCPU availability** — fraction of time a VCPU is ACTIVE (READY or
//!   BUSY); the fairness metric of Figure 8.
//! * **PCPU utilization** — fraction of time a PCPU is assigned; the
//!   fragmentation metric of Figure 9.
//! * **VCPU utilization** — fraction of time a VCPU is BUSY processing
//!   workload; the synchronization-latency metric of Figure 10.
//!
//! ## Quickstart
//!
//! ```
//! use vsched_core::{ExperimentBuilder, PolicyKind, SystemConfig};
//!
//! // Three VMs (2 + 1 + 1 VCPUs) sharing 2 PCPUs, 1:5 sync ratio.
//! let config = SystemConfig::builder()
//!     .pcpus(2)
//!     .vm(2)
//!     .vm(1)
//!     .vm(1)
//!     .sync_ratio(1, 5)
//!     .build()?;
//!
//! let report = ExperimentBuilder::new(config, PolicyKind::RoundRobin)
//!     .horizon(2_000)
//!     .replications_exact(3)
//!     .run()?;
//!
//! // Round-robin is fair: every VCPU gets a similar share.
//! let avail = report.vcpu_availability_means();
//! assert!(avail.iter().all(|a| (a - avail[0]).abs() < 0.1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod direct;
pub mod error;
pub mod metrics;
pub mod observe;
pub mod runner;
pub mod san_model;
pub mod sched;
pub mod spec;
pub mod types;
pub(crate) mod util;

pub use config::{SyncMechanism, SystemConfig, SystemConfigBuilder, VmSpec, WorkloadSpec};
pub use error::CoreError;
pub use metrics::{MetricsReport, SampleMetrics};
pub use observe::TickObserver;
pub use runner::{Engine, ExperimentBuilder};
pub use sched::{PolicyKind, ScheduleDecision, SchedulingPolicy};
pub use spec::{DistSpec, SyncMechanismSpec};
pub use types::{PcpuView, VcpuId, VcpuStatus, VcpuView};
pub use vsched_san::ShardMode;
