//! Core vocabulary: VCPU/PCPU identities, states, and the views passed to
//! scheduling policies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a VCPU in the system.
///
/// `vm` is the VM's index in the [`crate::SystemConfig`]; `sibling` is the
/// VCPU's index within its VM (the paper's "VCPU 1.2" is
/// `VcpuId { vm: 0, sibling: 1 }`). The flat `global` index is the position
/// in the system-wide VCPU array handed to scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VcpuId {
    /// Index of the owning VM.
    pub vm: usize,
    /// Index among the VM's VCPUs.
    pub sibling: usize,
    /// Index in the system-wide VCPU array.
    pub global: usize,
}

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper's notation: "VCPU2.1" is VM 2's first VCPU (1-based).
        write!(f, "VCPU{}.{}", self.vm + 1, self.sibling + 1)
    }
}

/// Status of a VCPU (paper §III.B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcpuStatus {
    /// Not assigned to any PCPU. May still hold partial work
    /// (`remaining_load > 0`) or a synchronization point — the "preempted
    /// lock holder" at the heart of the VCPU-scheduling problem.
    Inactive,
    /// Assigned a PCPU but no workload to process.
    Ready,
    /// Assigned a PCPU and processing a workload.
    Busy,
}

impl VcpuStatus {
    /// ACTIVE = READY ∪ BUSY (the paper's availability metric counts these).
    #[must_use]
    pub fn is_active(self) -> bool {
        matches!(self, VcpuStatus::Ready | VcpuStatus::Busy)
    }

    /// Encoding used in SAN markings: 0 = INACTIVE, 1 = READY, 2 = BUSY.
    #[must_use]
    pub fn to_token(self) -> i64 {
        match self {
            VcpuStatus::Inactive => 0,
            VcpuStatus::Ready => 1,
            VcpuStatus::Busy => 2,
        }
    }

    /// Inverse of [`VcpuStatus::to_token`].
    ///
    /// # Panics
    ///
    /// Panics on a token value outside `0..=2` (corrupt marking).
    #[must_use]
    pub fn from_token(token: i64) -> Self {
        match token {
            0 => VcpuStatus::Inactive,
            1 => VcpuStatus::Ready,
            2 => VcpuStatus::Busy,
            other => panic!("invalid VCPU status token {other}"),
        }
    }
}

impl fmt::Display for VcpuStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VcpuStatus::Inactive => "INACTIVE",
            VcpuStatus::Ready => "READY",
            VcpuStatus::Busy => "BUSY",
        };
        f.write_str(s)
    }
}

/// Snapshot of one VCPU handed to [`crate::SchedulingPolicy::schedule`] —
/// the Rust analogue of the paper's `VCPU_host_external` struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuView {
    /// Who this VCPU is.
    pub id: VcpuId,
    /// Current status.
    pub status: VcpuStatus,
    /// Ticks of work left in the current job (0 = no job).
    pub remaining_load: u64,
    /// Whether the current job is a synchronization point ("holding a
    /// lock"). Meaningful only when `remaining_load > 0`.
    pub sync_point: bool,
    /// PCPU currently assigned, if ACTIVE.
    pub assigned_pcpu: Option<usize>,
    /// Ticks left in the current timeslice, if ACTIVE.
    pub timeslice_remaining: u64,
    /// Tick at which the VCPU was last scheduled in (the paper's
    /// `Last_Scheduled_In`); `None` if never scheduled.
    pub last_scheduled_in: Option<u64>,
    /// Proportional-share weight of the owning VM (1 unless configured).
    pub vm_weight: u32,
    /// Whether the owning VM is currently admitted. Static configurations
    /// are always fully present; a trace schedule retires departed VMs by
    /// clearing this flag, which removes their VCPUs from every policy's
    /// candidate set (see [`VcpuView::is_schedulable`]).
    #[serde(default = "default_present")]
    pub present: bool,
}

/// Serde default for [`VcpuView::present`]: views serialized before the
/// trace frontend existed describe static (fully present) systems.
fn default_present() -> bool {
    true
}

impl VcpuView {
    /// Whether the VCPU currently lacks a PCPU and therefore can be
    /// assigned one. VCPUs of a retired (departed) VM are never
    /// schedulable.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.present && self.status == VcpuStatus::Inactive
    }
}

/// Snapshot of one PCPU — the paper's `PCPU_external`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcpuView {
    /// PCPU index.
    pub id: usize,
    /// VCPU currently assigned, or `None` when IDLE.
    pub assigned: Option<VcpuId>,
}

impl PcpuView {
    /// Whether the PCPU is free.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.assigned.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        let id = VcpuId {
            vm: 1,
            sibling: 0,
            global: 2,
        };
        assert_eq!(id.to_string(), "VCPU2.1");
    }

    #[test]
    fn status_roundtrip() {
        for s in [VcpuStatus::Inactive, VcpuStatus::Ready, VcpuStatus::Busy] {
            assert_eq!(VcpuStatus::from_token(s.to_token()), s);
        }
    }

    #[test]
    #[should_panic(expected = "invalid VCPU status token")]
    fn bad_token_panics() {
        let _ = VcpuStatus::from_token(7);
    }

    #[test]
    fn active_means_ready_or_busy() {
        assert!(!VcpuStatus::Inactive.is_active());
        assert!(VcpuStatus::Ready.is_active());
        assert!(VcpuStatus::Busy.is_active());
    }

    #[test]
    fn status_display() {
        assert_eq!(VcpuStatus::Inactive.to_string(), "INACTIVE");
        assert_eq!(VcpuStatus::Ready.to_string(), "READY");
        assert_eq!(VcpuStatus::Busy.to_string(), "BUSY");
    }

    #[test]
    fn schedulable_and_idle() {
        let v = VcpuView {
            id: VcpuId {
                vm: 0,
                sibling: 0,
                global: 0,
            },
            status: VcpuStatus::Inactive,
            remaining_load: 3,
            sync_point: true,
            assigned_pcpu: None,
            timeslice_remaining: 0,
            last_scheduled_in: None,
            vm_weight: 1,
            present: true,
        };
        assert!(v.is_schedulable());
        let retired = VcpuView {
            present: false,
            ..v
        };
        assert!(
            !retired.is_schedulable(),
            "retired VMs are never schedulable"
        );
        let p = PcpuView {
            id: 0,
            assigned: None,
        };
        assert!(p.is_idle());
    }
}
