//! Balance scheduling (after Sukwong & Kim, "Is co-scheduling too expensive
//! for SMP VMs?", EuroSys 2011 — the paper's reference [1]).
//!
//! Sukwong & Kim observed that synchronization latency spikes when sibling
//! VCPUs are *stacked* in the run-queue of the same physical CPU: one
//! sibling then necessarily waits behind the other. Balance scheduling
//! avoids stacking by placing sibling VCPUs on distinct PCPUs, without
//! requiring them to start simultaneously (no fragmentation cost).
//!
//! Adaptation to this framework: the paper's model has a single global
//! scheduler rather than per-PCPU run queues, so stacking appears as
//! *sequential* use of the same PCPU by siblings while other PCPUs serve
//! other VMs. The balance policy therefore (a) never assigns a VCPU to a
//! PCPU while a sibling is running on it is impossible by construction
//! (one VCPU per PCPU), so instead it (b) balances *PCPU attention across
//! VMs*: each idle PCPU goes to the schedulable VCPU whose VM currently
//! holds the fewest PCPUs, tie-broken round-robin. Sibling VCPUs of an SMP
//! VM thus spread over PCPUs as evenly as the load allows — the essence of
//! balance scheduling in a time-multiplexed model.

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The balance-scheduling policy. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Balance {
    cursor: usize,
}

impl Balance {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Balance { cursor: 0 }
    }
}

impl SchedulingPolicy for Balance {
    fn name(&self) -> &str {
        "balance"
    }

    /// Decides from status and assignment alone — no payload fields.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::none()
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let idle = idle_pcpus(pcpus);
        if idle.is_empty() || vcpus.is_empty() {
            return decision;
        }
        let num_vms = vcpus.iter().map(|v| v.id.vm + 1).max().unwrap_or(0);
        // PCPUs currently held per VM (running VCPUs + this tick's grants).
        let mut held = vec![0usize; num_vms];
        for v in vcpus {
            if v.status.is_active() {
                held[v.id.vm] += 1;
            }
        }
        let n = vcpus.len();
        for pcpu in idle {
            // Candidate = schedulable VCPU from the least-served VM;
            // round-robin cursor breaks ties deterministically.
            let mut best: Option<usize> = None;
            for offset in 0..n {
                let v = (self.cursor + offset) % n;
                if !vcpus[v].is_schedulable() || decision.assignments.iter().any(|a| a.vcpu == v) {
                    continue;
                }
                match best {
                    None => best = Some(v),
                    Some(b) if held[vcpus[v].id.vm] < held[vcpus[b].id.vm] => {
                        best = Some(v);
                    }
                    _ => {}
                }
            }
            let Some(v) = best else { break };
            decision.assign(v, pcpu, default_timeslice);
            held[vcpus[v].id.vm] += 1;
            self.cursor = (v + 1) % n;
        }
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            vcpu_ids: vec![self.cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        match state.vcpu_ids.as_slice() {
            [c] if *c >= 0 => {
                self.cursor = *c as usize;
                true
            }
            _ => false,
        }
    }

    /// The candidate scan runs cyclically from the cursor and prefers a
    /// strictly-less-held VM, so the winner is determined by cursor-relative
    /// position and per-VM held counts — both of which rotate with the VMs.
    fn rotation_equivariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, pcpus_for, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn spreads_pcpus_across_vms() {
        // VMs {2, 2}; 2 PCPUs: one PCPU per VM, not both to VM 0.
        let mut bal = Balance::new();
        let vcpus = vcpus_with_vms(&[2, 2]);
        let pcpus = pcpus_for(2, &vcpus);
        let d = bal.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("bal", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 2);
        let vms: Vec<usize> = d.assignments.iter().map(|a| vcpus[a.vcpu].id.vm).collect();
        assert_ne!(vms[0], vms[1], "each VM gets one PCPU");
    }

    #[test]
    fn prefers_underserved_vm() {
        // VM 0 already holds a PCPU; the idle PCPU must go to VM 1.
        let mut bal = Balance::new();
        let mut vcpus = vcpus_with_vms(&[2, 1]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(2, &vcpus);
        let d = bal.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(vcpus[d.assignments[0].vcpu].id.vm, 1);
    }

    #[test]
    fn siblings_get_distinct_pcpus_when_available() {
        let mut bal = Balance::new();
        let vcpus = vcpus_with_vms(&[2]);
        let pcpus = pcpus_for(2, &vcpus);
        let d = bal.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(d.assignments.len(), 2);
        assert_ne!(d.assignments[0].pcpu, d.assignments[1].pcpu);
    }

    #[test]
    fn never_double_assigns_a_vcpu() {
        let mut bal = Balance::new();
        let vcpus = vcpus_with_vms(&[1]);
        let pcpus = pcpus_for(3, &vcpus);
        let d = bal.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("bal", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 1, "one VCPU, one assignment");
    }

    #[test]
    fn empty_inputs() {
        let mut bal = Balance::new();
        assert_eq!(bal.schedule(&[], &[], 0, 10), ScheduleDecision::none());
    }
}
