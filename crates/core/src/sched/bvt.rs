//! Borrowed Virtual Time (BVT, Duda & Cheriton 1999) — the third Xen
//! scheduler in Cherkasova et al.'s comparison (the paper's reference
//! [8]).
//!
//! Each VCPU carries an *effective virtual time* (EVT) that advances while
//! it runs, inversely proportional to its VM's weight — heavier VMs age
//! slower, earning more CPU. The scheduler always runs the VCPUs with the
//! smallest EVT. To prevent a long-idle VCPU from monopolizing the CPU
//! when it wakes, its EVT is clamped to lag at most one *context-switch
//! allowance* behind the current minimum.

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The BVT policy. See the module docs.
#[derive(Debug, Clone)]
pub struct Bvt {
    /// Maximum EVT lag a waking VCPU may carry (in weighted ticks).
    max_lag: u64,
    evt: Vec<u64>,
}

impl Bvt {
    /// Creates the policy with the given maximum wake-up lag (the
    /// context-switch allowance; a few timeslices is typical).
    #[must_use]
    pub fn new(max_lag: u64) -> Self {
        Bvt {
            max_lag,
            evt: Vec::new(),
        }
    }

    /// Effective virtual time of VCPU `global` (test/inspection hook).
    #[must_use]
    pub fn evt_of(&self, global: usize) -> u64 {
        self.evt.get(global).copied().unwrap_or(0)
    }

    fn advance(&mut self, vcpus: &[VcpuView]) {
        self.evt.resize(vcpus.len(), 0);
        for v in vcpus {
            if v.status.is_active() {
                // Weighted aging: weight w advances 1/w per tick, scaled
                // by a common factor to stay in integers.
                let step = (1_000 / u64::from(v.vm_weight.max(1))).max(1);
                self.evt[v.id.global] += step;
            }
        }
    }
}

impl SchedulingPolicy for Bvt {
    fn name(&self) -> &str {
        "bvt"
    }

    /// Proportional share: reads `vm_weight`, nothing else.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields {
            vm_weight: true,
            ..ViewFields::none()
        }
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        self.advance(vcpus);
        let mut decision = ScheduleDecision::none();
        let idle = idle_pcpus(pcpus);
        if idle.is_empty() || vcpus.is_empty() {
            return decision;
        }
        // Clamp waking VCPUs against the minimum EVT of the runnable set.
        let runnable: Vec<usize> = (0..vcpus.len())
            .filter(|&g| vcpus[g].is_schedulable())
            .collect();
        if let Some(&min_active) = self
            .evt
            .iter()
            .enumerate()
            .filter(|(g, _)| vcpus[*g].status.is_active())
            .map(|(_, e)| e)
            .min()
        {
            for &g in &runnable {
                if self.evt[g] + self.max_lag < min_active {
                    self.evt[g] = min_active.saturating_sub(self.max_lag);
                }
            }
        }
        // Smallest EVT first; stable tie-break on the index.
        let mut order = runnable;
        order.sort_by_key(|&g| (self.evt[g], g));
        for (g, p) in order.into_iter().zip(idle) {
            decision.assign(g, p, default_timeslice);
        }
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            per_vcpu: self.evt.iter().map(|&e| vec![e as i64]).collect(),
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        if state
            .per_vcpu
            .iter()
            .any(|row| row.len() != 1 || row[0] < 0)
        {
            return false;
        }
        self.evt = state.per_vcpu.iter().map(|row| row[0] as u64).collect();
        true
    }

    // NOT rotation-equivariant: EVT ties are broken on the raw global
    // index `(evt, g)`, which a cyclic shift reorders.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, pcpus_for, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn smallest_virtual_time_runs_first() {
        let mut bvt = Bvt::new(100);
        let vcpus = vcpus_with_vms(&[1, 1]);
        let pcpus = pcpus_for(1, &vcpus);
        // Pre-age VCPU 0.
        bvt.evt = vec![500, 0];
        let d = bvt.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("bvt", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments[0].vcpu, 1, "lower EVT wins");
    }

    #[test]
    fn running_vcpu_ages() {
        let mut bvt = Bvt::new(100);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        for t in 0..5 {
            let _ = bvt.schedule(&vcpus, &pcpus, t, 10);
        }
        assert!(bvt.evt_of(0) > bvt.evt_of(1), "runner aged, waiter did not");
    }

    #[test]
    fn heavier_vm_ages_slower() {
        let mut bvt = Bvt::new(100);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        vcpus[0].vm_weight = 4;
        activate(&mut vcpus, 0, 0);
        activate(&mut vcpus, 1, 1);
        let pcpus = pcpus_for(2, &vcpus);
        for t in 0..8 {
            let _ = bvt.schedule(&vcpus, &pcpus, t, 10);
        }
        assert!(
            bvt.evt_of(0) * 3 < bvt.evt_of(1),
            "weight-4 VCPU ages ~4x slower: {} vs {}",
            bvt.evt_of(0),
            bvt.evt_of(1)
        );
    }

    #[test]
    fn waking_vcpu_lag_is_clamped() {
        let mut bvt = Bvt::new(50);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        activate(&mut vcpus, 0, 0);
        // VCPU 0 has run a long time; VCPU 1 wakes with EVT 0.
        bvt.evt = vec![10_000, 0];
        let pcpus = pcpus_for(2, &vcpus);
        let d = bvt.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(d.assignments[0].vcpu, 1);
        assert!(
            bvt.evt_of(1) > 10_000 - 50,
            "waker clamped near the pack: {}",
            bvt.evt_of(1)
        );
    }

    #[test]
    fn long_run_is_fair_between_equal_weights() {
        let mut bvt = Bvt::new(100);
        let mut vcpus = vcpus_with_vms(&[1, 1, 1]);
        let mut ran = [0u32; 3];
        let mut holder: Option<usize> = None;
        for t in 0..300 {
            if t % 10 == 0 {
                if let Some(h) = holder.take() {
                    vcpus[h].status = crate::types::VcpuStatus::Inactive;
                    vcpus[h].assigned_pcpu = None;
                }
            }
            let pcpus = pcpus_for(1, &vcpus);
            let d = bvt.schedule(&vcpus, &pcpus, t, 10);
            for a in &d.assignments {
                activate(&mut vcpus, a.vcpu, a.pcpu);
                holder = Some(a.vcpu);
            }
            if let Some(h) = holder {
                ran[h] += 1;
            }
        }
        for &r in &ran {
            assert!((80..=120).contains(&r), "fair split expected: {ran:?}");
        }
    }

    #[test]
    fn empty_system() {
        let mut bvt = Bvt::new(10);
        assert_eq!(bvt.schedule(&[], &[], 0, 10), ScheduleDecision::none());
    }
}
