//! Strict Co-Scheduling (SCS).
//!
//! The paper (after VMware's original ESX co-scheduling [3], itself modeled
//! on gang scheduling [4]): "the scheduler forces all the VCPUs of a VM to
//! start (co-start) and stop (co-stop) at the same time. Such an algorithm
//! helps to avoid the synchronization latency, as both the waiting VCPUs
//! and the lock-holding VCPU are preempted and resumed at the same time.
//! This strict co-scheduling approach, however, introduces a fragmentation
//! problem: a VCPU can only be scheduled after the hypervisor gathers
//! enough resources to execute all other VCPUs in the same VM."
//!
//! Implementation: a VM is a *gang*. A gang may start only when **every**
//! one of its VCPUs is INACTIVE and there are at least as many idle PCPUs
//! as the gang has VCPUs. All gang members receive the same timeslice in
//! the same tick, so they co-stop on expiry. VMs are considered in
//! round-robin order for fairness among gangs.

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The Strict Co-Scheduling policy. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct StrictCo {
    /// Index of the next VM to consider.
    vm_cursor: usize,
}

impl StrictCo {
    /// Creates the policy with its VM cursor at VM 0.
    #[must_use]
    pub fn new() -> Self {
        StrictCo { vm_cursor: 0 }
    }
}

/// Groups global VCPU indices by VM, ordered by VM index.
pub(crate) fn vcpus_by_vm(vcpus: &[VcpuView]) -> Vec<Vec<usize>> {
    let num_vms = vcpus.iter().map(|v| v.id.vm + 1).max().unwrap_or(0);
    let mut groups = vec![Vec::new(); num_vms];
    for v in vcpus {
        groups[v.id.vm].push(v.id.global);
    }
    groups
}

impl SchedulingPolicy for StrictCo {
    fn name(&self) -> &str {
        "strict-co"
    }

    /// Decides from status and assignment alone — no payload fields.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::none()
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let mut idle = idle_pcpus(pcpus);
        if idle.is_empty() {
            return decision;
        }
        let groups = vcpus_by_vm(vcpus);
        let num_vms = groups.len();
        if num_vms == 0 {
            return decision;
        }
        let mut next_cursor = self.vm_cursor;
        for offset in 0..num_vms {
            let vm = (self.vm_cursor + offset) % num_vms;
            let gang = &groups[vm];
            // Co-start requires the whole gang to be stopped and enough
            // idle PCPUs for every member.
            let all_inactive = gang.iter().all(|&g| vcpus[g].is_schedulable());
            if !all_inactive || gang.len() > idle.len() {
                continue;
            }
            for &g in gang {
                let pcpu = idle.remove(0);
                decision.assign(g, pcpu, default_timeslice);
            }
            next_cursor = (vm + 1) % num_vms;
            if idle.is_empty() {
                break;
            }
        }
        self.vm_cursor = next_cursor;
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            vm_ids: vec![self.vm_cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        match state.vm_ids.as_slice() {
            [c] if *c >= 0 => {
                self.vm_cursor = *c as usize;
                true
            }
            _ => false,
        }
    }

    /// Gangs are scanned cyclically from the VM cursor and filled in
    /// within-VM sibling order; rotating VMs (and the cursor with them)
    /// rotates the gang order without reordering siblings.
    fn rotation_equivariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, pcpus_for, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn gang_starts_only_with_enough_pcpus() {
        // The paper's Figure 8 observation: with one PCPU, a 2-VCPU VM can
        // never co-start under SCS.
        let mut scs = StrictCo::new();
        let vcpus = vcpus_with_vms(&[2, 1, 1]);
        let mut starts = [0u32; 4];
        for t in 0..12 {
            let pcpus = pcpus_for(1, &vcpus);
            let d = scs.schedule(&vcpus, &pcpus, t, 10);
            validate_decision("scs", &vcpus, &pcpus, &d).unwrap();
            for a in &d.assignments {
                starts[a.vcpu] += 1;
            }
        }
        assert_eq!(starts[0], 0, "2-VCPU VM starved");
        assert_eq!(starts[1], 0, "2-VCPU VM starved");
        assert_eq!(starts[2], 6, "1-VCPU VMs alternate");
        assert_eq!(starts[3], 6);
    }

    #[test]
    fn whole_gang_co_starts() {
        let mut scs = StrictCo::new();
        let vcpus = vcpus_with_vms(&[2, 1]);
        let pcpus = pcpus_for(4, &vcpus);
        let d = scs.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("scs", &vcpus, &pcpus, &d).unwrap();
        // Both VMs fit: all three VCPUs start, gang members together.
        assert_eq!(d.assignments.len(), 3);
        let gang0: Vec<_> = d.assignments.iter().filter(|a| a.vcpu < 2).collect();
        assert_eq!(gang0.len(), 2, "both siblings of VM 0 co-start");
        assert!(gang0.iter().all(|a| a.timeslice == 10), "equal slices");
    }

    #[test]
    fn partial_gang_never_starts() {
        let mut scs = StrictCo::new();
        let mut vcpus = vcpus_with_vms(&[2]);
        activate(&mut vcpus, 0, 0); // one sibling still running
        let pcpus = pcpus_for(3, &vcpus);
        let d = scs.schedule(&vcpus, &pcpus, 0, 10);
        assert!(
            d.assignments.is_empty(),
            "gang with a running member must wait for co-stop"
        );
    }

    #[test]
    fn fragmentation_leaves_pcpus_idle() {
        // 3 idle PCPUs, one 4-VCPU VM: nothing can be scheduled.
        let mut scs = StrictCo::new();
        let vcpus = vcpus_with_vms(&[4]);
        let pcpus = pcpus_for(3, &vcpus);
        let d = scs.schedule(&vcpus, &pcpus, 0, 10);
        assert!(d.assignments.is_empty(), "CPU fragmentation");
    }

    #[test]
    fn vm_cursor_rotates_among_gangs() {
        let mut scs = StrictCo::new();
        let vcpus = vcpus_with_vms(&[1, 1, 1]);
        let mut first_started = Vec::new();
        for t in 0..3 {
            let pcpus = pcpus_for(1, &vcpus);
            let d = scs.schedule(&vcpus, &pcpus, t, 10);
            first_started.push(d.assignments[0].vcpu);
        }
        assert_eq!(first_started, vec![0, 1, 2]);
    }

    #[test]
    fn empty_system_is_a_noop() {
        let mut scs = StrictCo::new();
        let d = scs.schedule(&[], &[], 0, 10);
        assert_eq!(d, ScheduleDecision::none());
    }
}
