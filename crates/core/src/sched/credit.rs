//! A Xen-like proportional-share credit scheduler.
//!
//! The paper's related work (Cherkasova et al., reference [8]) compares
//! Xen's three CPU schedulers, of which the *credit scheduler* became the
//! default. This module implements its essential mechanism, adapted to the
//! framework's tick model:
//!
//! * every `refill_period` ticks, each VM receives credits proportional to
//!   its configured weight ([`crate::config::VmSpec::weight`]), divided
//!   equally among its VCPUs;
//! * a running VCPU burns one credit per tick;
//! * VCPUs with positive credits are **UNDER** priority and are scheduled
//!   before **OVER** (non-positive-credit) VCPUs; within a class, higher
//!   credit first, round-robin tie-break.
//!
//! Work-conserving: OVER VCPUs still run when PCPUs would otherwise idle,
//! exactly like Xen's credit scheduler in its default work-conserving mode.

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The credit policy. See the module docs.
#[derive(Debug, Clone)]
pub struct Credit {
    refill_period: u64,
    credits: Vec<i64>,
    last_refill: Option<u64>,
    cursor: usize,
}

impl Credit {
    /// Creates the policy with the given credit refill period (ticks).
    ///
    /// # Panics
    ///
    /// Panics if `refill_period` is zero.
    #[must_use]
    pub fn new(refill_period: u64) -> Self {
        assert!(refill_period > 0, "refill_period must be positive");
        Credit {
            refill_period,
            credits: Vec::new(),
            last_refill: None,
            cursor: 0,
        }
    }

    /// Current credit balance of VCPU `global` (test/inspection hook).
    #[must_use]
    pub fn credits_of(&self, global: usize) -> i64 {
        self.credits.get(global).copied().unwrap_or(0)
    }

    fn refill(&mut self, vcpus: &[VcpuView], pcpus: usize, timestamp: u64) {
        self.credits.resize(vcpus.len(), 0);
        let due = match self.last_refill {
            None => true,
            Some(t) => timestamp >= t + self.refill_period,
        };
        if !due {
            return;
        }
        self.last_refill = Some(timestamp);
        // Total capacity over one period, split across VMs proportionally
        // to their weights and then equally across each VM's VCPUs.
        let num_vms = vcpus.iter().map(|v| v.id.vm + 1).max().unwrap_or(0);
        if num_vms == 0 {
            return;
        }
        let mut vm_sizes = vec![0usize; num_vms];
        let mut vm_weights = vec![1u32; num_vms];
        for v in vcpus {
            vm_sizes[v.id.vm] += 1;
            vm_weights[v.id.vm] = v.vm_weight;
        }
        let total_weight: f64 = vm_weights.iter().map(|&w| f64::from(w)).sum();
        let total = (pcpus as u64 * self.refill_period) as f64;
        for v in vcpus {
            let per_vm = total * f64::from(vm_weights[v.id.vm]) / total_weight;
            let share = per_vm / vm_sizes[v.id.vm] as f64;
            // Credits cap at one period's share: unused credit does not
            // bank indefinitely (matches Xen's clipping).
            let next = self.credits[v.id.global] + share.round() as i64;
            self.credits[v.id.global] = next.min(share.round() as i64 * 2);
        }
    }

    fn burn(&mut self, vcpus: &[VcpuView]) {
        for v in vcpus {
            if v.status.is_active() {
                self.credits[v.id.global] -= 1;
            }
        }
    }
}

impl SchedulingPolicy for Credit {
    fn name(&self) -> &str {
        "credit"
    }

    /// Proportional share: reads `vm_weight`, nothing else.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields {
            vm_weight: true,
            ..ViewFields::none()
        }
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        self.refill(vcpus, pcpus.len(), timestamp);
        self.burn(vcpus);
        let mut decision = ScheduleDecision::none();
        let idle = idle_pcpus(pcpus);
        if idle.is_empty() || vcpus.is_empty() {
            return decision;
        }
        let n = vcpus.len();
        // Order runnable VCPUs: UNDER (credit > 0) before OVER, then by
        // credit descending, then round-robin distance from the cursor.
        let mut runnable: Vec<usize> = (0..n).filter(|&v| vcpus[v].is_schedulable()).collect();
        runnable.sort_by_key(|&v| {
            let under = i64::from(self.credits[v] <= 0); // 0 = UNDER first
            let distance = (v + n - self.cursor) % n;
            (under, -self.credits[v], distance)
        });
        for (v, pcpu) in runnable.into_iter().zip(idle) {
            decision.assign(v, pcpu, default_timeslice);
            self.cursor = (v + 1) % n;
        }
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            global: vec![self.last_refill.map_or(-1, |t| t as i64)],
            per_vcpu: self.credits.iter().map(|&c| vec![c]).collect(),
            vcpu_ids: vec![self.cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        let (&[refill], &[cursor]) = (state.global.as_slice(), state.vcpu_ids.as_slice()) else {
            return false;
        };
        if cursor < 0 || state.per_vcpu.iter().any(|row| row.len() != 1) {
            return false;
        }
        self.last_refill = (refill >= 0).then_some(refill as u64);
        self.credits = state.per_vcpu.iter().map(|row| row[0]).collect();
        self.cursor = cursor as usize;
        true
    }

    /// The ordering key is `(under, -credits, distance-from-cursor)`;
    /// the distance term is invariant under a common cyclic shift of VCPU
    /// and cursor, and is injective over candidates — no raw-index
    /// tie-break sneaks in. Refill and burn are per-VCPU-uniform.
    fn rotation_equivariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, pcpus_for, vcpus_inactive, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn initial_refill_gives_equal_credits() {
        let mut cr = Credit::new(30);
        let vcpus = vcpus_with_vms(&[1, 1]);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(cr.credits_of(0), cr.credits_of(1));
        assert!(cr.credits_of(0) > 0);
    }

    #[test]
    fn running_vcpu_burns_credit() {
        let mut cr = Credit::new(30);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        let after_first = cr.credits_of(0);
        for t in 1..6 {
            let _ = cr.schedule(&vcpus, &pcpus, t, 10);
        }
        assert_eq!(cr.credits_of(0), after_first - 5);
        assert_eq!(
            cr.credits_of(1),
            after_first + 1,
            "idle VCPU keeps its credits (one extra from not burning at t=0)"
        );
    }

    #[test]
    fn under_beats_over() {
        let mut cr = Credit::new(10);
        let vcpus = vcpus_with_vms(&[1, 1]);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        // Drain VCPU 0's credits below zero.
        cr.credits[0] = -5;
        let d = cr.schedule(&vcpus, &pcpus, 1, 10);
        assert_eq!(d.assignments[0].vcpu, 1, "UNDER VCPU 1 wins");
    }

    #[test]
    fn work_conserving_schedules_over_vcpus() {
        let mut cr = Credit::new(10);
        let vcpus = vcpus_inactive(1);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        cr.credits[0] = -100;
        let d = cr.schedule(&vcpus, &pcpus, 1, 10);
        assert_eq!(d.assignments.len(), 1, "idle PCPU is never wasted");
    }

    #[test]
    fn refill_happens_each_period() {
        let mut cr = Credit::new(5);
        let mut vcpus = vcpus_inactive(1);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        let c0 = cr.credits_of(0);
        for t in 1..5 {
            let _ = cr.schedule(&vcpus, &pcpus, t, 10);
        }
        assert_eq!(cr.credits_of(0), c0 - 4);
        let _ = cr.schedule(&vcpus, &pcpus, 5, 10); // refill tick
        assert!(cr.credits_of(0) > c0 - 5, "period refill landed");
    }

    #[test]
    fn proportional_share_across_vm_sizes() {
        // VM 0 has 2 VCPUs, VM 1 has 1: per-VCPU share of VM 0 is half of
        // VM 1's VCPU share.
        let mut cr = Credit::new(30);
        let vcpus = vcpus_with_vms(&[2, 1]);
        let pcpus = pcpus_for(2, &vcpus);
        let _ = cr.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(cr.credits_of(0), cr.credits_of(1));
        assert_eq!(cr.credits_of(2), cr.credits_of(0) * 2);
    }

    #[test]
    fn decision_is_valid() {
        let mut cr = Credit::new(30);
        let vcpus = vcpus_with_vms(&[2, 2]);
        let pcpus = pcpus_for(3, &vcpus);
        let d = cr.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("credit", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 3);
    }

    #[test]
    #[should_panic(expected = "refill_period")]
    fn zero_period_rejected() {
        let _ = Credit::new(0);
    }
}
