//! Round-Robin Scheduling (RRS).
//!
//! The paper: "A naïve, yet popular, implementation is to use a simple
//! Round-Robin algorithm when assigning processor resources to each VCPU.
//! This option is available in most hypervisors. Sometimes it is the only
//! option, e.g. in KVM or Virtual Box hypervisors."
//!
//! Every VCPU takes its turn on a free PCPU for one timeslice, in circular
//! global order, with no awareness of VM boundaries or synchronization
//! state — which is exactly why it is perfectly fair (Figure 8) but
//! suffers synchronization latency (Figure 10).

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The Round-Robin policy. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    /// Global index of the next VCPU to consider.
    cursor: usize,
}

impl RoundRobin {
    /// Creates the policy with its cursor at VCPU 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    /// Decides from status and assignment alone — no payload fields.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::none()
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let idle = idle_pcpus(pcpus);
        if idle.is_empty() || vcpus.is_empty() {
            return decision;
        }
        let n = vcpus.len();
        let mut idle_iter = idle.into_iter();
        let mut next_cursor = self.cursor;
        for offset in 0..n {
            let v = (self.cursor + offset) % n;
            if !vcpus[v].is_schedulable() {
                continue;
            }
            match idle_iter.next() {
                Some(pcpu) => {
                    decision.assign(v, pcpu, default_timeslice);
                    next_cursor = (v + 1) % n;
                }
                None => break,
            }
        }
        self.cursor = next_cursor;
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            vcpu_ids: vec![self.cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        match state.vcpu_ids.as_slice() {
            [c] if *c >= 0 => {
                self.cursor = *c as usize;
                true
            }
            _ => false,
        }
    }

    /// The cyclic scan starts at the cursor and visits VCPUs in circular
    /// order, so shifting every index (cursor included) shifts the
    /// decision — exactly the equivariance contract.
    fn rotation_equivariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, deactivate, pcpus_for, vcpus_inactive};
    use crate::sched::validate_decision;

    #[test]
    fn fills_idle_pcpus_in_order() {
        let mut rr = RoundRobin::new();
        let vcpus = vcpus_inactive(4);
        let pcpus = pcpus_for(2, &vcpus);
        let d = rr.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("rr", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 2);
        assert_eq!(d.assignments[0].vcpu, 0);
        assert_eq!(d.assignments[1].vcpu, 1);
        assert!(d.preemptions.is_empty());
    }

    #[test]
    fn cursor_rotates_for_fairness() {
        // 4 VCPUs, 1 PCPU: the PCPU must visit 0, 1, 2, 3, 0, …
        let mut rr = RoundRobin::new();
        let mut order = Vec::new();
        let vcpus = vcpus_inactive(4);
        for _ in 0..8 {
            let pcpus = pcpus_for(1, &vcpus);
            let d = rr.schedule(&vcpus, &pcpus, 0, 10);
            assert_eq!(d.assignments.len(), 1);
            // The slice expires before the next call, so the view stays
            // INACTIVE; only the cursor carries state between calls.
            order.push(d.assignments[0].vcpu);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_active_vcpus() {
        let mut rr = RoundRobin::new();
        let mut vcpus = vcpus_inactive(3);
        activate(&mut vcpus, 1, 0); // VCPU 1 already runs on PCPU 0
        let pcpus = pcpus_for(2, &vcpus);
        let d = rr.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("rr", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].vcpu, 0);
        assert_eq!(d.assignments[0].pcpu, 1);
    }

    #[test]
    fn no_idle_pcpus_means_no_action() {
        let mut rr = RoundRobin::new();
        let mut vcpus = vcpus_inactive(2);
        activate(&mut vcpus, 0, 0);
        activate(&mut vcpus, 1, 1);
        let pcpus = pcpus_for(2, &vcpus);
        let d = rr.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(d, ScheduleDecision::none());
    }

    #[test]
    fn resumes_after_deactivation() {
        let mut rr = RoundRobin::new();
        let mut vcpus = vcpus_inactive(2);
        activate(&mut vcpus, 0, 0);
        let d = rr.schedule(&vcpus, &pcpus_for(1, &vcpus), 0, 10);
        assert!(d.assignments.is_empty(), "only PCPU is busy");
        deactivate(&mut vcpus, 0);
        let d = rr.schedule(&vcpus, &pcpus_for(1, &vcpus), 1, 10);
        assert_eq!(d.assignments.len(), 1);
    }

    #[test]
    fn timeslice_is_passed_through() {
        let mut rr = RoundRobin::new();
        let vcpus = vcpus_inactive(1);
        let pcpus = pcpus_for(1, &vcpus);
        let d = rr.schedule(&vcpus, &pcpus, 7, 42);
        assert_eq!(d.assignments[0].timeslice, 42);
    }
}
