//! Simple Earliest Deadline First (SEDF) — one of Xen's three historical
//! schedulers compared by Cherkasova et al. (the paper's reference [8]).
//!
//! Each VCPU receives a *slice* of CPU time every *period*: the pair
//! `(period, slice)` is a soft real-time reservation. Bookkeeping per
//! VCPU: a deadline (end of its current period) and the remaining slice
//! within that period. Scheduling picks, among runnable VCPUs that still
//! have slice left, the one with the **earliest deadline**. When no
//! reserved VCPU is runnable, idle PCPUs are handed out round-robin as
//! *extratime* — SEDF's work-conserving mode.
//!
//! Reservations here are derived from the VM weight: each VM reserves
//! `weight / total_weight` of the host, split equally among its VCPUs.

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// Per-VCPU reservation state.
#[derive(Debug, Clone, Copy, Default)]
struct Reservation {
    /// End of the current period (absolute tick).
    deadline: u64,
    /// Ticks of reserved slice left in the current period.
    remaining: u64,
}

/// The SEDF policy. See the module docs.
#[derive(Debug, Clone)]
pub struct Sedf {
    period: u64,
    reservations: Vec<Reservation>,
    slices: Vec<u64>,
    cursor: usize,
}

impl Sedf {
    /// Creates the policy with the given reservation period in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Sedf {
            period,
            reservations: Vec::new(),
            slices: Vec::new(),
            cursor: 0,
        }
    }

    /// Remaining reserved slice of VCPU `global` in the current period
    /// (test/inspection hook).
    #[must_use]
    pub fn remaining_slice(&self, global: usize) -> u64 {
        self.reservations.get(global).map_or(0, |r| r.remaining)
    }

    fn replenish(&mut self, vcpus: &[VcpuView], pcpus: usize, now: u64) {
        if self.reservations.len() != vcpus.len() {
            self.reservations = vec![Reservation::default(); vcpus.len()];
            self.slices = vec![0; vcpus.len()];
            let num_vms = vcpus.iter().map(|v| v.id.vm + 1).max().unwrap_or(0);
            let mut vm_sizes = vec![0u64; num_vms];
            let mut vm_weights = vec![1u32; num_vms];
            for v in vcpus {
                vm_sizes[v.id.vm] += 1;
                vm_weights[v.id.vm] = v.vm_weight;
            }
            let total_weight: f64 = vm_weights.iter().map(|&w| f64::from(w)).sum();
            for v in vcpus {
                // VM share of the host capacity over one period, split
                // across its VCPUs; at least 1 tick so nobody starves.
                let capacity = pcpus as f64 * self.period as f64;
                let share = capacity * f64::from(vm_weights[v.id.vm])
                    / total_weight
                    / vm_sizes[v.id.vm] as f64;
                self.slices[v.id.global] = (share.floor() as u64).max(1);
            }
        }
        for (g, r) in self.reservations.iter_mut().enumerate() {
            if now >= r.deadline {
                r.deadline = now + self.period;
                r.remaining = self.slices[g];
            }
        }
    }
}

impl SchedulingPolicy for Sedf {
    fn name(&self) -> &str {
        "sedf"
    }

    /// Proportional share: reads `vm_weight`, nothing else.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields {
            vm_weight: true,
            ..ViewFields::none()
        }
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        self.replenish(vcpus, pcpus.len(), timestamp);
        let mut decision = ScheduleDecision::none();
        let mut idle = idle_pcpus(pcpus);
        if idle.is_empty() || vcpus.is_empty() {
            return decision;
        }
        // Reserved pass: earliest deadline first among VCPUs with slice
        // left. The grant is debited from the reservation immediately (the
        // engine runs granted slices to completion, so grant-time
        // accounting is exact and avoids the expiry-tick blind spot of
        // observation-based burning).
        let mut reserved: Vec<usize> = (0..vcpus.len())
            .filter(|&g| vcpus[g].is_schedulable() && self.reservations[g].remaining > 0)
            .collect();
        reserved.sort_by_key(|&g| (self.reservations[g].deadline, g));
        for g in reserved {
            let Some(p) = (!idle.is_empty()).then(|| idle.remove(0)) else {
                break;
            };
            let slice = self.reservations[g].remaining.min(default_timeslice);
            self.reservations[g].remaining -= slice;
            decision.assign(g, p, slice);
        }
        // Extratime pass: leftover PCPUs round-robin to anyone runnable.
        let n = vcpus.len();
        let start = self.cursor;
        for offset in 0..n {
            if idle.is_empty() {
                break;
            }
            let g = (start + offset) % n;
            if !vcpus[g].is_schedulable() || decision.assignments.iter().any(|a| a.vcpu == g) {
                continue;
            }
            let p = idle.remove(0);
            decision.assign(g, p, default_timeslice);
            self.cursor = (g + 1) % n;
        }
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            per_vcpu: self
                .reservations
                .iter()
                .zip(&self.slices)
                .map(|(r, &s)| vec![r.deadline as i64, r.remaining as i64, s as i64])
                .collect(),
            vcpu_ids: vec![self.cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        let [cursor] = state.vcpu_ids.as_slice() else {
            return false;
        };
        if *cursor < 0
            || state
                .per_vcpu
                .iter()
                .any(|row| row.len() != 3 || row.iter().any(|&w| w < 0))
        {
            return false;
        }
        self.reservations = state
            .per_vcpu
            .iter()
            .map(|row| Reservation {
                deadline: row[0] as u64,
                remaining: row[1] as u64,
            })
            .collect();
        self.slices = state.per_vcpu.iter().map(|row| row[2] as u64).collect();
        self.cursor = *cursor as usize;
        true
    }

    // NOT rotation-equivariant: the reserved pass breaks deadline ties on
    // the raw global index `(deadline, g)`, which a cyclic shift reorders
    // (all deadlines coincide at start-up, so the ties are real).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{pcpus_for, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn earliest_deadline_wins() {
        let mut sedf = Sedf::new(100);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        let pcpus1 = pcpus_for(1, &vcpus);
        // Initialize reservations; both deadlines equal at first.
        let d = sedf.schedule(&vcpus, &pcpus1, 0, 10);
        assert_eq!(d.assignments.len(), 1);
        // Force VCPU 0's deadline later by exhausting its period.
        sedf.reservations[0].deadline = 300;
        sedf.reservations[0].remaining = 5;
        sedf.reservations[1].deadline = 150;
        sedf.reservations[1].remaining = 5;
        vcpus[0].status = crate::types::VcpuStatus::Inactive;
        let d = sedf.schedule(&vcpus, &pcpus_for(1, &vcpus), 1, 10);
        assert_eq!(d.assignments[0].vcpu, 1, "earlier deadline first");
    }

    #[test]
    fn reservation_slice_caps_the_grant() {
        let mut sedf = Sedf::new(50);
        let vcpus = vcpus_with_vms(&[1]);
        let pcpus = pcpus_for(1, &vcpus);
        let _ = sedf.schedule(&vcpus, &pcpus, 0, 30);
        sedf.reservations[0].remaining = 3;
        let d = sedf.schedule(&vcpus, &pcpus, 1, 30);
        assert_eq!(d.assignments[0].timeslice, 3, "grant capped by slice");
        assert_eq!(sedf.remaining_slice(0), 0, "grant debited immediately");
    }

    #[test]
    fn extratime_keeps_pcpus_busy() {
        let mut sedf = Sedf::new(50);
        let vcpus = vcpus_with_vms(&[1, 1]);
        let pcpus = pcpus_for(3, &vcpus);
        let _ = sedf.schedule(&vcpus, &pcpus, 0, 10);
        // Exhaust all reservations: extratime must still assign.
        sedf.reservations.iter_mut().for_each(|r| r.remaining = 0);
        let d = sedf.schedule(&vcpus, &pcpus, 1, 10);
        assert_eq!(d.assignments.len(), 2, "work conserving");
        validate_decision("sedf", &vcpus, &pcpus, &d).unwrap();
    }

    #[test]
    fn grants_consume_reservation() {
        let mut sedf = Sedf::new(50);
        let vcpus = vcpus_with_vms(&[1]);
        let pcpus = pcpus_for(1, &vcpus);
        let d = sedf.schedule(&vcpus, &pcpus, 0, 10);
        // One PCPU reserved for 50/50 ticks of the period; the 10-tick
        // grant is debited up front.
        assert_eq!(d.assignments[0].timeslice, 10);
        assert_eq!(sedf.remaining_slice(0), 40);
    }

    #[test]
    fn replenish_at_period_boundary() {
        let mut sedf = Sedf::new(10);
        let vcpus = vcpus_with_vms(&[1]);
        let pcpus = pcpus_for(1, &vcpus);
        let d = sedf.schedule(&vcpus, &pcpus, 0, 30);
        assert_eq!(d.assignments.len(), 1, "whole period granted at once");
        assert_eq!(sedf.remaining_slice(0), 0);
        // Mid-period the reservation is exhausted: only extratime remains,
        // and with one runnable VCPU the grant comes from that pass.
        let d = sedf.schedule(&vcpus, &pcpus, 5, 30);
        assert_eq!(d.assignments.len(), 1, "work-conserving extratime");
        assert_eq!(sedf.remaining_slice(0), 0, "extratime does not debit");
        // At the deadline the reservation refills and is granted afresh.
        let d = sedf.schedule(&vcpus, &pcpus, 10, 30);
        assert_eq!(d.assignments[0].timeslice, 10, "reserved grant resumed");
    }

    #[test]
    fn weighted_vm_gets_bigger_slice() {
        let mut sedf = Sedf::new(100);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        vcpus[0].vm_weight = 3;
        let pcpus = pcpus_for(1, &vcpus);
        let _ = sedf.schedule(&vcpus, &pcpus, 0, 10);
        assert!(
            sedf.slices[0] > sedf.slices[1] * 2,
            "weight-3 reservation: {:?}",
            sedf.slices
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = Sedf::new(0);
    }
}
