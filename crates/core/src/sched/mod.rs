//! Pluggable VCPU scheduling algorithms.
//!
//! The paper exposes scheduling algorithms through a C function-call
//! interface:
//!
//! ```c
//! bool schedule(VCPU_host_external* vcpus, int num_vcpu,
//!               PCPU_external* pcpus, int num_pcpu, long timestamp)
//! ```
//!
//! The Rust analogue is [`SchedulingPolicy`]: once per clock tick the
//! hypervisor hands the policy a snapshot of every VCPU ([`VcpuView`]) and
//! PCPU ([`PcpuView`]) plus the timestamp, and the policy returns a
//! [`ScheduleDecision`] — which VCPUs to assign to which PCPUs (with a
//! timeslice) and which to preempt. The engine validates the decision
//! against the model invariants before applying it, so a buggy user
//! algorithm fails loudly instead of silently corrupting state.
//!
//! Built-in policies: [`RoundRobin`] (RRS), [`StrictCo`] (SCS),
//! [`RelaxedCo`] (RCS), [`Balance`], [`Credit`], [`Sedf`], [`Bvt`],
//! [`Fcfs`].

mod balance;
mod bvt;
mod credit;
mod fault;
mod fcfs;
mod rcs;
mod rrs;
mod scs;
mod sedf;

pub use balance::Balance;
pub use bvt::Bvt;
pub use credit::Credit;
pub use fault::FaultInjection;
pub use fcfs::Fcfs;
pub use rcs::RelaxedCo;
pub use rrs::RoundRobin;
pub use scs::StrictCo;
pub use sedf::Sedf;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::types::{PcpuView, VcpuView};

/// One PCPU-to-VCPU assignment produced by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Global index of the VCPU to schedule in.
    pub vcpu: usize,
    /// PCPU to assign.
    pub pcpu: usize,
    /// Ticks the VCPU may keep the PCPU.
    pub timeslice: u64,
}

/// The output of one scheduling invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleDecision {
    /// VCPUs to preempt (schedule out) this tick, before assignments.
    pub preemptions: Vec<usize>,
    /// New assignments, applied after preemptions.
    pub assignments: Vec<Assignment>,
}

impl ScheduleDecision {
    /// An empty decision (change nothing).
    #[must_use]
    pub fn none() -> Self {
        ScheduleDecision::default()
    }

    /// Convenience: records an assignment.
    pub fn assign(&mut self, vcpu: usize, pcpu: usize, timeslice: u64) {
        self.assignments.push(Assignment {
            vcpu,
            pcpu,
            timeslice,
        });
    }

    /// Convenience: records a preemption.
    pub fn preempt(&mut self, vcpu: usize) {
        self.preemptions.push(vcpu);
    }
}

/// The [`VcpuView`] fields a policy declares it reads — its **snapshot
/// view** contract, checked statically by `vsched-analyze`'s policy lint.
///
/// Structural fields (`id`, `status`, `assigned_pcpu`) are always readable
/// and are not part of the declaration: every policy must consult the
/// status to find schedulable VCPUs. The declarable fields are the
/// *payload* fields whose values could silently couple a policy to model
/// internals it was not designed around.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewFields {
    /// Reads `VcpuView::remaining_load`.
    pub remaining_load: bool,
    /// Reads `VcpuView::sync_point`.
    pub sync_point: bool,
    /// Reads `VcpuView::timeslice_remaining`.
    pub timeslice_remaining: bool,
    /// Reads `VcpuView::last_scheduled_in`.
    pub last_scheduled_in: bool,
    /// Reads `VcpuView::vm_weight`.
    pub vm_weight: bool,
}

impl ViewFields {
    /// No payload fields — the policy decides from status/assignment alone.
    #[must_use]
    pub fn none() -> Self {
        ViewFields::default()
    }

    /// Every payload field (the conservative default for user policies).
    #[must_use]
    pub fn all() -> Self {
        ViewFields {
            remaining_load: true,
            sync_point: true,
            timeslice_remaining: true,
            last_scheduled_in: true,
            vm_weight: true,
        }
    }

    /// Names of the declared fields, for diagnostics.
    #[must_use]
    pub fn declared(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.remaining_load {
            out.push("remaining_load");
        }
        if self.sync_point {
            out.push("sync_point");
        }
        if self.timeslice_remaining {
            out.push("timeslice_remaining");
        }
        if self.last_scheduled_in {
            out.push("last_scheduled_in");
        }
        if self.vm_weight {
            out.push("vm_weight");
        }
        out
    }
}

/// A structured snapshot of a policy's internal state, used by the
/// exhaustive-state verifier (`vsched verify`) to branch exploration: the
/// policy is saved at every stable state and restored before probing each
/// successor, so hidden cursors and counters are part of the explored
/// state, not an accident of visit order.
///
/// The split into index-free scalars, per-VCPU rows, per-VM rows, and
/// id-valued words exists so the verifier can apply a VM rotation to the
/// snapshot without knowing anything about the concrete policy: `per_vcpu`
/// / `per_vm` rows rotate positionally, `vcpu_ids` / `vm_ids` *values* are
/// remapped, and `global` is untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyState {
    /// Index-free scalars (accumulated clocks, phase flags, ...).
    pub global: Vec<i64>,
    /// One row per VCPU in global-id order. May be empty when the policy
    /// keeps no per-VCPU state (or has not lazily sized it yet); otherwise
    /// its length must equal the VCPU count.
    pub per_vcpu: Vec<Vec<i64>>,
    /// One row per VM. Same length contract as `per_vcpu`.
    pub per_vm: Vec<Vec<i64>>,
    /// Words whose *values* are VCPU global ids (cursors, queue entries);
    /// `-1` encodes "none". Variable length.
    pub vcpu_ids: Vec<i64>,
    /// Words whose values are VM indices; `-1` encodes "none".
    pub vm_ids: Vec<i64>,
}

impl PolicyState {
    /// Appends an unambiguous flat encoding (every section is
    /// length-prefixed) — the verifier hashes this alongside the marking.
    pub fn encode_into(&self, out: &mut Vec<i64>) {
        let push_rows = |out: &mut Vec<i64>, rows: &[Vec<i64>]| {
            out.push(rows.len() as i64);
            for row in rows {
                out.push(row.len() as i64);
                out.extend_from_slice(row);
            }
        };
        out.push(self.global.len() as i64);
        out.extend_from_slice(&self.global);
        push_rows(out, &self.per_vcpu);
        push_rows(out, &self.per_vm);
        out.push(self.vcpu_ids.len() as i64);
        out.extend_from_slice(&self.vcpu_ids);
        out.push(self.vm_ids.len() as i64);
        out.extend_from_slice(&self.vm_ids);
    }

    /// The image of this snapshot under the VM rotation that shifts VM `v`
    /// to `v + vm_shift` (and therefore VCPU `g` to `g + vcpu_shift`, all
    /// modulo the respective counts — valid only when every VM has the
    /// same shape, which is when the verifier uses rotations at all).
    ///
    /// # Panics
    ///
    /// Panics if a per-VCPU/per-VM section is non-empty but does not match
    /// the given counts — such a snapshot cannot be rotated soundly.
    #[must_use]
    pub fn rotated(
        &self,
        vcpu_shift: usize,
        num_vcpus: usize,
        vm_shift: usize,
        num_vms: usize,
    ) -> PolicyState {
        fn rotate_rows(rows: &[Vec<i64>], shift: usize, n: usize, what: &str) -> Vec<Vec<i64>> {
            if rows.is_empty() {
                return Vec::new();
            }
            assert_eq!(rows.len(), n, "cannot rotate partial {what} state");
            let mut out = vec![Vec::new(); n];
            for (i, row) in rows.iter().enumerate() {
                out[(i + shift) % n] = row.clone();
            }
            out
        }
        let remap = |ids: &[i64], shift: usize, n: usize| {
            ids.iter()
                .map(|&v| {
                    if v >= 0 {
                        (v as usize + shift) as i64 % n as i64
                    } else {
                        v
                    }
                })
                .collect()
        };
        PolicyState {
            global: self.global.clone(),
            per_vcpu: rotate_rows(&self.per_vcpu, vcpu_shift, num_vcpus, "per-VCPU"),
            per_vm: rotate_rows(&self.per_vm, vm_shift, num_vms, "per-VM"),
            vcpu_ids: remap(&self.vcpu_ids, vcpu_shift, num_vcpus),
            vm_ids: remap(&self.vm_ids, vm_shift, num_vms),
        }
    }
}

/// A VCPU scheduling algorithm.
///
/// Implementations may keep arbitrary internal state (round-robin cursors,
/// per-VCPU skew counters, credits) across invocations; the engine calls
/// [`SchedulingPolicy::schedule`] exactly once per clock tick.
///
/// `Send` is required because the built model (which owns the policy
/// inside the `Scheduling_Func` gate closure) may be shared with shard
/// worker threads.
pub trait SchedulingPolicy: Send {
    /// Human-readable name used in reports and error messages.
    fn name(&self) -> &str;

    /// Decides PCPU assignments for this tick.
    ///
    /// * `vcpus` — every VCPU in the system, indexed by global id;
    /// * `pcpus` — every PCPU, indexed by id;
    /// * `timestamp` — the current tick (the paper's `timestamp` argument);
    /// * `default_timeslice` — the configured timeslice, which policies
    ///   typically pass through to their assignments.
    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision;

    /// The [`VcpuView`] payload fields this policy reads (its snapshot-view
    /// contract). The default declares **everything**, which is always
    /// sound; built-in policies narrow it so `vsched-analyze` can verify
    /// the declaration by sensitivity probing.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::all()
    }

    /// Snapshots the policy's internal state for the exhaustive-state
    /// verifier. `None` (the default) declares snapshotting unsupported,
    /// which makes `vsched verify` refuse the policy as *inconclusive*
    /// rather than silently explore an unsound graph. Every built-in
    /// implements it.
    fn save_state(&self) -> Option<PolicyState> {
        None
    }

    /// Restores a snapshot previously produced by
    /// [`SchedulingPolicy::save_state`] on a policy of the same kind and
    /// parameters. Returns `false` if the snapshot shape is foreign.
    fn load_state(&mut self, state: &PolicyState) -> bool {
        let _ = state;
        false
    }

    /// Whether the policy's decisions commute with a cyclic rotation of
    /// *identical* VMs: rotating the VCPU views, PCPU-held ids, and the
    /// [`PolicyState`] must yield the rotated decision. This is the
    /// license the verifier needs to quotient the state graph by VM
    /// rotation; declaring `false` (the default) merely disables the
    /// reduction. Policies that break ties on raw global indices (SEDF,
    /// BVT, FCFS) are **not** equivariant and must keep the default.
    fn rotation_equivariant(&self) -> bool {
        false
    }
}

/// Checks a decision against the model invariants — the **decision
/// invariant** of the `vsched-check` catalogue (see DESIGN.md §11).
///
/// Both engines gate every [`ScheduleDecision`] through this function
/// before applying it, so it runs on every tick of every simulation, not
/// only under the fuzzer; the `vsched-check` crate re-exports it as the
/// first entry of its invariant catalogue and layers the *state*
/// invariants (exclusive assignment, transition legality, gang atomicity,
/// skew bound, accounting closure) on top via the
/// [`crate::observe::TickObserver`] hook.
///
/// Invariants:
///
/// 1. preempted VCPUs must currently be ACTIVE;
/// 2. assigned VCPUs must be INACTIVE and not also preempted this tick;
/// 3. no VCPU may receive two assignments — one VCPU on two PCPUs would
///    silently double its service share;
/// 4. each target PCPU must be IDLE (or freed by a preemption this tick)
///    and may be assigned at most once;
/// 5. every timeslice must be at least one tick.
///
/// # Errors
///
/// [`CoreError::PolicyViolation`] naming the policy and the violated
/// invariant.
pub fn validate_decision(
    policy_name: &str,
    vcpus: &[VcpuView],
    pcpus: &[PcpuView],
    decision: &ScheduleDecision,
) -> Result<(), CoreError> {
    let violation = |reason: String| CoreError::PolicyViolation {
        policy: policy_name.to_string(),
        reason,
    };
    let mut freed = vec![false; pcpus.len()];
    let mut preempted = vec![false; vcpus.len()];
    for &v in &decision.preemptions {
        let view = vcpus
            .get(v)
            .ok_or_else(|| violation(format!("preemption of unknown VCPU index {v}")))?;
        if preempted[v] {
            return Err(violation(format!("VCPU {v} preempted twice")));
        }
        preempted[v] = true;
        match view.assigned_pcpu {
            Some(p) => freed[p] = true,
            None => {
                return Err(violation(format!(
                    "preempted VCPU {v} is not ACTIVE (status {:?})",
                    view.status
                )))
            }
        }
    }
    let mut pcpu_taken = vec![false; pcpus.len()];
    let mut vcpu_assigned = vec![false; vcpus.len()];
    for a in &decision.assignments {
        let view = vcpus
            .get(a.vcpu)
            .ok_or_else(|| violation(format!("assignment of unknown VCPU index {}", a.vcpu)))?;
        if a.pcpu >= pcpus.len() {
            return Err(violation(format!("assignment to unknown PCPU {}", a.pcpu)));
        }
        if a.timeslice == 0 {
            return Err(violation(format!(
                "VCPU {} assigned a zero timeslice",
                a.vcpu
            )));
        }
        if preempted[a.vcpu] {
            return Err(violation(format!(
                "VCPU {} both preempted and assigned in one tick",
                a.vcpu
            )));
        }
        if !view.is_schedulable() {
            return Err(violation(format!(
                "assigned VCPU {} is not INACTIVE (status {:?})",
                a.vcpu, view.status
            )));
        }
        if vcpu_assigned[a.vcpu] {
            return Err(violation(format!("VCPU {} assigned twice", a.vcpu)));
        }
        vcpu_assigned[a.vcpu] = true;
        let idle = pcpus[a.pcpu].is_idle() || freed[a.pcpu];
        if !idle || pcpu_taken[a.pcpu] {
            return Err(violation(format!("PCPU {} is not available", a.pcpu)));
        }
        pcpu_taken[a.pcpu] = true;
    }
    Ok(())
}

/// Collects the indices of currently idle PCPUs.
#[must_use]
pub(crate) fn idle_pcpus(pcpus: &[PcpuView]) -> Vec<usize> {
    pcpus.iter().filter(|p| p.is_idle()).map(|p| p.id).collect()
}

/// The built-in algorithms, as data — convenient for experiment configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Round-Robin Scheduling (the paper's RRS).
    RoundRobin,
    /// Strict Co-Scheduling (the paper's SCS).
    StrictCo,
    /// Relaxed Co-Scheduling (the paper's RCS).
    RelaxedCo {
        /// Skew at which a VM enters catch-up mode (leaders co-stopped,
        /// laggard fast-tracked).
        skew_threshold: u64,
        /// Skew below which the laggard is considered caught up.
        skew_resume: u64,
    },
    /// Balance scheduling (Sukwong & Kim) — spreads sibling VCPUs.
    Balance,
    /// Xen-like proportional-share credit scheduler.
    Credit {
        /// Credit refill period in ticks.
        refill_period: u64,
    },
    /// Xen's Simple Earliest Deadline First scheduler (the paper's
    /// reference \[8\]).
    Sedf {
        /// Reservation period in ticks.
        period: u64,
    },
    /// Borrowed Virtual Time (the paper's reference \[8\], via Duda &
    /// Cheriton).
    Bvt {
        /// Maximum wake-up lag in weighted virtual-time units.
        max_lag: u64,
    },
    /// First-come-first-served run queue.
    Fcfs,
    /// Fault-injection wrapper: behaves as `inner` until tick `at_tick`,
    /// then deliberately emits an invalid decision (a preemption of an
    /// out-of-range VCPU index), which both engines reject as a
    /// [`CoreError::PolicyViolation`] — the direct engine by erroring out,
    /// the SAN by halting into a dead marking. Not part of
    /// [`PolicyKind::all`]: it exists so planted-failure fixtures
    /// (`vsched verify --fixture deadlock`, reproducer round-trip tests)
    /// can be expressed in the ordinary case vocabulary.
    Fault {
        /// Tick at which the wrapper sabotages the decision.
        at_tick: u64,
        /// The policy emulated before the fault.
        inner: Box<PolicyKind>,
    },
}

impl PolicyKind {
    /// The paper's RCS with default thresholds (co-stop at a 5-tick lead,
    /// resume at 2 — divergence is corrected within a fraction of the
    /// default 30-tick timeslice, long before a round-robin rotation
    /// would).
    #[must_use]
    pub fn relaxed_co_default() -> Self {
        PolicyKind::RelaxedCo {
            skew_threshold: 5,
            skew_resume: 2,
        }
    }

    /// The credit scheduler with its default 30-tick refill period.
    #[must_use]
    pub fn credit_default() -> Self {
        PolicyKind::Credit { refill_period: 30 }
    }

    /// SEDF with its default 100-tick reservation period.
    #[must_use]
    pub fn sedf_default() -> Self {
        PolicyKind::Sedf { period: 100 }
    }

    /// BVT with its default wake-up lag of 3000 weighted units
    /// (≈ 3 ticks of a weight-1 VCPU).
    #[must_use]
    pub fn bvt_default() -> Self {
        PolicyKind::Bvt { max_lag: 3_000 }
    }

    /// The three algorithms evaluated by the paper, in figure order.
    #[must_use]
    pub fn paper_trio() -> Vec<PolicyKind> {
        vec![
            PolicyKind::RoundRobin,
            PolicyKind::StrictCo,
            PolicyKind::relaxed_co_default(),
        ]
    }

    /// The canonical registry: every built-in algorithm, with default
    /// parameters, in declaration order. This is the one list the fuzz
    /// case generator, `vsched lint`, `vsched policies`, and the policy
    /// tournament all draw from — a new variant added here is picked up
    /// by all of them at once.
    #[must_use]
    pub fn all() -> Vec<PolicyKind> {
        vec![
            PolicyKind::RoundRobin,
            PolicyKind::StrictCo,
            PolicyKind::relaxed_co_default(),
            PolicyKind::Balance,
            PolicyKind::credit_default(),
            PolicyKind::sedf_default(),
            PolicyKind::bvt_default(),
            PolicyKind::Fcfs,
        ]
    }

    /// Instantiates a fresh policy object.
    #[must_use]
    pub fn create(&self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PolicyKind::StrictCo => Box::new(StrictCo::new()),
            PolicyKind::RelaxedCo {
                skew_threshold,
                skew_resume,
            } => Box::new(RelaxedCo::new(*skew_threshold, *skew_resume)),
            PolicyKind::Balance => Box::new(Balance::new()),
            PolicyKind::Credit { refill_period } => Box::new(Credit::new(*refill_period)),
            PolicyKind::Sedf { period } => Box::new(Sedf::new(*period)),
            PolicyKind::Bvt { max_lag } => Box::new(Bvt::new(*max_lag)),
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::Fault { at_tick, inner } => {
                Box::new(FaultInjection::new(*at_tick, inner.create()))
            }
        }
    }

    /// Validates the kind's parameters — the static range contract every
    /// config loader runs before [`PolicyKind::create`] (whose constructors
    /// may otherwise panic, e.g. [`RelaxedCo::new`] asserts its thresholds).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the offending parameter:
    ///
    /// * RCS: `skew_threshold` must be ≥ 1 and `skew_resume` ≤
    ///   `skew_threshold`;
    /// * Credit: `refill_period` must be ≥ 1;
    /// * SEDF: `period` must be ≥ 1.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: String| Err(CoreError::InvalidConfig { reason });
        match self {
            PolicyKind::RelaxedCo {
                skew_threshold,
                skew_resume,
            } => {
                if *skew_threshold == 0 {
                    return invalid("RCS skew_threshold must be at least 1".into());
                }
                if skew_resume > skew_threshold {
                    return invalid(format!(
                        "RCS skew_resume ({skew_resume}) must not exceed \
                         skew_threshold ({skew_threshold})"
                    ));
                }
                Ok(())
            }
            PolicyKind::Credit { refill_period } if *refill_period == 0 => {
                invalid("credit refill_period must be at least 1".into())
            }
            PolicyKind::Sedf { period } if *period == 0 => {
                invalid("SEDF period must be at least 1".into())
            }
            PolicyKind::Fault { inner, .. } => {
                if matches!(**inner, PolicyKind::Fault { .. }) {
                    return invalid("fault-injection wrappers must not nest".into());
                }
                inner.validate()
            }
            _ => Ok(()),
        }
    }

    /// Short label used in tables (RRS / SCS / RCS / BAL / CRD / FCFS).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "RRS",
            PolicyKind::StrictCo => "SCS",
            PolicyKind::RelaxedCo { .. } => "RCS",
            PolicyKind::Balance => "BAL",
            PolicyKind::Credit { .. } => "CRD",
            PolicyKind::Sedf { .. } => "SEDF",
            PolicyKind::Bvt { .. } => "BVT",
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Fault { .. } => "FAULT",
        }
    }

    /// One-line description for registry listings (`vsched policies`).
    #[must_use]
    pub fn describe(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => {
                "round-robin over ready VCPUs, oldest-waiting first (paper baseline)"
            }
            PolicyKind::StrictCo => {
                "strict co-scheduling: a VM runs only when all siblings can run together"
            }
            PolicyKind::RelaxedCo { .. } => {
                "relaxed co-scheduling: siblings run independently until skew exceeds a threshold"
            }
            PolicyKind::Balance => {
                "balance scheduling: spreads sibling VCPUs across distinct PCPUs"
            }
            PolicyKind::Credit { .. } => {
                "Xen-like proportional-share credit scheduler with periodic refill"
            }
            PolicyKind::Sedf { .. } => {
                "simple earliest-deadline-first with per-VM reservation periods"
            }
            PolicyKind::Bvt { .. } => {
                "borrowed virtual time: weighted fair queueing with bounded wake-up lag"
            }
            PolicyKind::Fcfs => "first-come-first-served run queue, no rotation",
            PolicyKind::Fault { .. } => {
                "fault-injection wrapper: inner policy until a chosen tick, then an invalid decision"
            }
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared fixtures for policy unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use crate::types::{PcpuView, VcpuId, VcpuStatus, VcpuView};

    /// Builds all-INACTIVE VCPU views for VMs of the given sizes.
    pub(crate) fn vcpus_with_vms(sizes: &[usize]) -> Vec<VcpuView> {
        let mut views = Vec::new();
        for (vm, &n) in sizes.iter().enumerate() {
            for sibling in 0..n {
                views.push(VcpuView {
                    id: VcpuId {
                        vm,
                        sibling,
                        global: views.len(),
                    },
                    status: VcpuStatus::Inactive,
                    remaining_load: 0,
                    sync_point: false,
                    assigned_pcpu: None,
                    timeslice_remaining: 0,
                    last_scheduled_in: None,
                    vm_weight: 1,
                    present: true,
                });
            }
        }
        views
    }

    /// `n` single-VCPU VMs, all INACTIVE.
    pub(crate) fn vcpus_inactive(n: usize) -> Vec<VcpuView> {
        vcpus_with_vms(&vec![1; n])
    }

    /// Marks VCPU `v` as running on PCPU `pcpu`.
    pub(crate) fn activate(vcpus: &mut [VcpuView], v: usize, pcpu: usize) {
        vcpus[v].status = VcpuStatus::Busy;
        vcpus[v].assigned_pcpu = Some(pcpu);
        vcpus[v].timeslice_remaining = 5;
    }

    /// Marks VCPU `v` as scheduled out.
    pub(crate) fn deactivate(vcpus: &mut [VcpuView], v: usize) {
        vcpus[v].status = VcpuStatus::Inactive;
        vcpus[v].assigned_pcpu = None;
        vcpus[v].timeslice_remaining = 0;
    }

    /// Derives `n` PCPU views consistent with the VCPUs' `assigned_pcpu`.
    pub(crate) fn pcpus_for(n: usize, vcpus: &[VcpuView]) -> Vec<PcpuView> {
        (0..n)
            .map(|id| PcpuView {
                id,
                assigned: vcpus
                    .iter()
                    .find(|v| v.assigned_pcpu == Some(id))
                    .map(|v| v.id),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{VcpuId, VcpuStatus};

    fn vcpu(global: usize, status: VcpuStatus, pcpu: Option<usize>) -> VcpuView {
        VcpuView {
            id: VcpuId {
                vm: 0,
                sibling: global,
                global,
            },
            status,
            remaining_load: 0,
            sync_point: false,
            assigned_pcpu: pcpu,
            timeslice_remaining: if pcpu.is_some() { 5 } else { 0 },
            last_scheduled_in: None,
            vm_weight: 1,
            present: true,
        }
    }

    fn pcpu(id: usize, assigned: Option<usize>) -> PcpuView {
        PcpuView {
            id,
            assigned: assigned.map(|g| VcpuId {
                vm: 0,
                sibling: g,
                global: g,
            }),
        }
    }

    #[test]
    fn valid_assignment_passes() {
        let vcpus = [vcpu(0, VcpuStatus::Inactive, None)];
        let pcpus = [pcpu(0, None)];
        let mut d = ScheduleDecision::none();
        d.assign(0, 0, 10);
        validate_decision("t", &vcpus, &pcpus, &d).unwrap();
    }

    #[test]
    fn preempt_then_reuse_pcpu_passes() {
        let vcpus = [
            vcpu(0, VcpuStatus::Ready, Some(0)),
            vcpu(1, VcpuStatus::Inactive, None),
        ];
        let pcpus = [pcpu(0, Some(0))];
        let mut d = ScheduleDecision::none();
        d.preempt(0);
        d.assign(1, 0, 10);
        validate_decision("t", &vcpus, &pcpus, &d).unwrap();
    }

    #[test]
    fn rejects_double_pcpu_use() {
        let vcpus = [
            vcpu(0, VcpuStatus::Inactive, None),
            vcpu(1, VcpuStatus::Inactive, None),
        ];
        let pcpus = [pcpu(0, None)];
        let mut d = ScheduleDecision::none();
        d.assign(0, 0, 10);
        d.assign(1, 0, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_busy_pcpu() {
        let vcpus = [
            vcpu(0, VcpuStatus::Busy, Some(0)),
            vcpu(1, VcpuStatus::Inactive, None),
        ];
        let pcpus = [pcpu(0, Some(0))];
        let mut d = ScheduleDecision::none();
        d.assign(1, 0, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_assigning_active_vcpu() {
        let vcpus = [vcpu(0, VcpuStatus::Ready, Some(0))];
        let pcpus = [pcpu(0, Some(0)), pcpu(1, None)];
        let mut d = ScheduleDecision::none();
        d.assign(0, 1, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_preempting_inactive_vcpu() {
        let vcpus = [vcpu(0, VcpuStatus::Inactive, None)];
        let pcpus = [pcpu(0, None)];
        let mut d = ScheduleDecision::none();
        d.preempt(0);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_zero_timeslice_and_unknown_indices() {
        let vcpus = [vcpu(0, VcpuStatus::Inactive, None)];
        let pcpus = [pcpu(0, None)];
        let mut d = ScheduleDecision::none();
        d.assign(0, 0, 0);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());

        let mut d = ScheduleDecision::none();
        d.assign(5, 0, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());

        let mut d = ScheduleDecision::none();
        d.assign(0, 5, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());

        let mut d = ScheduleDecision::none();
        d.preempt(5);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_assign_and_preempt_same_vcpu() {
        let vcpus = [vcpu(0, VcpuStatus::Ready, Some(0))];
        let pcpus = [pcpu(0, Some(0))];
        let mut d = ScheduleDecision::none();
        d.preempt(0);
        d.assign(0, 0, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn rejects_double_preempt_and_double_assign() {
        let vcpus = [
            vcpu(0, VcpuStatus::Ready, Some(0)),
            vcpu(1, VcpuStatus::Inactive, None),
        ];
        let pcpus = [pcpu(0, Some(0)), pcpu(1, None)];
        let mut d = ScheduleDecision::none();
        d.preempt(0);
        d.preempt(0);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());

        let mut d = ScheduleDecision::none();
        d.assign(1, 0, 10);
        d.assign(1, 1, 10);
        assert!(validate_decision("t", &vcpus, &pcpus, &d).is_err());
    }

    #[test]
    fn policy_kind_factory_and_labels() {
        for kind in PolicyKind::all() {
            let policy = kind.create();
            assert!(!policy.name().is_empty());
            assert!(!kind.label().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(PolicyKind::paper_trio().len(), 3);
    }

    #[test]
    fn registry_is_canonical() {
        let all = PolicyKind::all();
        assert_eq!(all.len(), 8, "every built-in kind appears once");
        // Labels are pairwise distinct — the registry doubles as a lookup
        // table for `vsched policies` and the tournament.
        let labels: std::collections::HashSet<_> = all.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), all.len());
        // Default parameters all validate and instantiate.
        for kind in &all {
            kind.validate().unwrap();
        }
        // The paper trio is a prefix-preserving subset of the registry.
        for kind in PolicyKind::paper_trio() {
            assert!(all.contains(&kind));
        }
    }

    #[test]
    fn idle_pcpu_helper() {
        let pcpus = [pcpu(0, Some(1)), pcpu(1, None), pcpu(2, None)];
        assert_eq!(idle_pcpus(&pcpus), vec![1, 2]);
    }
}
