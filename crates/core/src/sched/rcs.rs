//! Relaxed Co-Scheduling (RCS).
//!
//! The paper (after VMware ESX 3/4 [2]): "This algorithm makes its best
//! effort to perform co-starts and co-stops when resources are available.
//! In case there are not enough resources to perform a co-start, it allows
//! a single VCPU to be scheduled. The scheduler maintains a cumulative skew
//! for each VCPU, compared to the rest of VCPUs in the same VM. When the
//! skew of a VCPU grows above a certain threshold, it is forced to schedule
//! in the co-start manner only (until the skew drops below a pre-defined
//! threshold). This relaxed co-scheduling mitigates the CPU fragmentation
//! problem, but it introduces synchronization latency as a trade-off."
//!
//! Mechanics (the ESX 3.x/4.x design the paper cites):
//!
//! * **Progress accounting** — each VCPU's progress counter advances every
//!   tick it holds a PCPU. A VCPU's *skew* is its progress lead over the
//!   slowest sibling in the same VM.
//! * **Best effort** — idle PCPUs are granted round-robin across VMs; a VM
//!   offers its most-behind runnable VCPU first, so a gang co-starts
//!   whenever enough PCPUs are free, and single starts are allowed when
//!   they are not (no fragmentation).
//! * **Co-stop** — when a VCPU's skew exceeds `skew_threshold`, it is a
//!   *leader*: it is preempted (its PCPU freed on the spot) and may not be
//!   rescheduled until the lagging siblings catch up — its skew falling
//!   back below `skew_resume`. This is the "forced co-start" of the paper:
//!   the gang can only re-form around the laggard.
//!
//! Co-stopping leaders is what caps the synchronization latency: under
//! round-robin, a preempted lock holder leaves its siblings burning READY
//! time for a whole timeslice rotation; RCS detects the divergence after
//! `skew_threshold` ticks, parks the waiters (freeing their PCPUs for
//! other VMs), and the holder — now the most-behind VCPU of its VM — is
//! first in line when its VM's turn comes.

use crate::sched::scs::vcpus_by_vm;
use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The Relaxed Co-Scheduling policy. See the module docs.
#[derive(Debug, Clone)]
pub struct RelaxedCo {
    skew_threshold: u64,
    skew_resume: u64,
    /// Cumulative PCPU time per global VCPU index (grown lazily).
    progress: Vec<u64>,
    /// Leaders currently forbidden from running (co-stopped).
    stopped: Vec<bool>,
    vm_cursor: usize,
}

impl RelaxedCo {
    /// Creates the policy.
    ///
    /// `skew_threshold` is the progress lead (in ticks) at which a VCPU is
    /// co-stopped; `skew_resume` (≤ threshold) is the lead below which it
    /// may run again.
    ///
    /// # Panics
    ///
    /// Panics if `skew_resume > skew_threshold`.
    #[must_use]
    pub fn new(skew_threshold: u64, skew_resume: u64) -> Self {
        assert!(
            skew_resume <= skew_threshold,
            "skew_resume ({skew_resume}) must not exceed skew_threshold ({skew_threshold})"
        );
        RelaxedCo {
            skew_threshold,
            skew_resume,
            progress: Vec::new(),
            stopped: Vec::new(),
            vm_cursor: 0,
        }
    }

    /// Current skew (progress lead over the slowest sibling) of VCPU
    /// `global` among `siblings` — inspection hook used by tests.
    #[must_use]
    pub fn skew_of(&self, global: usize, siblings: &[usize]) -> u64 {
        let p = |g: usize| self.progress.get(g).copied().unwrap_or(0);
        let min = siblings.iter().map(|&g| p(g)).min().unwrap_or(0);
        p(global).saturating_sub(min)
    }

    /// Whether VCPU `global` is currently co-stopped.
    #[must_use]
    pub fn is_co_stopped(&self, global: usize) -> bool {
        self.stopped.get(global).copied().unwrap_or(false)
    }

    fn update_accounting(&mut self, vcpus: &[VcpuView], groups: &[Vec<usize>]) {
        self.progress.resize(vcpus.len(), 0);
        self.stopped.resize(vcpus.len(), false);
        for v in vcpus {
            if v.status.is_active() {
                self.progress[v.id.global] += 1;
            }
        }
        for gang in groups {
            if gang.len() < 2 {
                continue; // a lone VCPU has no siblings to skew against
            }
            let min = gang
                .iter()
                .map(|&g| self.progress[g])
                .min()
                .expect("gang is non-empty");
            for &g in gang {
                let lead = self.progress[g] - min;
                if lead > self.skew_threshold {
                    self.stopped[g] = true;
                } else if lead <= self.skew_resume {
                    self.stopped[g] = false;
                }
            }
        }
    }
}

impl SchedulingPolicy for RelaxedCo {
    fn name(&self) -> &str {
        "relaxed-co"
    }

    /// Decides from status and assignment alone — no payload fields.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::none()
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let groups = vcpus_by_vm(vcpus);
        self.update_accounting(vcpus, &groups);
        let num_vms = groups.len();
        if num_vms == 0 {
            return decision;
        }

        // Co-stop phase: preempt running leaders, freeing their PCPUs.
        let mut idle = idle_pcpus(pcpus);
        let mut costopped_now = vec![false; vcpus.len()];
        for v in vcpus {
            let g = v.id.global;
            if self.stopped[g] && v.status.is_active() {
                decision.preempt(g);
                costopped_now[g] = true;
                if let Some(p) = v.assigned_pcpu {
                    idle.push(p); // available again this tick
                }
            }
        }
        idle.sort_unstable();

        // Assignment pass: round-robin over VMs; within a VM, most-behind
        // VCPUs first (the laggard a barrier is waiting on is by
        // construction the least-progressed sibling).
        let mut next_cursor = self.vm_cursor;
        for offset in 0..num_vms {
            if idle.is_empty() {
                break;
            }
            let vm = (self.vm_cursor + offset) % num_vms;
            let mut candidates: Vec<usize> = groups[vm]
                .iter()
                .copied()
                .filter(|&g| vcpus[g].is_schedulable() && !self.stopped[g] && !costopped_now[g])
                .collect();
            candidates.sort_by_key(|&g| self.progress[g]);
            let mut started = false;
            for g in candidates {
                if idle.is_empty() {
                    break;
                }
                let p = idle.remove(0);
                decision.assign(g, p, default_timeslice);
                started = true;
            }
            if started {
                next_cursor = (vm + 1) % num_vms;
            }
        }
        self.vm_cursor = next_cursor;
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            per_vcpu: self
                .progress
                .iter()
                .zip(&self.stopped)
                .map(|(&p, &s)| vec![p as i64, i64::from(s)])
                .collect(),
            vm_ids: vec![self.vm_cursor as i64],
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        let [cursor] = state.vm_ids.as_slice() else {
            return false;
        };
        if *cursor < 0
            || state
                .per_vcpu
                .iter()
                .any(|row| row.len() != 2 || row[0] < 0 || !(0..=1).contains(&row[1]))
        {
            return false;
        }
        self.progress = state.per_vcpu.iter().map(|row| row[0] as u64).collect();
        self.stopped = state.per_vcpu.iter().map(|row| row[1] != 0).collect();
        self.vm_cursor = *cursor as usize;
        true
    }

    /// Progress accounting and co-stop are per-VCPU-uniform; assignment
    /// scans VMs cyclically from the cursor and orders candidates by
    /// progress with a *stable* sort, so ties keep within-VM sibling
    /// order. Rotating VMs, the cursor, and the progress rows rotates the
    /// decision.
    fn rotation_equivariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, pcpus_for, vcpus_with_vms};
    use crate::sched::validate_decision;

    #[test]
    fn single_vcpu_start_allowed_unlike_scs() {
        // One PCPU, a 2-VCPU VM: RCS may start a single VCPU.
        let mut rcs = RelaxedCo::new(20, 10);
        let vcpus = vcpus_with_vms(&[2]);
        let pcpus = pcpus_for(1, &vcpus);
        let d = rcs.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("rcs", &vcpus, &pcpus, &d).unwrap();
        assert_eq!(d.assignments.len(), 1, "relaxed co-start of one VCPU");
    }

    #[test]
    fn co_start_happens_when_gang_fits() {
        let mut rcs = RelaxedCo::new(20, 10);
        let vcpus = vcpus_with_vms(&[2]);
        let pcpus = pcpus_for(2, &vcpus);
        let d = rcs.schedule(&vcpus, &pcpus, 0, 10);
        assert_eq!(d.assignments.len(), 2, "best effort co-starts the gang");
    }

    #[test]
    fn skew_tracks_progress_difference() {
        let mut rcs = RelaxedCo::new(20, 10);
        let mut vcpus = vcpus_with_vms(&[2]);
        activate(&mut vcpus, 0, 0); // sibling 0 runs, sibling 1 waits
        let pcpus = pcpus_for(1, &vcpus);
        for t in 0..5 {
            let _ = rcs.schedule(&vcpus, &pcpus, t, 10);
        }
        assert_eq!(rcs.skew_of(0, &[0, 1]), 5, "leader is 5 ticks ahead");
        assert_eq!(rcs.skew_of(1, &[0, 1]), 0, "laggard defines the floor");
    }

    #[test]
    fn leader_is_co_stopped_past_threshold() {
        let mut rcs = RelaxedCo::new(3, 1);
        let mut vcpus = vcpus_with_vms(&[2]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        for t in 0..3 {
            let d = rcs.schedule(&vcpus, &pcpus, t, 10);
            assert!(d.preemptions.is_empty(), "below threshold at t={t}");
        }
        // Fourth call: lead reaches 4 > 3 → leader co-stopped; the freed
        // PCPU goes to the laggard in the same decision.
        let d = rcs.schedule(&vcpus, &pcpus, 3, 10);
        validate_decision("rcs", &vcpus, &pcpus, &d).unwrap();
        assert!(rcs.is_co_stopped(0));
        assert_eq!(d.preemptions, vec![0], "leader co-stopped");
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].vcpu, 1, "laggard takes the freed PCPU");
    }

    #[test]
    fn co_stopped_leader_resumes_after_catch_up() {
        let mut rcs = RelaxedCo::new(3, 1);
        let mut vcpus = vcpus_with_vms(&[2]);
        activate(&mut vcpus, 0, 0);
        let pcpus1 = pcpus_for(1, &vcpus);
        for t in 0..4 {
            let _ = rcs.schedule(&vcpus, &pcpus1, t, 10);
        }
        assert!(rcs.is_co_stopped(0));
        // The laggard now runs; after 3 ticks its deficit shrinks to 1
        // (= resume), releasing the leader.
        let mut vcpus2 = vcpus_with_vms(&[2]);
        activate(&mut vcpus2, 1, 0);
        let pcpus2 = pcpus_for(1, &vcpus2);
        for t in 4..7 {
            let _ = rcs.schedule(&vcpus2, &pcpus2, t, 10);
        }
        assert!(!rcs.is_co_stopped(0), "leader released at skew <= resume");
    }

    #[test]
    fn co_stopped_leader_cannot_be_rescheduled() {
        let mut rcs = RelaxedCo::new(3, 1);
        let mut vcpus = vcpus_with_vms(&[2]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        for t in 0..4 {
            let _ = rcs.schedule(&vcpus, &pcpus, t, 10);
        }
        assert!(rcs.is_co_stopped(0));
        // Both inactive, two idle PCPUs: only the laggard may start.
        let vcpus2 = vcpus_with_vms(&[2]);
        let pcpus2 = pcpus_for(2, &vcpus2);
        let d = rcs.schedule(&vcpus2, &pcpus2, 4, 10);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].vcpu, 1, "leader is parked");
    }

    #[test]
    fn most_behind_sibling_starts_first() {
        let mut rcs = RelaxedCo::new(100, 50);
        let mut vcpus = vcpus_with_vms(&[3]);
        // Siblings 0 and 1 run for a while; 2 never does.
        activate(&mut vcpus, 0, 0);
        activate(&mut vcpus, 1, 1);
        let pcpus = pcpus_for(2, &vcpus);
        for t in 0..6 {
            let _ = rcs.schedule(&vcpus, &pcpus, t, 10);
        }
        // One PCPU frees up: sibling 2 (least progress) must win it.
        let mut vcpus2 = vcpus_with_vms(&[3]);
        activate(&mut vcpus2, 0, 0);
        let pcpus2 = pcpus_for(2, &vcpus2);
        let d = rcs.schedule(&vcpus2, &pcpus2, 6, 10);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].vcpu, 2, "most behind first");
    }

    #[test]
    fn no_sibling_starves_long_term() {
        // Self-check of the most-behind-first rule: over many turnovers,
        // every sibling of a 4-VCPU VM runs a similar amount.
        let mut rcs = RelaxedCo::new(10, 5);
        let mut ran = [0u32; 4];
        let mut vcpus = vcpus_with_vms(&[4]);
        let mut holder: Option<usize> = None;
        for t in 0..400 {
            // One PCPU; the current holder is preempted every 5 ticks.
            if t % 5 == 0 {
                if let Some(h) = holder.take() {
                    vcpus[h].status = crate::types::VcpuStatus::Inactive;
                    vcpus[h].assigned_pcpu = None;
                }
            }
            let pcpus = pcpus_for(1, &vcpus);
            let d = rcs.schedule(&vcpus, &pcpus, t, 10);
            for a in &d.assignments {
                activate(&mut vcpus, a.vcpu, a.pcpu);
                holder = Some(a.vcpu);
            }
            if let Some(h) = holder {
                ran[h] += 1;
            }
        }
        for (g, &r) in ran.iter().enumerate() {
            assert!(
                r > 50,
                "sibling {g} starved: ran {r} of 400 ticks ({ran:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "skew_resume")]
    fn bad_thresholds_rejected() {
        let _ = RelaxedCo::new(5, 10);
    }

    #[test]
    fn lone_vcpu_vms_never_co_stop() {
        let mut rcs = RelaxedCo::new(1, 0);
        let mut vcpus = vcpus_with_vms(&[1, 1]);
        activate(&mut vcpus, 0, 0);
        let pcpus = pcpus_for(1, &vcpus);
        for t in 0..10 {
            let d = rcs.schedule(&vcpus, &pcpus, t, 10);
            assert!(d.preemptions.is_empty());
        }
        assert!(!rcs.is_co_stopped(0));
        assert!(!rcs.is_co_stopped(1));
    }
}
