//! Fault-injection wrapper — a policy that deliberately violates the
//! decision contract at a chosen tick.
//!
//! Used by planted-failure fixtures: `vsched verify --fixture deadlock`
//! proves the SAN model dead-ends when the scheduling function misbehaves,
//! and the counterexample round-trip tests check that both engines reject
//! the same sabotaged decision with the same [`CoreError::PolicyViolation`]
//! (the direct engine by erroring out of the run, the SAN by halting the
//! clock, which leaves a dead marking).
//!
//! The sabotage is a preemption of VCPU index `vcpus.len()` — out of range
//! in every system, so [`super::validate_decision`] rejects it regardless
//! of the marking it is probed on.

#[cfg(doc)]
use crate::error::CoreError;

use super::{PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// Behaves as the wrapped policy until `at_tick`, then emits an invalid
/// decision every tick from there on.
pub struct FaultInjection {
    at_tick: u64,
    inner: Box<dyn SchedulingPolicy>,
}

impl FaultInjection {
    /// Wraps `inner`, sabotaging from tick `at_tick` onward.
    #[must_use]
    pub fn new(at_tick: u64, inner: Box<dyn SchedulingPolicy>) -> Self {
        FaultInjection { at_tick, inner }
    }
}

impl SchedulingPolicy for FaultInjection {
    fn name(&self) -> &str {
        "FaultInjection"
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        if timestamp >= self.at_tick {
            let mut d = ScheduleDecision::none();
            d.preempt(vcpus.len());
            return d;
        }
        self.inner
            .schedule(vcpus, pcpus, timestamp, default_timeslice)
    }

    fn snapshot_view(&self) -> ViewFields {
        self.inner.snapshot_view()
    }

    fn save_state(&self) -> Option<PolicyState> {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        self.inner.load_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::{pcpus_for, vcpus_inactive};
    use super::super::{validate_decision, PolicyKind};

    #[test]
    fn sabotages_exactly_from_the_configured_tick() {
        let kind = PolicyKind::Fault {
            at_tick: 3,
            inner: Box::new(PolicyKind::RoundRobin),
        };
        kind.validate().unwrap();
        let mut policy = kind.create();
        let vcpus = vcpus_inactive(2);
        let pcpus = pcpus_for(2, &vcpus);
        for t in 0..3 {
            let d = policy.schedule(&vcpus, &pcpus, t, 5);
            validate_decision(policy.name(), &vcpus, &pcpus, &d).unwrap();
        }
        let d = policy.schedule(&vcpus, &pcpus, 3, 5);
        let err = validate_decision(policy.name(), &vcpus, &pcpus, &d).unwrap_err();
        assert!(err.to_string().contains("unknown VCPU index"));
    }

    #[test]
    fn nested_fault_wrappers_are_rejected() {
        let kind = PolicyKind::Fault {
            at_tick: 1,
            inner: Box::new(PolicyKind::Fault {
                at_tick: 2,
                inner: Box::new(PolicyKind::RoundRobin),
            }),
        };
        assert!(kind.validate().is_err());
    }
}
