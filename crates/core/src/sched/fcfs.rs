//! First-come-first-served (FCFS) run queue — a baseline policy.
//!
//! VCPUs enter a FIFO queue when they become schedulable (INACTIVE); idle
//! PCPUs are granted strictly in queue order. Compared to round-robin the
//! only difference is memory: a VCPU that was scheduled out re-enters at
//! the *tail*, so long-running VCPUs cannot overtake waiters. Included as
//! the simplest possible baseline for the plug-in interface and as a
//! regression reference for the fairness experiments.

use std::collections::VecDeque;

use crate::sched::{idle_pcpus, PolicyState, ScheduleDecision, SchedulingPolicy, ViewFields};
use crate::types::{PcpuView, VcpuView};

/// The FCFS policy. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl Fcfs {
    /// Creates the policy with an empty run queue.
    #[must_use]
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    /// Decides from status and assignment alone — no payload fields.
    fn snapshot_view(&self) -> ViewFields {
        ViewFields::none()
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        self.queued.resize(vcpus.len(), false);
        // Enqueue newly schedulable VCPUs in global order.
        for v in vcpus {
            let g = v.id.global;
            if v.is_schedulable() && !self.queued[g] {
                self.queue.push_back(g);
                self.queued[g] = true;
            }
        }
        let mut decision = ScheduleDecision::none();
        for pcpu in idle_pcpus(pcpus) {
            // Skip stale entries (VCPU became active through some other
            // path or the queue got ahead of the views).
            let next = loop {
                match self.queue.pop_front() {
                    Some(g) if vcpus[g].is_schedulable() => break Some(g),
                    Some(g) => self.queued[g] = false,
                    None => break None,
                }
            };
            let Some(g) = next else { break };
            self.queued[g] = false;
            decision.assign(g, pcpu, default_timeslice);
        }
        decision
    }

    fn save_state(&self) -> Option<PolicyState> {
        Some(PolicyState {
            per_vcpu: self.queued.iter().map(|&q| vec![i64::from(q)]).collect(),
            vcpu_ids: self.queue.iter().map(|&g| g as i64).collect(),
            ..PolicyState::default()
        })
    }

    fn load_state(&mut self, state: &PolicyState) -> bool {
        if state.vcpu_ids.iter().any(|&g| g < 0)
            || state
                .per_vcpu
                .iter()
                .any(|row| row.len() != 1 || !(0..=1).contains(&row[0]))
        {
            return false;
        }
        self.queue = state.vcpu_ids.iter().map(|&g| g as usize).collect();
        self.queued = state.per_vcpu.iter().map(|row| row[0] != 0).collect();
        true
    }

    // NOT rotation-equivariant: VCPUs becoming schedulable in the same
    // tick enqueue in raw global-index order, which a cyclic shift
    // reorders.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tests_support::{activate, deactivate, pcpus_for, vcpus_inactive};
    use crate::sched::validate_decision;

    #[test]
    fn serves_in_arrival_order() {
        let mut fcfs = Fcfs::new();
        let vcpus = vcpus_inactive(3);
        let pcpus = pcpus_for(2, &vcpus);
        let d = fcfs.schedule(&vcpus, &pcpus, 0, 10);
        validate_decision("fcfs", &vcpus, &pcpus, &d).unwrap();
        let picked: Vec<usize> = d.assignments.iter().map(|a| a.vcpu).collect();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn preempted_vcpu_rejoins_at_tail() {
        let mut fcfs = Fcfs::new();
        let mut vcpus = vcpus_inactive(3);
        // Tick 0: 0 and 1 start on the two PCPUs; 2 waits.
        let d = fcfs.schedule(&vcpus, &pcpus_for(2, &vcpus), 0, 10);
        assert_eq!(d.assignments.len(), 2);
        activate(&mut vcpus, 0, 0);
        activate(&mut vcpus, 1, 1);
        // Tick 1: VCPU 0 is scheduled out; 2 must start before 0 restarts.
        deactivate(&mut vcpus, 0);
        let d = fcfs.schedule(&vcpus, &pcpus_for(2, &vcpus), 1, 10);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].vcpu, 2, "waiter 2 beats returning 0");
        // Tick 2: now 0 gets the next slot.
        activate(&mut vcpus, 2, 0);
        deactivate(&mut vcpus, 1);
        let d = fcfs.schedule(&vcpus, &pcpus_for(2, &vcpus), 2, 10);
        let picked: Vec<usize> = d.assignments.iter().map(|a| a.vcpu).collect();
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn no_duplicate_queue_entries() {
        let mut fcfs = Fcfs::new();
        let vcpus = vcpus_inactive(2);
        let no_pcpu = pcpus_for(0, &vcpus);
        for t in 0..5 {
            let _ = fcfs.schedule(&vcpus, &no_pcpu, t, 10);
        }
        let d = fcfs.schedule(&vcpus, &pcpus_for(2, &vcpus), 5, 10);
        assert_eq!(d.assignments.len(), 2, "each VCPU scheduled exactly once");
    }

    #[test]
    fn empty_system() {
        let mut fcfs = Fcfs::new();
        assert_eq!(fcfs.schedule(&[], &[], 0, 10), ScheduleDecision::none());
    }
}
