//! End-of-tick observation hooks for runtime invariant checking.
//!
//! Both engines — [`crate::direct::DirectSim`] and
//! [`crate::san_model::SanSystem`] — can carry an optional
//! [`TickObserver`]. When attached, the engine calls
//! [`TickObserver::on_tick`] with a fresh state snapshot at the end of
//! every clock tick (after all five canonical phases); the observer may
//! veto the run by returning an error, which the engine propagates
//! unchanged.
//!
//! When no observer is attached the cost is a single untaken branch per
//! tick — the hook is zero-cost in the configurations the sweeps and
//! benchmarks run.
//!
//! The primary consumer is the `vsched-check` crate's `InvariantChecker`,
//! which asserts clock monotonicity, exclusive PCPU assignment, legal
//! VCPU state transitions, SCS gang atomicity, the RCS cumulative-skew
//! bound, and reward-accounting closure over these snapshots.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::CoreError;
use crate::types::{PcpuView, VcpuView};

/// Receives an end-of-tick snapshot of the simulated system.
///
/// Implementations must tolerate being attached mid-run (the first
/// observed tick is then greater than 1) and must not assume which engine
/// is driving them: both engines present identical snapshots for
/// identical canonical states.
pub trait TickObserver {
    /// Called once per clock tick, after the tick's five phases completed.
    ///
    /// `tick` is the just-finished tick (the engines count from 1);
    /// `vcpus` and `pcpus` are the end-of-tick snapshots.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the run; the engine surfaces it from
    /// `run`/`tick` without further processing.
    fn on_tick(
        &mut self,
        tick: u64,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
    ) -> Result<(), CoreError>;
}

/// Shared-ownership adapter: lets the caller keep a handle to an observer
/// after boxing it into an engine, so its accumulated state (violation
/// counts, checked ticks) can be inspected once the run finishes.
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use vsched_core::observe::TickObserver;
/// use vsched_core::{direct::DirectSim, CoreError, PcpuView, PolicyKind, SystemConfig, VcpuView};
///
/// struct CountTicks(u64);
/// impl TickObserver for CountTicks {
///     fn on_tick(&mut self, _: u64, _: &[VcpuView], _: &[PcpuView]) -> Result<(), CoreError> {
///         self.0 += 1;
///         Ok(())
///     }
/// }
///
/// let config = SystemConfig::builder().pcpus(1).vm(1).build()?;
/// let counter = Rc::new(RefCell::new(CountTicks(0)));
/// let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 1);
/// sim.attach_observer(Box::new(Rc::clone(&counter)));
/// sim.run(10)?;
/// assert_eq!(counter.borrow().0, 10);
/// # Ok::<(), CoreError>(())
/// ```
impl<T: TickObserver> TickObserver for Rc<RefCell<T>> {
    fn on_tick(
        &mut self,
        tick: u64,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
    ) -> Result<(), CoreError> {
        self.borrow_mut().on_tick(tick, vcpus, pcpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::direct::DirectSim;
    use crate::sched::PolicyKind;

    struct Recorder {
        ticks: Vec<u64>,
        fail_at: Option<u64>,
    }

    impl TickObserver for Recorder {
        fn on_tick(
            &mut self,
            tick: u64,
            vcpus: &[VcpuView],
            pcpus: &[PcpuView],
        ) -> Result<(), CoreError> {
            assert!(!vcpus.is_empty());
            assert!(!pcpus.is_empty());
            self.ticks.push(tick);
            if self.fail_at == Some(tick) {
                return Err(CoreError::InvariantViolation {
                    invariant: "test".into(),
                    tick,
                    reason: "requested failure".into(),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn observer_sees_every_tick_in_order() {
        let config = SystemConfig::builder().pcpus(2).vm(2).build().unwrap();
        let rec = Rc::new(RefCell::new(Recorder {
            ticks: Vec::new(),
            fail_at: None,
        }));
        let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 3);
        sim.attach_observer(Box::new(Rc::clone(&rec)));
        sim.run(25).unwrap();
        assert_eq!(rec.borrow().ticks, (1..=25).collect::<Vec<_>>());
    }

    #[test]
    fn observer_error_aborts_run() {
        let config = SystemConfig::builder().pcpus(1).vm(1).build().unwrap();
        let rec = Rc::new(RefCell::new(Recorder {
            ticks: Vec::new(),
            fail_at: Some(7),
        }));
        let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 3);
        sim.attach_observer(Box::new(Rc::clone(&rec)));
        let err = sim.run(100).unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolation { tick: 7, .. }));
        assert_eq!(rec.borrow().ticks.len(), 7, "stopped at the failing tick");
        assert_eq!(sim.time(), 7);
    }

    #[test]
    fn detach_returns_the_observer() {
        let config = SystemConfig::builder().pcpus(1).vm(1).build().unwrap();
        let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 3);
        assert!(sim.detach_observer().is_none());
        sim.attach_observer(Box::new(Rc::new(RefCell::new(Recorder {
            ticks: Vec::new(),
            fail_at: None,
        }))));
        sim.run(5).unwrap();
        assert!(sim.detach_observer().is_some());
        sim.run(5).unwrap();
    }
}
