//! Small crate-internal helpers shared by both engines.

use vsched_des::{Dist, Xoshiro256StarStar};

/// Samples a distribution as a whole number of ticks, at least 1.
///
/// Both engines quantize workload durations the same way so that their
/// stochastic processes are identically distributed.
pub(crate) fn sample_ticks(dist: &Dist, rng: &mut Xoshiro256StarStar) -> u64 {
    let x = dist.sample(rng).round();
    if x < 1.0 {
        1
    } else {
        x as u64
    }
}

/// Full workload-generation level in per-mille (the static-path identity).
pub(crate) const FULL_LEVEL: u32 = 1000;

/// [`sample_ticks`] with the sample stretched by `1000/level` — interarrival
/// times under a partial load level. At full level this *is* `sample_ticks`
/// (explicit branch, so the static path stays bit-identical).
pub(crate) fn sample_ticks_scaled(dist: &Dist, rng: &mut Xoshiro256StarStar, level: u32) -> u64 {
    if level == FULL_LEVEL {
        return sample_ticks(dist, rng);
    }
    debug_assert!(level > 0, "level 0 must pause sampling, not stretch it");
    let x = (dist.sample(rng) * 1000.0 / f64::from(level)).round();
    if x < 1.0 {
        1
    } else {
        x as u64
    }
}

/// Whether a saturated generator at `level` per-mille generates at `tick`:
/// true iff the integer ramp `tick * level / 1000` steps at `tick`. Level
/// 1000 steps every tick (`tick >= 1`); level 0 never steps; intermediate
/// levels thin generation ticks evenly and deterministically — no RNG draw,
/// so pausing and resuming cannot shift the random streams, and both
/// engines compute the identical generation pattern from their shared
/// clock.
pub(crate) fn duty_allows(tick: u64, level: u32) -> bool {
    let level = u64::from(level);
    (tick * level) / 1000 > tick.saturating_sub(1) * level / 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_one() {
        let d = Dist::deterministic(0.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 1);
    }

    #[test]
    fn rounds_to_nearest() {
        let d = Dist::deterministic(4.6).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 5);
    }

    #[test]
    fn preserves_integers() {
        let d = Dist::deterministic(7.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 7);
    }
}
