//! Small crate-internal helpers shared by both engines.

use vsched_des::{Dist, Xoshiro256StarStar};

/// Samples a distribution as a whole number of ticks, at least 1.
///
/// Both engines quantize workload durations the same way so that their
/// stochastic processes are identically distributed.
pub(crate) fn sample_ticks(dist: &Dist, rng: &mut Xoshiro256StarStar) -> u64 {
    let x = dist.sample(rng).round();
    if x < 1.0 {
        1
    } else {
        x as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_one() {
        let d = Dist::deterministic(0.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 1);
    }

    #[test]
    fn rounds_to_nearest() {
        let d = Dist::deterministic(4.6).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 5);
    }

    #[test]
    fn preserves_integers() {
        let d = Dist::deterministic(7.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        assert_eq!(sample_ticks(&d, &mut rng), 7);
    }
}
