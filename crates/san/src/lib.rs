//! # vsched-san — a Stochastic Activity Network engine
//!
//! The paper builds its virtualization model on **Stochastic Activity
//! Networks** (Sanders & Meyer) simulated by the closed-source **Mobius**
//! tool. This crate is the open substitute: a complete SAN modeling and
//! discrete-event simulation engine.
//!
//! ## The formalism
//!
//! A SAN consists of:
//!
//! * **Places** hold a natural number of tokens and encode state
//!   ([`Marking`]). *Extended places* (structured state such as the paper's
//!   `VCPU_slot` with `remaining_load` / `sync_point` / `status` fields) are
//!   modeled as [`record::RecordRef`] groups of field places.
//! * **Activities** are transitions. *Timed* activities complete after a
//!   random delay drawn from any [`vsched_des::Dist`]; *instantaneous*
//!   activities complete immediately, ordered by priority. An activity can
//!   have several probabilistic **cases** modeling alternative outcomes.
//! * **Input gates** guard enabling with a predicate and run a state update
//!   on completion; **output gates** run state updates for the chosen case.
//! * **Composed models**: Mobius's *Join* (share state variables between
//!   submodels) and *Replicate* (stamp out identical submodels) are provided
//!   by [`ModelBuilder::scope`]d submodel templates and
//!   [`ModelBuilder::shared_place`] — the flattened result is exactly the
//!   composed model Mobius would produce (the paper's Tables 1–2 list the
//!   join places; `vsched-core` reproduces them verbatim).
//! * **Reward variables**: rate rewards (functions of the marking integrated
//!   over time) and impulse rewards (earned at activity completions) —
//!   [`reward`].
//!
//! ## Execution semantics
//!
//! The simulator ([`Simulator`]) implements the standard SAN policy: when an
//! activity becomes enabled its completion is scheduled after a sampled
//! delay; if a state change disables it before completion it **aborts**
//! (the sample is discarded); completing an activity atomically runs input
//! gate functions, consumes input arcs, selects a case, produces output arcs
//! and runs the case's output gates. Instantaneous activities preempt timed
//! ones at the same instant, higher priority first.
//!
//! ## Example — an M/M/1 queue as a SAN
//!
//! ```
//! use vsched_san::{ModelBuilder, Simulator};
//! use vsched_des::Dist;
//!
//! let mut mb = ModelBuilder::new();
//! let queue = mb.place("queue", 0)?;
//! mb.activity("arrive")?
//!     .timed(Dist::exponential(2.0)?) // mean interarrival 2
//!     .output_arc(queue, 1)
//!     .done()?;
//! mb.activity("serve")?
//!     .timed(Dist::exponential(1.0)?) // mean service 1
//!     .input_arc(queue, 1)
//!     .done()?;
//! let model = mb.build()?;
//! let mut sim = Simulator::new(model, 42);
//! let qlen = sim.add_rate_reward("queue length", move |m| m.tokens(queue) as f64);
//! sim.run_until(10_000.0)?;
//! // M/M/1 with ρ = 0.5: E[Nq in queue excluding in-service] ≈ 0.5
//! assert!(sim.rate_reward_average(qlen) < 1.5);
//! # Ok::<(), vsched_san::SanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod builder;
pub mod error;
pub mod experiment;
mod feed;
pub mod gate;
pub mod marking;
pub mod numerical;
pub mod record;
pub mod reward;
pub mod shard;
pub mod sim;

pub use activity::{ActivityId, Timing};
pub use builder::{ActivityBuilder, Model, ModelBuilder};
pub use error::SanError;
pub use experiment::{run_replicated, run_replicated_jobs, ExperimentResult};
pub use gate::{GateFn, Predicate};
pub use marking::{Marking, PlaceId, ReadSet};
pub use numerical::{solve_steady_state, solve_transient, CtmcOptions, CtmcSolution};
pub use record::RecordRef;
pub use reward::RewardId;
pub use shard::ShardPlan;
pub use sim::{RunStats, ShardMode, Simulator};
