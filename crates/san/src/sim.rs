//! The SAN discrete-event simulator.

use std::sync::{Arc, Mutex};

use vsched_des::{CalEventId, CalendarQueue, RngStreams, SimTime, Xoshiro256StarStar};

use crate::activity::{ActivityId, ActivitySpec, CaseWeights, Timing};
use crate::builder::Model;
use crate::error::SanError;
use crate::feed::{Feed, COMPACT_THRESHOLD};
use crate::marking::{Marking, PlaceId, ReadSet};
use crate::reward::{ImpulseReward, RateReward, RewardFn, RewardId};
use crate::shard::ShardPlan;

/// Priority offset that makes instantaneous activities preempt timed ones
/// scheduled at the same instant.
const INSTANTANEOUS_BASE: i32 = 1_000_000;

/// Default plan width below which [`ShardMode::Auto`] stays sequential.
/// Narrow plans cannot form batches often enough to amortize the lane
/// handshake; the `vsched perf` crossover matrix is the measured basis.
const DEFAULT_AUTO_SHARD_THRESHOLD: usize = 64;

/// How [`Simulator::run_until`] chooses between the sequential and the
/// sharded engine. Every choice is **bit-identical** in its results — the
/// mode only trades wall-clock and the [`SanError::ShardViolation`]
/// footprint check (which only the sharded engine performs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Sequential engine, no shard bookkeeping (the default).
    #[default]
    Off,
    /// Sharded engine with a lane budget of `n` (values below 2 behave
    /// like [`ShardMode::Off`]). The lane count actually used is capped by
    /// the shard plan's width and the host's available parallelism — on a
    /// single-core host the engine runs its one-lane form, which keeps the
    /// footprint validation at near-sequential speed instead of paying for
    /// threads that cannot run concurrently.
    Fixed(usize),
    /// Pick per model and host: the sharded engine engages only when the
    /// host has parallelism to spare **and** the plan is at least
    /// [`Simulator::set_auto_shard_threshold`] shards wide; everything
    /// else runs sequentially, so the default configuration never loses.
    Auto,
}

/// Statistics from one [`Simulator::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Activity completions processed during the call.
    pub completions: u64,
    /// Activity activations that were aborted (disabled before completing).
    pub aborts: u64,
}

/// Executes a [`Model`] according to standard SAN semantics.
///
/// * An activity is **activated** when it becomes enabled: a completion time
///   is sampled from its delay distribution and scheduled.
/// * If a state change disables an activated activity it **aborts** and its
///   sampled completion is discarded.
/// * **Completion** atomically runs input-gate functions, consumes input
///   arcs, selects a case, produces output arcs and runs the case's output
///   gates; then the affected activities are re-evaluated.
/// * Instantaneous activities complete before any timed activity scheduled
///   at the same instant, higher priority first, FIFO among equals.
///
/// ## Incremental reevaluation
///
/// By default, after each completion only the activities whose enablement
/// can depend on a place the completion actually changed are re-examined
/// (plus the fired activity and any activity with an undeclared enablement
/// closure — see [`crate::ModelBuilder`] and
/// [`crate::ActivityBuilder::reads`]). Visits happen in ascending activity
/// index order, exactly the order of the full rescan with the no-op checks
/// removed, so the result — every marking, statistic, event id and RNG
/// draw — is bit-identical to [`Simulator::set_full_rescan`] mode. The
/// same filtering applies to rate-reward recomputation (reward functions
/// are pure functions of the marking).
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulator {
    /// Shared so shard workers can borrow the model concurrently with the
    /// merge thread (every gate closure is `Fn + Send + Sync`).
    model: Arc<Model>,
    marking: Marking,
    time: SimTime,
    queue: CalendarQueue<ActivityId>,
    /// Scheduled completion of each activity, if activated.
    scheduled: Vec<Option<CalEventId>>,
    /// Rate multiplier in force when each activity was activated; a change
    /// triggers reactivation (resampling) for rate-scaled activities.
    activation_rate: Vec<f64>,
    delay_rngs: Vec<Xoshiro256StarStar>,
    case_rngs: Vec<Xoshiro256StarStar>,
    /// Per-activity gate-function RNG streams. Independent streams (rather
    /// than one shared stream) are what make parallel shard firing
    /// possible: a batch's gate draws must not depend on firing order.
    gate_rngs: Vec<Xoshiro256StarStar>,
    rate_rewards: Vec<RateReward>,
    /// Instant (as `f64`) up to which every rate-reward accumulator has
    /// been advanced. Completions at exactly this instant skip the
    /// accumulator loop: the update would add `0.0 * value`, a bit-exact
    /// no-op for finite reward values.
    reward_clock: f64,
    /// Per place: rate rewards whose declared read-set contains it,
    /// ascending (mirror of the model's place → activity index).
    reward_dependents: Vec<Vec<u32>>,
    /// Rate rewards with undeclared read-sets — recomputed every firing.
    reward_conservative: Vec<u32>,
    impulse_rewards: Vec<ImpulseReward>,
    /// Guard against models whose instantaneous activities loop forever.
    max_zero_advance: u64,
    started: bool,
    /// Debug/differential mode: rescan every activity and reward after
    /// every completion instead of using the dependency index.
    full_rescan: bool,
    /// Scratch: candidate activity indices for incremental reevaluation.
    eval_scratch: Vec<u32>,
    /// Scratch: candidate reward indices for incremental recomputation.
    reward_scratch: Vec<u32>,
    /// Scratch buffer for dynamic case weights (reused across completions).
    weight_scratch: Vec<f64>,
    /// Engine selection policy for intra-replication sharding.
    shard_mode: ShardMode,
    /// Test/bench override of the host's available parallelism (forces a
    /// lane count regardless of what the machine reports).
    avail_override: Option<usize>,
    /// Auto mode engages lanes only for plans at least this wide.
    auto_min_shards: usize,
    /// Lane count the sharded engine used on the most recent run
    /// (`None` = the sequential engine ran).
    resolved_shards: Option<usize>,
    /// Lazily derived shard plan (only when sharding is requested).
    shard_plan: Option<Arc<ShardPlan>>,
    stats: RunStats,
}

/// One parallel firing: the activity plus its private RNG streams, moved
/// to the lane and returned (advanced) in [`FireResult`].
struct FireItem {
    idx: usize,
    case_rng: Xoshiro256StarStar,
    gate_rng: Xoshiro256StarStar,
    /// Recycled patch buffer: the lane fills it and hands it back as
    /// [`FireResult::patch`]; the merge returns it to the driver's pool,
    /// so steady-state waves allocate nothing.
    patch: Vec<(u32, i64)>,
}

/// What a lane hands back: the advanced RNG streams and the fired
/// activity's marking writes as `(place, new value)` pairs in first-touch
/// order — exactly the dirty set a sequential firing would have produced.
struct FireResult {
    case_rng: Xoshiro256StarStar,
    gate_rng: Xoshiro256StarStar,
    patch: Vec<(u32, i64)>,
}

/// Per-lane state of the sharded engine: a marking replica (kept in sync
/// by replaying the delta feed at each wave) and a private scratch buffer.
struct ShardWorker {
    marking: Marking,
    weight_scratch: Vec<f64>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("marking", &self.marking)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator over `model`, with all randomness derived from
    /// `seed`.
    #[must_use]
    pub fn new(model: Model, seed: u64) -> Self {
        let streams = RngStreams::new(seed);
        let n = model.num_activities();
        let mut marking = model.initial_marking();
        marking.enable_dirty_tracking();
        Simulator {
            marking,
            time: SimTime::ZERO,
            queue: CalendarQueue::new(),
            scheduled: vec![None; n],
            activation_rate: vec![1.0; n],
            delay_rngs: (0..n).map(|i| streams.stream(10_000 + i as u64)).collect(),
            case_rngs: (0..n).map(|i| streams.stream(20_000 + i as u64)).collect(),
            gate_rngs: (0..n).map(|i| streams.stream(30_000 + i as u64)).collect(),
            rate_rewards: Vec::new(),
            reward_clock: 0.0,
            reward_dependents: vec![Vec::new(); model.num_places()],
            reward_conservative: Vec::new(),
            impulse_rewards: Vec::new(),
            max_zero_advance: 1_000_000,
            started: false,
            full_rescan: false,
            eval_scratch: Vec::new(),
            reward_scratch: Vec::new(),
            weight_scratch: Vec::new(),
            shard_mode: ShardMode::Off,
            avail_override: None,
            auto_min_shards: DEFAULT_AUTO_SHARD_THRESHOLD,
            resolved_shards: None,
            shard_plan: None,
            stats: RunStats::default(),
            model: Arc::new(model),
        }
    }

    /// Sets the lane budget for intra-replication sharding. `0` or `1`
    /// selects the sequential engine; `>= 2` fires statically derived
    /// conflict-free shards (see [`ShardPlan`]) in parallel, with a
    /// deterministic sequential merge. Results are **bit-identical for any
    /// value** — marking, statistics, rewards, event ordering and every
    /// RNG draw match the sequential engine exactly.
    ///
    /// Shorthand for [`Simulator::set_shard_mode`] with
    /// [`ShardMode::Fixed`] (or [`ShardMode::Off`] below 2).
    pub fn set_shards(&mut self, shards: usize) {
        self.shard_mode = if shards >= 2 {
            ShardMode::Fixed(shards)
        } else {
            ShardMode::Off
        };
    }

    /// Sets the engine selection policy; see [`ShardMode`].
    pub fn set_shard_mode(&mut self, mode: ShardMode) {
        self.shard_mode = mode;
    }

    /// The engine selection policy in force.
    #[must_use]
    pub fn shard_mode(&self) -> ShardMode {
        self.shard_mode
    }

    /// Overrides what the engine treats as the host's available
    /// parallelism (`None` restores the real value). Tests and sanitizer
    /// runs use this to force real helper threads on any machine; the
    /// perf harness uses it to measure the crossover matrix honestly.
    pub fn set_shard_available_override(&mut self, avail: Option<usize>) {
        self.avail_override = avail.map(|a| a.max(1));
    }

    /// Sets the minimum shard-plan width at which [`ShardMode::Auto`]
    /// engages the sharded engine (default 64; clamped to at least 2).
    pub fn set_auto_shard_threshold(&mut self, min_shards: usize) {
        self.auto_min_shards = min_shards.max(2);
    }

    /// Lane count the sharded engine used on the most recent
    /// [`Simulator::run_until`], or `None` if the sequential engine ran —
    /// how a [`ShardMode::Auto`] (or capped [`ShardMode::Fixed`])
    /// resolution is reported honestly.
    #[must_use]
    pub fn resolved_shards(&self) -> Option<usize> {
        self.resolved_shards
    }

    /// The shard plan in force (derived on first sharded run).
    #[must_use]
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_plan.as_deref()
    }

    /// Switches between incremental reevaluation (default, `false`) and the
    /// full per-completion rescan. The two modes are bit-identical by
    /// construction; the rescan is kept as the debug/differential reference
    /// that `vsched-check` compares against on every fuzz case.
    pub fn set_full_rescan(&mut self, on: bool) {
        self.full_rescan = on;
    }

    /// Whether the full per-completion rescan is in force.
    #[must_use]
    pub fn full_rescan(&self) -> bool {
        self.full_rescan
    }

    /// Caps the number of completions tolerated without time advancing
    /// before [`SanError::InstantaneousLoop`] is reported (default 10^6).
    pub fn set_max_zero_advance(&mut self, limit: u64) {
        self.max_zero_advance = limit.max(1);
    }

    /// Enables the future-event-list monotonicity check (see
    /// [`CalendarQueue::enable_monotonicity_check`]): every popped completion
    /// must be at or after the previous one, otherwise the simulator panics
    /// instead of silently running time backwards. Costs one branch per
    /// event; disabled by default.
    pub fn enable_event_monotonicity_check(&mut self) {
        self.queue.enable_monotonicity_check();
    }

    /// Current virtual time.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Current marking (read-only).
    #[must_use]
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The model being executed.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Cumulative execution statistics.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Registers a rate reward `f`; its time average over the observation
    /// window is available through [`Simulator::rate_reward_average`].
    ///
    /// The reward's read-set is undeclared, so `f` is conservatively
    /// re-evaluated after every completion; prefer
    /// [`Simulator::add_rate_reward_with_reads`] when the places `f` reads
    /// are known.
    pub fn add_rate_reward(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&Marking) -> f64 + 'static,
    ) -> RewardId {
        self.push_rate_reward(name.into(), Box::new(f), ReadSet::All)
    }

    /// Registers a rate reward that declares the places it reads: `f` is
    /// then only re-evaluated when a completion changes one of them (reward
    /// functions must be pure functions of the marking, so an unchanged
    /// read-set implies an unchanged value).
    pub fn add_rate_reward_with_reads(
        &mut self,
        name: impl Into<String>,
        reads: impl IntoIterator<Item = PlaceId>,
        f: impl Fn(&Marking) -> f64 + 'static,
    ) -> RewardId {
        self.push_rate_reward(
            name.into(),
            Box::new(f),
            ReadSet::Declared(reads.into_iter().collect()),
        )
    }

    fn push_rate_reward(&mut self, name: String, f: RewardFn, reads: ReadSet) -> RewardId {
        let id = self.rate_rewards.len();
        match &reads {
            ReadSet::All => self.reward_conservative.push(id as u32),
            ReadSet::Declared(places) => {
                let mut places: Vec<usize> = places.iter().map(|p| p.index()).collect();
                places.sort_unstable();
                places.dedup();
                for p in places {
                    self.reward_dependents[p].push(id as u32);
                }
            }
        }
        let current = f(&self.marking);
        let mut acc = vsched_stats::TimeWeighted::new(self.time.as_f64());
        // If registered mid-run, the accumulator starts "now"; if registered
        // before the first event it starts at zero — both are correct.
        acc.reset(self.time.as_f64());
        self.rate_rewards.push(RateReward {
            name,
            f,
            acc,
            current,
        });
        RewardId(id)
    }

    /// Registers an impulse reward earned at each completion of `activity`.
    pub fn add_impulse_reward(
        &mut self,
        name: impl Into<String>,
        activity: ActivityId,
        f: impl Fn(&Marking) -> f64 + 'static,
    ) -> RewardId {
        self.impulse_rewards.push(ImpulseReward {
            name: name.into(),
            activity,
            f: Box::new(f),
            total: 0.0,
            count: 0,
        });
        RewardId(self.impulse_rewards.len() - 1)
    }

    /// Time average of a rate reward over the observation window.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Simulator::add_rate_reward`] of
    /// this simulator.
    #[must_use]
    pub fn rate_reward_average(&self, id: RewardId) -> f64 {
        self.rate_rewards[id.0].acc.time_average()
    }

    /// Name of a rate reward.
    #[must_use]
    pub fn rate_reward_name(&self, id: RewardId) -> &str {
        &self.rate_rewards[id.0].name
    }

    /// Accumulated total of an impulse reward.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by
    /// [`Simulator::add_impulse_reward`] of this simulator.
    #[must_use]
    pub fn impulse_total(&self, id: RewardId) -> f64 {
        self.impulse_rewards[id.0].total
    }

    /// Number of completions counted by an impulse reward.
    #[must_use]
    pub fn impulse_count(&self, id: RewardId) -> u64 {
        self.impulse_rewards[id.0].count
    }

    /// Restarts all reward observation windows at the current time —
    /// transient (warm-up) deletion:
    ///
    /// ```text
    /// sim.run_until(warmup)?;   // reach steady state
    /// sim.reset_rewards();      // discard transient
    /// sim.run_until(horizon)?;  // measure
    /// ```
    pub fn reset_rewards(&mut self) {
        let now = self.time.as_f64();
        self.reward_clock = now;
        for r in &mut self.rate_rewards {
            r.acc.reset(now);
            r.current = (r.f)(&self.marking);
        }
        for r in &mut self.impulse_rewards {
            r.total = 0.0;
            r.count = 0;
        }
    }

    /// Applies an external marking mutation at the current instant —
    /// the hook the trace frontend uses for VM arrival, departure and
    /// load-level changes at event boundaries, between
    /// [`Simulator::run_until`] calls.
    ///
    /// The mutation behaves exactly like the marking update of an
    /// anonymous completion at the current time: any rate-reward interval
    /// ending now is closed at the pre-mutation reward values, `f` runs
    /// with dirty-place tracking, then dependent rewards are recomputed
    /// and dependent activities reevaluated (newly enabled activities
    /// activate, newly disabled ones abort, and rate-scaled activities
    /// whose multiplier changed resample) — so the event schedule and
    /// every RNG stream stay deterministic across membership changes.
    /// The shard plan is invalidated and re-derived on the next sharded
    /// run.
    ///
    /// Calling this before the first `run_until` performs the initial
    /// full activation pass first, so activation order (and therefore
    /// every subsequent draw) matches a run whose mutation happened after
    /// startup.
    pub fn apply_external(&mut self, f: impl FnOnce(&mut Marking)) {
        if !self.started {
            self.started = true;
            for idx in 0..self.model.activities.len() {
                self.reevaluate_one(idx);
            }
        }
        let now = self.time.as_f64();
        if now > self.reward_clock {
            for r in &mut self.rate_rewards {
                r.acc.update(now, r.current);
            }
            self.reward_clock = now;
        }
        self.marking.clear_dirty();
        f(&mut self.marking);
        self.recompute_rewards();
        self.reevaluate(None);
        self.shard_plan = None;
    }

    /// Runs the simulation until virtual time `t_end`.
    ///
    /// All events with completion time ≤ `t_end` are processed; the clock
    /// and every rate-reward window then advance exactly to `t_end`. Can be
    /// called repeatedly with increasing horizons.
    ///
    /// # Errors
    ///
    /// [`SanError::InstantaneousLoop`] if the model completes more than the
    /// configured limit of activities without time advancing.
    pub fn run_until(&mut self, t_end: f64) -> Result<RunStats, SanError> {
        let t_end = SimTime::new(t_end);
        if !self.started {
            self.started = true;
            // The first evaluation considers everything in both modes.
            for idx in 0..self.model.activities.len() {
                self.reevaluate_one(idx);
            }
        }
        let mut run = RunStats::default();
        match self.resolve_shard_lanes() {
            Some(lanes) => self.run_events_sharded(t_end, &mut run, lanes)?,
            None => self.run_events(t_end, &mut run)?,
        }
        // Advance the clock and the reward windows to the horizon.
        self.time = self.time.max(t_end);
        let now = self.time.as_f64();
        if now > self.reward_clock {
            for r in &mut self.rate_rewards {
                r.acc.update(now, r.current);
            }
            self.reward_clock = now;
        }
        self.stats.completions += run.completions;
        run.aborts = self.stats.aborts;
        Ok(run)
    }

    /// Resolves the shard mode against the plan and the host: `Some(n)`
    /// selects the sharded engine with `n` lanes, `None` the sequential
    /// engine. Derives the plan lazily, and records the outcome for
    /// [`Simulator::resolved_shards`].
    fn resolve_shard_lanes(&mut self) -> Option<usize> {
        self.resolved_shards = None;
        let budget = match self.shard_mode {
            ShardMode::Off => return None,
            ShardMode::Fixed(n) if n < 2 => return None,
            ShardMode::Fixed(n) => Some(n),
            ShardMode::Auto => None,
        };
        let plan_width = match &self.shard_plan {
            Some(p) => p.num_shards(),
            None => {
                let p = Arc::new(ShardPlan::derive(&self.model));
                let width = p.num_shards();
                self.shard_plan = Some(p);
                width
            }
        };
        let avail = self.avail_override.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        let lanes = match budget {
            // An explicit shard count keeps the sharded engine (and its
            // footprint validation) even when capped to one lane; only
            // plans too narrow to ever batch skip it entirely.
            Some(n) => {
                if plan_width < 2 {
                    return None;
                }
                n.min(plan_width).min(avail).max(1)
            }
            // Auto engages lanes only where they can pay for themselves:
            // real parallelism available and a plan wide enough to batch.
            None => {
                if avail < 2 || plan_width < self.auto_min_shards {
                    return None;
                }
                avail.min(plan_width)
            }
        };
        self.resolved_shards = Some(lanes);
        Some(lanes)
    }

    /// The sequential event loop of [`Simulator::run_until`].
    fn run_events(&mut self, t_end: SimTime, run: &mut RunStats) -> Result<(), SanError> {
        let mut last_time = self.time;
        let mut zero_advance: u64 = 0;
        while let Some(next) = self.queue.peek_time() {
            if next > t_end {
                break;
            }
            let (t, _, act) = self.queue.pop().expect("peeked event must pop");
            self.note_advance(&mut last_time, &mut zero_advance, t)?;
            self.time = t;
            self.fire(act);
            run.completions += 1;
        }
        Ok(())
    }

    /// Zero-advance bookkeeping for one popped event (shared by the
    /// sequential and sharded loops, which must count identically).
    fn note_advance(
        &self,
        last_time: &mut SimTime,
        zero_advance: &mut u64,
        t: SimTime,
    ) -> Result<(), SanError> {
        if t > *last_time {
            *last_time = t;
            *zero_advance = 0;
        } else {
            *zero_advance += 1;
            if *zero_advance > self.max_zero_advance {
                return Err(SanError::InstantaneousLoop {
                    at_time: t.as_f64(),
                    limit: self.max_zero_advance,
                });
            }
        }
        Ok(())
    }

    /// The sharded event loop: pops of the same instant and queue
    /// priority whose activities belong to pairwise-distinct shards form a
    /// *batch*; the batch's marking updates run concurrently on lane
    /// replicas (phase A), then the results merge sequentially in pop
    /// order (phase B) — patch application, rewards, reevaluation and all
    /// queue operations happen on the driving thread exactly as the
    /// sequential engine would have done them. See `DESIGN.md` §14 for the
    /// bit-identity argument and §19 for the lane/feed runtime.
    ///
    /// With one lane the replica machinery would be pure overhead, so the
    /// engine switches to its direct-fire form
    /// ([`Simulator::run_events_shard_checked`]), which preserves the
    /// footprint validation at near-sequential cost.
    fn run_events_sharded(
        &mut self,
        t_end: SimTime,
        run: &mut RunStats,
        lanes: usize,
    ) -> Result<(), SanError> {
        let plan = Arc::clone(
            self.shard_plan
                .as_ref()
                .expect("plan derived during lane resolution"),
        );
        if lanes < 2 {
            return self.run_events_shard_checked(t_end, run, &plan);
        }
        let model = Arc::clone(&self.model);
        // Every marking write since the previous wave flows through the
        // cursor-indexed delta feed; each lane replays only what it has
        // not yet seen (its wave prologue below).
        let feed: Mutex<Feed> = Mutex::new(Feed::new(lanes));
        // Debug-builds-only audit: the authoritative wave-start marking,
        // snapshotted before each dispatch so every lane can assert its
        // replica landed exactly on it after delta replay (empty = unset).
        let audit: Mutex<Vec<i64>> = Mutex::new(Vec::new());
        let mut replica = self.marking.clone();
        replica.clear_dirty();
        vsched_exec::lane::run(
            lanes,
            // Lane replicas clone the engine-start marking, which is what
            // feed cursor 0 corresponds to — a lane first engaged at wave
            // k simply replays waves 0..k in its first prologue.
            |_lane| ShardWorker {
                marking: replica.clone(),
                weight_scratch: Vec::new(),
            },
            |lane, w: &mut ShardWorker| {
                feed.lock()
                    .expect("feed lock")
                    .replay_into(lane, &mut w.marking);
                if cfg!(debug_assertions) {
                    let snap = audit.lock().expect("audit lock");
                    if !snap.is_empty() {
                        assert_eq!(
                            w.marking.as_slice(),
                            &snap[..],
                            "lane {lane} replica must equal the authoritative \
                             wave-start marking after delta replay"
                        );
                    }
                }
            },
            |w: &mut ShardWorker, mut item: FireItem| {
                w.marking.clear_dirty();
                model.fire_marking_update(
                    item.idx,
                    &mut w.marking,
                    &mut item.case_rng,
                    &mut item.gate_rng,
                    &mut w.weight_scratch,
                );
                item.patch.clear();
                item.patch.extend(
                    w.marking
                        .dirty()
                        .iter()
                        .map(|&p| (p as u32, w.marking.tokens(PlaceId(p)))),
                );
                FireResult {
                    case_rng: item.case_rng,
                    gate_rng: item.gate_rng,
                    patch: item.patch,
                }
            },
            |handle| self.drive_sharded(handle, t_end, run, &plan, &feed, &audit),
        )
    }

    /// The driving thread's loop inside the lane pool scope.
    fn drive_sharded<FM, FW, FS>(
        &mut self,
        handle: &mut vsched_exec::LaneHandle<'_, FireItem, FireResult, ShardWorker, FM, FW, FS>,
        t_end: SimTime,
        run: &mut RunStats,
        plan: &ShardPlan,
        feed: &Mutex<Feed>,
        audit: &Mutex<Vec<i64>>,
    ) -> Result<(), SanError>
    where
        FM: Fn(usize) -> ShardWorker + Sync,
        FW: Fn(usize, &mut ShardWorker) + Sync,
        FS: Fn(&mut ShardWorker, FireItem) -> FireResult + Sync,
    {
        let act_shard = plan.act_shard_raw();
        let place_shard = plan.place_shard_raw();
        let mut last_time = self.time;
        let mut zero_advance: u64 = 0;
        let mut batch: Vec<ActivityId> = Vec::new();
        // Batch membership by generation stamp: `shard_stamp[s] == gen`
        // iff shard `s` is already in the batch being formed — O(1) per
        // candidate where the old `Vec::contains` scan was O(batch).
        let mut shard_stamp: Vec<u64> = vec![0; plan.num_shards()];
        let mut batch_gen: u64 = 0;
        // Marking writes since the last feed publish — sequential fires
        // and merged batch patches alike — published in ONE `append_batch`
        // per wave (the per-fire-mutex fix; `Feed::appends` pins it).
        let mut pending: Vec<(u32, i64)> = Vec::new();
        // Reusable dispatch vectors and recycled patch buffers.
        let mut items: Vec<FireItem> = Vec::new();
        let mut results: Vec<FireResult> = Vec::new();
        let mut buf_pool: Vec<Vec<(u32, i64)>> = Vec::new();
        while let Some(next) = self.queue.peek_time() {
            if next > t_end {
                break;
            }
            let (t, _, act) = self.queue.pop().expect("peeked event must pop");
            self.note_advance(&mut last_time, &mut zero_advance, t)?;
            self.time = t;
            let first_shard = act_shard[act.0];
            if first_shard < 0 {
                self.fire_buffered(act, &mut pending);
                run.completions += 1;
                continue;
            }
            // Extend into a batch: same instant, same queue priority,
            // pairwise-distinct shards. Sharded activities are always
            // instantaneous, so the queue priority is determined by the
            // activity's completion priority.
            let prio = instantaneous_queue_priority(&self.model.activities[act.0]);
            batch.clear();
            batch_gen += 1;
            batch.push(act);
            shard_stamp[first_shard as usize] = batch_gen;
            while let Some((nt, np, &na)) = self.queue.peek() {
                if nt != t || np != prio {
                    break;
                }
                let shard = act_shard[na.0];
                if shard < 0 || shard_stamp[shard as usize] == batch_gen {
                    break;
                }
                let (pt, _, popped) = self.queue.pop().expect("peeked event must pop");
                self.note_advance(&mut last_time, &mut zero_advance, pt)?;
                batch.push(popped);
                shard_stamp[shard as usize] = batch_gen;
            }
            if batch.len() == 1 {
                self.fire_buffered(act, &mut pending);
                run.completions += 1;
                continue;
            }
            // Publish everything since the previous wave; when the feed
            // has grown past its bound, this wave also engages idle lanes
            // so every cursor reaches the tip and the feed can compact.
            let engage_all = {
                let mut f = feed.lock().expect("feed lock");
                f.append_batch(&mut pending);
                f.len() >= COMPACT_THRESHOLD
            };
            if cfg!(debug_assertions) {
                let mut snap = audit.lock().expect("audit lock");
                snap.clear();
                snap.extend_from_slice(self.marking.as_slice());
            }
            // Phase A: fire every batch member on a lane replica.
            items.extend(batch.iter().map(|a| FireItem {
                idx: a.0,
                case_rng: self.case_rngs[a.0].clone(),
                gate_rng: self.gate_rngs[a.0].clone(),
                patch: buf_pool.pop().unwrap_or_default(),
            }));
            handle.dispatch(&mut items, &mut results, engage_all);
            if engage_all {
                feed.lock().expect("feed lock").compact();
            }
            // Phase B: merge in pop order. Everything a sequential firing
            // would do after its marking update happens here, on the main
            // marking, which is in the exact sequential state at each step.
            for (a, result) in batch.iter().zip(results.drain(..)) {
                for &(place, _) in &result.patch {
                    if place_shard[place as usize] != act_shard[a.0] {
                        return Err(SanError::ShardViolation {
                            activity: self.model.activities[a.0].name.clone(),
                            place: self.model.names[place as usize].clone(),
                        });
                    }
                }
                self.case_rngs[a.0] = result.case_rng;
                self.gate_rngs[a.0] = result.gate_rng;
                self.apply_fire(*a, &result.patch, &mut pending);
                run.completions += 1;
                let mut patch = result.patch;
                patch.clear();
                buf_pool.push(patch);
            }
        }
        Ok(())
    }

    /// The sharded engine's one-lane form: fires sequentially on the
    /// authoritative marking — no replicas, no feed, no pool — and
    /// validates each sharded activity's write footprint against the plan
    /// afterwards, preserving the [`SanError::ShardViolation`] guarantee
    /// at near-sequential speed. Bit-identity with the multi-lane form is
    /// structural: batch members have pairwise-disjoint footprints
    /// (exactly what the validation enforces), so firing them in pop
    /// order on the live marking performs the same writes and draws as
    /// firing them on wave-start replicas; a violating fire errors here
    /// no later than its merge would have.
    fn run_events_shard_checked(
        &mut self,
        t_end: SimTime,
        run: &mut RunStats,
        plan: &ShardPlan,
    ) -> Result<(), SanError> {
        let act_shard = plan.act_shard_raw();
        let place_shard = plan.place_shard_raw();
        let mut last_time = self.time;
        let mut zero_advance: u64 = 0;
        while let Some(next) = self.queue.peek_time() {
            if next > t_end {
                break;
            }
            let (t, _, act) = self.queue.pop().expect("peeked event must pop");
            self.note_advance(&mut last_time, &mut zero_advance, t)?;
            self.time = t;
            self.fire(act);
            run.completions += 1;
            let shard = act_shard[act.0];
            if shard >= 0 {
                for &p in self.marking.dirty() {
                    if place_shard[p] != shard {
                        return Err(SanError::ShardViolation {
                            activity: self.model.activities[act.0].name.clone(),
                            place: self.model.names[p].clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Sequential fire inside the sharded loop: the fired activity's
    /// dirty places buffer into `pending` for the next feed publish — no
    /// lock is taken here (fires between waves batch into one append).
    fn fire_buffered(&mut self, act: ActivityId, pending: &mut Vec<(u32, i64)>) {
        self.fire(act);
        for &p in self.marking.dirty() {
            pending.push((p as u32, self.marking.tokens(PlaceId(p))));
        }
    }

    /// Phase B of one batched firing: everything [`Simulator::fire`] does,
    /// with the marking update replaced by the lane-computed patch, which
    /// also buffers into `pending` for the next feed publish.
    fn apply_fire(
        &mut self,
        act_id: ActivityId,
        patch: &[(u32, i64)],
        pending: &mut Vec<(u32, i64)>,
    ) {
        let idx = act_id.0;
        self.scheduled[idx] = None;
        debug_assert!(
            self.model.activities[idx].enabled(&self.marking),
            "batched activity `{}` must still be enabled at merge time",
            self.model.activities[idx].name
        );
        let now = self.time.as_f64();
        if now > self.reward_clock {
            for r in &mut self.rate_rewards {
                r.acc.update(now, r.current);
            }
            self.reward_clock = now;
        }
        self.marking.clear_dirty();
        for &(p, v) in patch {
            self.marking.set(PlaceId(p as usize), v);
        }
        pending.extend_from_slice(patch);
        self.post_fire(act_id);
    }

    /// Completes one activity: the atomic SAN completion rule.
    fn fire(&mut self, act_id: ActivityId) {
        let idx = act_id.0;
        self.scheduled[idx] = None;
        debug_assert!(
            self.model.activities[idx].enabled(&self.marking),
            "completed activity `{}` must be enabled (eager abort failed)",
            self.model.activities[idx].name
        );

        // Rate rewards: close the interval that ends now, at the value the
        // signal held since the previous state change. When this completion
        // shares its instant with the previous update (instantaneous
        // cascades within one tick), every accumulator would add exactly
        // `0.0 * value` — a bit-exact no-op for finite values (`integral`
        // can never be `-0.0`: it starts at `+0.0` and no finite sum
        // rounds to `-0.0`), so the whole loop is skipped.
        let now = self.time.as_f64();
        if now > self.reward_clock {
            for r in &mut self.rate_rewards {
                r.acc.update(now, r.current);
            }
            self.reward_clock = now;
        }

        // From here on, record exactly the places this completion touches.
        self.marking.clear_dirty();

        self.model.fire_marking_update(
            idx,
            &mut self.marking,
            &mut self.case_rngs[idx],
            &mut self.gate_rngs[idx],
            &mut self.weight_scratch,
        );

        self.post_fire(act_id);
    }

    /// Everything after the marking update of a completion: impulse
    /// rewards, rate-reward recomputation, and activity reevaluation.
    /// Shared verbatim by the sequential path ([`Simulator::fire`]) and
    /// the sharded merge ([`Simulator::apply_fire`]).
    fn post_fire(&mut self, act_id: ActivityId) {
        // Impulse rewards observe the post-completion marking.
        for r in &mut self.impulse_rewards {
            if r.activity == act_id {
                r.total += (r.f)(&self.marking);
                r.count += 1;
            }
        }

        self.recompute_rewards();
        self.reevaluate(Some(act_id.0));
    }

    /// Rate rewards: the signal takes its new value from now on. Reward
    /// functions are pure, so in incremental mode only rewards that may
    /// read a touched place can have a new value; the time-integral
    /// updates happening before the marking change are skipped only when
    /// zero time has elapsed (a bit-exact no-op), and both modes share
    /// that rule, so the accumulation grouping stays identical between
    /// modes.
    fn recompute_rewards(&mut self) {
        if self.full_rescan {
            for r in &mut self.rate_rewards {
                r.current = (r.f)(&self.marking);
            }
        } else {
            self.reward_scratch.clear();
            for &p in self.marking.dirty() {
                self.reward_scratch
                    .extend_from_slice(&self.reward_dependents[p]);
            }
            self.reward_scratch
                .extend_from_slice(&self.reward_conservative);
            self.reward_scratch.sort_unstable();
            self.reward_scratch.dedup();
            for &ri in &self.reward_scratch {
                let r = &mut self.rate_rewards[ri as usize];
                r.current = (r.f)(&self.marking);
            }
        }
    }

    /// Activates newly enabled activities, aborts newly disabled ones, and
    /// reactivates rate-scaled activities whose multiplier changed (for
    /// exponential delays this is exactly the CTMC race semantics; for
    /// other distributions it is the defined reactivation policy).
    ///
    /// Incremental mode visits only the activities whose enablement can
    /// depend on a place the completion changed, plus every conservative
    /// (undeclared-read-set) activity, plus `fired` itself (its completion
    /// was just consumed, so it must be re-examined even if no place it
    /// reads changed). Visits are in ascending activity-index order — a
    /// subsequence of the full rescan from which only provable no-ops are
    /// missing (unchanged reads ⇒ unchanged `enabled()` and multiplier ⇒
    /// no queue operation, no RNG draw), so both modes schedule the same
    /// events with the same ids and consume the same random numbers.
    fn reevaluate(&mut self, fired: Option<usize>) {
        if self.full_rescan {
            for idx in 0..self.model.activities.len() {
                self.reevaluate_one(idx);
            }
            return;
        }
        let mut cand = std::mem::take(&mut self.eval_scratch);
        cand.clear();
        for &p in self.marking.dirty() {
            cand.extend_from_slice(self.model.enable_index.dependents(p));
        }
        cand.extend_from_slice(&self.model.enable_index.conservative);
        if let Some(fired) = fired {
            cand.push(fired as u32);
        }
        cand.sort_unstable();
        cand.dedup();
        for &idx in &cand {
            self.reevaluate_one(idx as usize);
        }
        self.eval_scratch = cand;
    }

    /// The per-activity body of [`Simulator::reevaluate`].
    fn reevaluate_one(&mut self, idx: usize) {
        let enabled = self.model.activities[idx].enabled(&self.marking);
        match (enabled, self.scheduled[idx]) {
            (true, None) => self.activate(idx),
            (false, Some(ev)) => {
                self.queue.cancel(ev);
                self.scheduled[idx] = None;
                self.stats.aborts += 1;
            }
            (true, Some(ev)) => {
                let act = &self.model.activities[idx];
                if act.rate_fn.is_some() {
                    let k = act.rate_multiplier(&self.marking);
                    let old = self.activation_rate[idx];
                    // Symmetric relative-or-absolute tolerance: the earlier
                    // bound `EPSILON * k.abs()` collapses to ~0 for tiny k,
                    // so re-reading an unchanged near-zero rate registered
                    // as a change and forced a spurious resample.
                    if (k - old).abs() > f64::EPSILON * k.abs().max(old.abs()).max(1.0) {
                        self.queue.cancel(ev);
                        self.scheduled[idx] = None;
                        self.stats.aborts += 1;
                        self.activate(idx);
                    }
                }
            }
            (false, None) => {}
        }
    }

    /// Samples a delay and schedules the completion of activity `idx`.
    fn activate(&mut self, idx: usize) {
        let (delay, priority) = match &self.model.activities[idx].timing {
            Timing::Timed(dist) => {
                let base = dist.sample(&mut self.delay_rngs[idx]);
                // Marking-dependent rate: enabled() guarantees the
                // multiplier is positive here.
                let k = self.model.activities[idx].rate_multiplier(&self.marking);
                self.activation_rate[idx] = k;
                (base / k, 0)
            }
            Timing::Instantaneous { priority } => {
                (0.0, INSTANTANEOUS_BASE.saturating_add(*priority))
            }
        };
        let when = SimTime::new(self.time.as_f64() + delay);
        let ev = self.queue.schedule(when, priority, ActivityId(idx));
        self.scheduled[idx] = Some(ev);
    }
}

impl Model {
    /// Completes activity `act` **once** on a caller-supplied marking —
    /// the probe-fire entry point of the static analyzer (`vsched-analyze`).
    ///
    /// Executes the same atomic completion rule as [`Simulator`]: input
    /// gate functions, input arc consumption, case selection, output arcs,
    /// then the chosen case's output gates — all randomness drawn from
    /// `rng` (a single probe stream, unlike the simulator's per-activity
    /// stream layout). No activation/abort bookkeeping happens; the caller
    /// owns the exploration strategy.
    ///
    /// Returns the chosen case index, or `None` if the activity has
    /// marking-dependent case weights whose total was not positive and
    /// finite at selection time (in which case the marking has already
    /// absorbed the input-gate functions and input-arc consumption — probe
    /// on a clone if that matters).
    ///
    /// # Panics
    ///
    /// Panics (via [`Marking`]'s non-negativity guard) if `act` is fired
    /// while disabled; check [`crate::activity::ActivitySpec::enabled`]
    /// first. Gate closures may additionally panic on markings they were
    /// never designed to see — probe only along enabled firings.
    pub fn probe_fire(
        &self,
        act: ActivityId,
        marking: &mut Marking,
        rng: &mut Xoshiro256StarStar,
    ) -> Option<usize> {
        let spec = &self.activities[act.0];
        // 1. Input gate functions.
        for gate in &spec.input_gates {
            if let Some(f) = &gate.function {
                f(marking, rng);
            }
        }
        // 2. Consume input arcs.
        for &(p, w) in &spec.input_arcs {
            marking.add(p, -w);
        }
        // 3. Select a case.
        let case_idx = match &spec.case_weights {
            CaseWeights::Fixed(w) if w.len() == 1 => 0,
            CaseWeights::Fixed(w) => try_pick_case(w, rng)?,
            CaseWeights::Dynamic(f) => {
                let mut w = Vec::new();
                f(marking, &mut w);
                if w.len() != spec.cases.len() {
                    return None;
                }
                try_pick_case(&w, rng)?
            }
        };
        // 4. Produce output arcs.
        for &(p, w) in &spec.cases[case_idx].output_arcs {
            marking.add(p, w);
        }
        // 5. Output gate functions of the chosen case.
        for gate in &spec.cases[case_idx].output_gates {
            (gate.function)(marking, rng);
        }
        Some(case_idx)
    }

    /// The first half of a completion — input gate functions and input-arc
    /// consumption (steps 1–2) — plus evaluation of the case-weight vector,
    /// *without* selecting a case. The exhaustive-state verifier uses this
    /// to enumerate every positive-weight branch of a firing instead of
    /// sampling one; each branch is then finished on its own marking clone
    /// with [`Model::probe_complete_case`].
    ///
    /// Returns the case-weight vector (`vec![1.0]` for a single-case
    /// activity), or `None` if dynamic weights had the wrong arity. Weights
    /// that are not positive and finite are the caller's to reject, exactly
    /// as `try_pick_case` would.
    ///
    /// # Panics
    ///
    /// Same contract as [`Model::probe_fire`]: fire only enabled
    /// activities, probe only along reachable markings.
    pub fn probe_cases(
        &self,
        act: ActivityId,
        marking: &mut Marking,
        rng: &mut Xoshiro256StarStar,
    ) -> Option<Vec<f64>> {
        let spec = &self.activities[act.0];
        // 1. Input gate functions.
        for gate in &spec.input_gates {
            if let Some(f) = &gate.function {
                f(marking, rng);
            }
        }
        // 2. Consume input arcs.
        for &(p, w) in &spec.input_arcs {
            marking.add(p, -w);
        }
        // 3. Evaluate (but do not sample) the case weights.
        match &spec.case_weights {
            CaseWeights::Fixed(w) if w.len() == 1 => Some(vec![1.0]),
            CaseWeights::Fixed(w) => Some(w.clone()),
            CaseWeights::Dynamic(f) => {
                let mut w = Vec::new();
                f(marking, &mut w);
                (w.len() == spec.cases.len()).then_some(w)
            }
        }
    }

    /// The second half of a completion for a chosen case — output arcs and
    /// the case's output gate functions (steps 4–5). `marking` must be the
    /// state [`Model::probe_cases`] left behind (or a clone of it).
    ///
    /// # Panics
    ///
    /// Panics if `case` is out of range for the activity.
    pub fn probe_complete_case(
        &self,
        act: ActivityId,
        case: usize,
        marking: &mut Marking,
        rng: &mut Xoshiro256StarStar,
    ) {
        let spec = &self.activities[act.0];
        for &(p, w) in &spec.cases[case].output_arcs {
            marking.add(p, w);
        }
        for gate in &spec.cases[case].output_gates {
            (gate.function)(marking, rng);
        }
    }

    /// The marking update of one completion — steps 1–5 of the atomic SAN
    /// completion rule — on a caller-supplied marking with caller-supplied
    /// RNG streams. The single body shared by the sequential engine
    /// ([`Simulator::fire`]) and the shard workers, which is what makes
    /// their results identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the activity is fired while disabled (marking underflow)
    /// or if its case weights are invalid — both model bugs.
    pub(crate) fn fire_marking_update(
        &self,
        idx: usize,
        marking: &mut Marking,
        case_rng: &mut Xoshiro256StarStar,
        gate_rng: &mut Xoshiro256StarStar,
        weight_scratch: &mut Vec<f64>,
    ) {
        let act = &self.activities[idx];
        // 1. Input gate functions.
        for gate in &act.input_gates {
            if let Some(f) = &gate.function {
                f(marking, gate_rng);
            }
        }
        // 2. Consume input arcs.
        for &(p, w) in &act.input_arcs {
            marking.add(p, -w);
        }
        // 3. Select a case.
        let case_idx = match &act.case_weights {
            CaseWeights::Fixed(w) if w.len() == 1 => 0,
            CaseWeights::Fixed(w) => pick_case(w, case_rng, &act.name),
            CaseWeights::Dynamic(f) => {
                weight_scratch.clear();
                f(marking, weight_scratch);
                assert_eq!(
                    weight_scratch.len(),
                    act.cases.len(),
                    "dynamic case weights of `{}` must match case count",
                    act.name
                );
                pick_case(weight_scratch, case_rng, &act.name)
            }
        };
        // 4. Produce output arcs.
        for &(p, w) in &act.cases[case_idx].output_arcs {
            marking.add(p, w);
        }
        // 5. Output gate functions of the chosen case.
        for gate in &act.cases[case_idx].output_gates {
            (gate.function)(marking, gate_rng);
        }
    }
}

/// The queue priority of an instantaneous activity's completion event.
fn instantaneous_queue_priority(act: &ActivitySpec) -> i32 {
    let prio = act
        .timing()
        .priority()
        .expect("sharded activities are instantaneous");
    INSTANTANEOUS_BASE.saturating_add(prio)
}

/// Weighted case selection.
///
/// # Panics
///
/// Panics if the weights are not positive and finite — a model bug.
fn pick_case(weights: &[f64], rng: &mut Xoshiro256StarStar, activity: &str) -> usize {
    try_pick_case(weights, rng)
        .unwrap_or_else(|| panic!("case weights of `{activity}` must have positive finite total"))
}

/// Weighted case selection; `None` if the total is not positive and finite.
fn try_pick_case(weights: &[f64], rng: &mut Xoshiro256StarStar) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if !(total > 0.0 && total.is_finite()) {
        return None;
    }
    let mut target = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    Some(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use vsched_des::Dist;

    /// load → processed, deterministic delay 1 per token.
    #[test]
    fn deterministic_pipeline() {
        let mut mb = ModelBuilder::new();
        let input = mb.place("input", 3).unwrap();
        let output = mb.place("output", 0).unwrap();
        mb.activity("work")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(input, 1)
            .output_arc(output, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1);
        let stats = sim.run_until(10.0).unwrap();
        assert_eq!(stats.completions, 3);
        assert_eq!(sim.marking().tokens(input), 0);
        assert_eq!(sim.marking().tokens(output), 3);
        assert_eq!(sim.time(), SimTime::new(10.0));
    }

    #[test]
    fn completions_happen_at_sampled_times() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        mb.activity("move")
            .unwrap()
            .timed(Dist::deterministic(2.5).unwrap())
            .input_arc(p, 1)
            .output_arc(q, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1);
        sim.run_until(2.4).unwrap();
        assert_eq!(sim.marking().tokens(q), 0, "not yet");
        sim.run_until(2.6).unwrap();
        assert_eq!(sim.marking().tokens(q), 1, "fired at 2.5");
    }

    #[test]
    fn instantaneous_preempts_timed() {
        // An instantaneous activity consumes the token a timed one needs.
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let fast = mb.place("fast", 0).unwrap();
        let slow = mb.place("slow", 0).unwrap();
        mb.activity("timed")
            .unwrap()
            .timed(Dist::deterministic(0.0).unwrap())
            .input_arc(p, 1)
            .output_arc(slow, 1)
            .done()
            .unwrap();
        mb.activity("inst")
            .unwrap()
            .instantaneous(0)
            .input_arc(p, 1)
            .output_arc(fast, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 7);
        sim.run_until(1.0).unwrap();
        assert_eq!(sim.marking().tokens(fast), 1, "instantaneous wins");
        assert_eq!(sim.marking().tokens(slow), 0);
    }

    #[test]
    fn higher_priority_instantaneous_wins() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let low = mb.place("low", 0).unwrap();
        let high = mb.place("high", 0).unwrap();
        mb.activity("low_act")
            .unwrap()
            .instantaneous(1)
            .input_arc(p, 1)
            .output_arc(low, 1)
            .done()
            .unwrap();
        mb.activity("high_act")
            .unwrap()
            .instantaneous(9)
            .input_arc(p, 1)
            .output_arc(high, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 7);
        sim.run_until(0.0).unwrap();
        assert_eq!(sim.marking().tokens(high), 1);
        assert_eq!(sim.marking().tokens(low), 0);
    }

    #[test]
    fn disabled_activity_aborts() {
        // Two timed activities race for one token; the loser must abort.
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let a = mb.place("a", 0).unwrap();
        let b = mb.place("b", 0).unwrap();
        mb.activity("fast")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(p, 1)
            .output_arc(a, 1)
            .done()
            .unwrap();
        mb.activity("slow")
            .unwrap()
            .timed(Dist::deterministic(2.0).unwrap())
            .input_arc(p, 1)
            .output_arc(b, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 3);
        let stats = sim.run_until(10.0).unwrap();
        assert_eq!(sim.marking().tokens(a), 1);
        assert_eq!(sim.marking().tokens(b), 0);
        assert_eq!(stats.completions, 1);
        assert_eq!(sim.stats().aborts, 1);
    }

    #[test]
    fn input_gate_guards_and_functions_run() {
        let mut mb = ModelBuilder::new();
        let gatekeeper = mb.place("gatekeeper", 0).unwrap();
        let counter = mb.place("counter", 0).unwrap();
        let fires = mb.place("fires", 0).unwrap();
        mb.activity("guarded")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_gate(
                "ig",
                move |m| m.tokens(gatekeeper) > 0,
                move |m, _| m.add(counter, 1),
            )
            .guard("stop", move |m| m.tokens(fires) < 2)
            .output_arc(fires, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 3);
        sim.run_until(10.0).unwrap();
        assert_eq!(sim.marking().tokens(fires), 0, "gatekeeper empty: disabled");

        // Rebuild with the gatekeeper set.
        let mut mb = ModelBuilder::new();
        let gatekeeper = mb.place("gatekeeper", 1).unwrap();
        let counter = mb.place("counter", 0).unwrap();
        let fires = mb.place("fires", 0).unwrap();
        mb.activity("guarded")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_gate(
                "ig",
                move |m| m.tokens(gatekeeper) > 0,
                move |m, _| m.add(counter, 1),
            )
            .guard("stop", move |m| m.tokens(fires) < 2)
            .output_arc(fires, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 3);
        sim.run_until(10.0).unwrap();
        assert_eq!(sim.marking().tokens(fires), 2, "stops after two fires");
        assert_eq!(sim.marking().tokens(counter), 2, "input gate fn ran");
    }

    #[test]
    fn cases_split_probabilistically() {
        let mut mb = ModelBuilder::new();
        let heads = mb.place("heads", 0).unwrap();
        let tails = mb.place("tails", 0).unwrap();
        mb.activity("flip")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .guard("forever", move |m| {
                m.tokens(heads) + m.tokens(tails) < 10_000
            })
            .case(3.0)
            .output_arc(heads, 1)
            .case(1.0)
            .output_arc(tails, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 11);
        sim.run_until(20_000.0).unwrap();
        let h = sim.marking().tokens(heads) as f64;
        let t = sim.marking().tokens(tails) as f64;
        assert_eq!(h + t, 10_000.0);
        let frac = h / (h + t);
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn dynamic_case_weights() {
        let mut mb = ModelBuilder::new();
        let selector = mb.place("selector", 1).unwrap();
        let a = mb.place("a", 0).unwrap();
        let b = mb.place("b", 0).unwrap();
        mb.activity("route")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .guard("limit", move |m| m.tokens(a) + m.tokens(b) < 100)
            .case(1.0)
            .output_arc(a, 1)
            .case(1.0)
            .output_arc(b, 1)
            .dynamic_case_weights(move |m| {
                if m.tokens(selector) > 0 {
                    vec![1.0, 0.0]
                } else {
                    vec![0.0, 1.0]
                }
            })
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 5);
        sim.run_until(200.0).unwrap();
        assert_eq!(sim.marking().tokens(a), 100, "selector forces case 0");
        assert_eq!(sim.marking().tokens(b), 0);
    }

    #[test]
    fn rate_reward_measures_fraction_of_time() {
        // A token alternates: 1 unit in `on`, 3 units in `off`.
        let mut mb = ModelBuilder::new();
        let on = mb.place("on", 1).unwrap();
        let off = mb.place("off", 0).unwrap();
        mb.activity("to_off")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(on, 1)
            .output_arc(off, 1)
            .done()
            .unwrap();
        mb.activity("to_on")
            .unwrap()
            .timed(Dist::deterministic(3.0).unwrap())
            .input_arc(off, 1)
            .output_arc(on, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 2);
        let r = sim.add_rate_reward("on fraction", move |m| m.tokens(on) as f64);
        sim.run_until(4000.0).unwrap();
        let avg = sim.rate_reward_average(r);
        assert!((avg - 0.25).abs() < 1e-9, "avg {avg}");
        assert_eq!(sim.rate_reward_name(r), "on fraction");
    }

    #[test]
    fn impulse_reward_counts_completions() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 5).unwrap();
        let done_p = mb.place("done", 0).unwrap();
        let act = mb
            .activity("consume")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(p, 1)
            .output_arc(done_p, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 2);
        let r = sim.add_impulse_reward("completions", act, |_| 1.0);
        sim.run_until(100.0).unwrap();
        assert_eq!(sim.impulse_count(r), 5);
        assert_eq!(sim.impulse_total(r), 5.0);
    }

    #[test]
    fn reset_rewards_discards_warmup() {
        let mut mb = ModelBuilder::new();
        let on = mb.place("on", 1).unwrap();
        let off = mb.place("off", 0).unwrap();
        mb.activity("to_off")
            .unwrap()
            .timed(Dist::deterministic(10.0).unwrap())
            .input_arc(on, 1)
            .output_arc(off, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 2);
        let r = sim.add_rate_reward("on", move |m| m.tokens(on) as f64);
        sim.run_until(10.0).unwrap(); // on for the whole warm-up
        sim.reset_rewards();
        sim.run_until(20.0).unwrap(); // off for the whole window
        assert_eq!(sim.rate_reward_average(r), 0.0);
    }

    #[test]
    fn instantaneous_loop_detected() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        mb.activity("pq")
            .unwrap()
            .instantaneous(0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .done()
            .unwrap();
        mb.activity("qp")
            .unwrap()
            .instantaneous(0)
            .input_arc(q, 1)
            .output_arc(p, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 2);
        sim.set_max_zero_advance(1000);
        let err = sim.run_until(1.0).unwrap_err();
        assert!(matches!(err, SanError::InstantaneousLoop { .. }));
    }

    #[test]
    fn event_monotonicity_check_passes_on_normal_run() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 0).unwrap();
        mb.activity("gen")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .guard("cap", move |m| m.tokens(p) < 10_000)
            .output_arc(p, 1)
            .done()
            .unwrap();
        mb.activity("drain")
            .unwrap()
            .timed(Dist::exponential(0.5).unwrap())
            .input_arc(p, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 9);
        sim.enable_event_monotonicity_check();
        sim.run_until(500.0).unwrap();
        assert!(sim.stats().completions > 0);
    }

    #[test]
    fn run_is_reproducible_per_seed() {
        let build = || {
            let mut mb = ModelBuilder::new();
            let p = mb.place("p", 0).unwrap();
            mb.activity("gen")
                .unwrap()
                .timed(Dist::exponential(1.0).unwrap())
                .guard("cap", move |m| m.tokens(p) < 1_000_000)
                .output_arc(p, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let mut s1 = Simulator::new(build(), 77);
        let mut s2 = Simulator::new(build(), 77);
        let mut s3 = Simulator::new(build(), 78);
        s1.run_until(100.0).unwrap();
        s2.run_until(100.0).unwrap();
        s3.run_until(100.0).unwrap();
        let p = s1.model().place_by_name("p").unwrap();
        assert_eq!(s1.marking().tokens(p), s2.marking().tokens(p));
        assert_ne!(
            s1.marking().tokens(p),
            s3.marking().tokens(p),
            "different seeds should (almost surely) diverge"
        );
    }

    #[test]
    fn mm1_queue_matches_theory() {
        // λ = 0.5, μ = 1.0 → ρ = 0.5; mean number in system L = ρ/(1-ρ) = 1.
        let mut mb = ModelBuilder::new();
        let system = mb.place("system", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .output_arc(system, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .input_arc(system, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 4242);
        let l = sim.add_rate_reward("L", move |m| m.tokens(system) as f64);
        sim.run_until(5_000.0).unwrap();
        sim.reset_rewards();
        sim.run_until(200_000.0).unwrap();
        let avg = sim.rate_reward_average(l);
        assert!((avg - 1.0).abs() < 0.15, "L = {avg}, expected ≈ 1.0");
    }

    #[test]
    fn multiple_run_until_calls_accumulate() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 0).unwrap();
        mb.activity("tick")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .guard("cap", move |m| m.tokens(p) < 1000)
            .output_arc(p, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 2);
        sim.run_until(5.0).unwrap();
        assert_eq!(sim.marking().tokens(p), 5);
        sim.run_until(12.0).unwrap();
        assert_eq!(sim.marking().tokens(p), 12);
    }

    /// A model exercising every closure kind — declared guards, an input
    /// gate with a function, output gates, dynamic case weights, and a
    /// rate-scaled activity — used by the incremental/full comparison.
    fn mixed_model() -> Model {
        let mut mb = ModelBuilder::new();
        let queue = mb.place("queue", 0).unwrap();
        let served = mb.place("served", 0).unwrap();
        let vip = mb.place("vip", 0).unwrap();
        let toggle = mb.place("toggle", 1).unwrap();
        let log = mb.place("log", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .guard("cap", move |m| m.tokens(queue) < 50)
            .reads([queue])
            .output_arc(queue, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .rate_multiplier(move |m| m.tokens(queue).min(3) as f64)
            .reads([queue])
            .input_arc(queue, 1)
            .case(1.0)
            .output_arc(served, 1)
            .case(1.0)
            .output_arc(vip, 1)
            .output_gate("note", move |m, _| m.add(log, 1))
            .reads([])
            .dynamic_case_weights_into(move |m, out| {
                out.push(1.0 + m.tokens(toggle) as f64);
                out.push(1.0);
            })
            .reads([toggle])
            .done()
            .unwrap();
        mb.activity("flip")
            .unwrap()
            .timed(Dist::deterministic(3.0).unwrap())
            .input_gate(
                "flip_ig",
                move |m| m.tokens(served) > 0,
                move |m, _| {
                    let t = m.tokens(toggle);
                    m.set(toggle, 1 - t);
                },
            )
            .reads([served])
            .input_arc(served, 1)
            .done()
            .unwrap();
        mb.build().unwrap()
    }

    #[test]
    fn incremental_matches_full_rescan_bit_for_bit() {
        let mut inc = Simulator::new(mixed_model(), 99);
        let mut full = Simulator::new(mixed_model(), 99);
        full.set_full_rescan(true);
        assert!(!inc.full_rescan());
        assert!(full.full_rescan());
        let queue = inc.model().place_by_name("queue").unwrap();
        let r_inc = inc.add_rate_reward_with_reads("q", [queue], move |m| m.tokens(queue) as f64);
        let r_full = full.add_rate_reward("q", move |m| m.tokens(queue) as f64);
        for horizon in [3.0, 7.5, 40.0, 200.0] {
            inc.run_until(horizon).unwrap();
            full.run_until(horizon).unwrap();
            assert_eq!(inc.marking().as_slice(), full.marking().as_slice());
            assert_eq!(inc.stats(), full.stats());
            assert_eq!(
                inc.rate_reward_average(r_inc).to_bits(),
                full.rate_reward_average(r_full).to_bits(),
                "reward averages must be bit-identical at t={horizon}"
            );
        }
        assert!(inc.stats().completions > 50, "model actually ran");
    }

    #[test]
    fn undeclared_guard_falls_back_to_conservative_rescan() {
        // `watcher`'s guard reads `flag`, which only an output *gate* of
        // `writer` touches — no arc connects them. With the guard's
        // read-set undeclared the activity must be revisited after every
        // firing (conservative fallback), so the enablement change is
        // still observed.
        let mut mb = ModelBuilder::new();
        let tick = mb.place("tick", 3).unwrap();
        let flag = mb.place("flag", 0).unwrap();
        let seen = mb.place("seen", 0).unwrap();
        mb.activity("writer")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(tick, 1)
            .output_gate("raise", move |m, _| m.set(flag, 1))
            .done()
            .unwrap();
        mb.activity("watcher")
            .unwrap()
            .instantaneous(0)
            .guard("armed", move |m| m.tokens(flag) > 0 && m.tokens(seen) == 0)
            .output_arc(seen, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        assert_eq!(
            model.conservative_activities().count(),
            1,
            "undeclared guard makes `watcher` conservative"
        );
        let mut sim = Simulator::new(model, 5);
        sim.run_until(10.0).unwrap();
        assert_eq!(sim.marking().tokens(seen), 1, "enablement change caught");
    }

    #[test]
    fn rate_reactivation_tolerance_is_absolute_near_zero() {
        // `slow`'s multiplier jitters at the 1e-21 scale as `sink` fills —
        // numerically the same near-zero rate. The old relative-only bound
        // (EPSILON * k) treated every jitter as a change and resampled;
        // the symmetric relative-or-absolute bound must not.
        let build = |scale: f64, jitter: f64| {
            let mut mb = ModelBuilder::new();
            let nudge = mb.place("nudge", 5).unwrap();
            let sink = mb.place("sink", 0).unwrap();
            mb.activity("driver")
                .unwrap()
                .timed(Dist::deterministic(1.0).unwrap())
                .input_arc(nudge, 1)
                .output_arc(sink, 1)
                .done()
                .unwrap();
            mb.activity("slow")
                .unwrap()
                .timed(Dist::deterministic(1.0).unwrap())
                .rate_multiplier(move |m| scale + jitter * m.tokens(sink) as f64)
                .reads([sink])
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        // k ≈ 1e-18: sub-epsilon jitter, no reactivation => no aborts.
        let mut sim = Simulator::new(build(1e-18, 1e-21), 3);
        sim.run_until(6.0).unwrap();
        assert_eq!(sim.stats().completions, 5, "only the driver fires");
        assert_eq!(sim.stats().aborts, 0, "near-zero jitter must not resample");

        // O(1) changes still reactivate: k goes 1.0 → 2.0 at the first
        // driver firing and stays there => exactly one abort+resample.
        let mut mb = ModelBuilder::new();
        let nudge = mb.place("nudge", 5).unwrap();
        let sink = mb.place("sink", 0).unwrap();
        let out = mb.place("out", 0).unwrap();
        mb.activity("driver")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(nudge, 1)
            .output_arc(sink, 1)
            .done()
            .unwrap();
        mb.activity("slow")
            .unwrap()
            .timed(Dist::deterministic(100.0).unwrap())
            .rate_multiplier(move |m| if m.tokens(sink) > 0 { 2.0 } else { 1.0 })
            .reads([sink])
            .output_arc(out, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 3);
        sim.run_until(6.0).unwrap();
        assert_eq!(sim.stats().aborts, 1, "a real rate change reactivates");
    }

    #[test]
    fn dynamic_case_weights_into_reuses_scratch() {
        let mut mb = ModelBuilder::new();
        let selector = mb.place("selector", 1).unwrap();
        let a = mb.place("a", 0).unwrap();
        let b = mb.place("b", 0).unwrap();
        mb.activity("route")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .guard("limit", move |m| m.tokens(a) + m.tokens(b) < 100)
            .reads([a, b])
            .case(1.0)
            .output_arc(a, 1)
            .case(1.0)
            .output_arc(b, 1)
            .dynamic_case_weights_into(move |m, out| {
                if m.tokens(selector) > 0 {
                    out.extend_from_slice(&[1.0, 0.0]);
                } else {
                    out.extend_from_slice(&[0.0, 1.0]);
                }
            })
            .reads([selector])
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 5);
        sim.run_until(200.0).unwrap();
        assert_eq!(sim.marking().tokens(a), 100, "selector forces case 0");
        assert_eq!(sim.marking().tokens(b), 0);
    }

    #[test]
    fn apply_external_enables_and_disables_activities() {
        let build = || {
            let mut mb = ModelBuilder::new();
            let fuel = mb.place("fuel", 0).unwrap();
            let out = mb.place("out", 0).unwrap();
            mb.activity("burn")
                .unwrap()
                .timed(Dist::deterministic(1.0).unwrap())
                .input_arc(fuel, 1)
                .output_arc(out, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let mut sim = Simulator::new(build(), 3);
        sim.run_until(5.0).unwrap();
        let fuel = sim.model().place_by_name("fuel").unwrap();
        let out = sim.model().place_by_name("out").unwrap();
        assert_eq!(sim.marking().tokens(out), 0, "nothing to burn yet");
        // Inject two tokens externally: the activity activates and fires.
        sim.apply_external(|m| m.set(fuel, 2));
        sim.run_until(10.0).unwrap();
        assert_eq!(sim.marking().tokens(out), 2, "externally injected work ran");
        // Draining the place externally aborts the pending activation.
        sim.apply_external(|m| m.set(fuel, 1));
        let aborts_before = sim.stats().aborts;
        sim.apply_external(|m| m.set(fuel, 0));
        assert_eq!(sim.stats().aborts, aborts_before + 1, "activation aborted");
        sim.run_until(20.0).unwrap();
        assert_eq!(sim.marking().tokens(out), 2, "drained token never fires");
    }

    #[test]
    fn apply_external_before_first_run_matches_initial_marking() {
        // Injecting tokens before the first run must behave like a model
        // built with them: same completions, same reward average.
        let build = |initial: i64| {
            let mut mb = ModelBuilder::new();
            let src = mb.place("src", initial).unwrap();
            let sink = mb.place("sink", 0).unwrap();
            mb.activity("mv")
                .unwrap()
                .timed(Dist::exponential(1.0).unwrap())
                .input_arc(src, 1)
                .output_arc(sink, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let mut a = Simulator::new(build(4), 9);
        let mut b = Simulator::new(build(4), 9);
        let src = a.model().place_by_name("src").unwrap();
        a.apply_external(|_| {}); // no-op external call before start
        a.run_until(50.0).unwrap();
        b.run_until(50.0).unwrap();
        assert_eq!(a.marking().as_slice(), b.marking().as_slice());
        assert_eq!(a.stats().completions, b.stats().completions);
        assert_eq!(a.marking().tokens(src), 0);
    }

    #[test]
    fn apply_external_reactivates_rate_scaled_activities() {
        let mut mb = ModelBuilder::new();
        let speed = mb.place("speed", 1).unwrap();
        let out = mb.place("out", 0).unwrap();
        mb.activity("work")
            .unwrap()
            .timed(Dist::deterministic(10.0).unwrap())
            .rate_multiplier(move |m| m.tokens(speed) as f64)
            .reads([speed])
            .guard("cap", move |m| m.tokens(out) < 100)
            .reads([out])
            .output_arc(out, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 3);
        sim.run_until(5.0).unwrap();
        assert_eq!(sim.marking().tokens(out), 0, "delay 10 not yet elapsed");
        // Multiplier 0 disables the activity entirely.
        sim.apply_external(|m| m.set(speed, 0));
        sim.run_until(40.0).unwrap();
        assert_eq!(sim.marking().tokens(out), 0, "zero rate never fires");
        // Restoring a positive rate resamples from now.
        sim.apply_external(|m| m.set(speed, 10));
        sim.run_until(45.0).unwrap();
        assert!(sim.marking().tokens(out) > 0, "rescaled delay 1 fires");
    }

    #[test]
    fn apply_external_invalidates_shard_plan() {
        let mut mb = ModelBuilder::new();
        let a = mb.place("a", 2).unwrap();
        let b = mb.place("b", 2).unwrap();
        mb.activity("da")
            .unwrap()
            .instantaneous(0)
            .input_arc(a, 1)
            .done()
            .unwrap();
        mb.activity("db")
            .unwrap()
            .instantaneous(0)
            .input_arc(b, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1);
        sim.set_shards(2);
        sim.run_until(0.5).unwrap();
        assert!(
            sim.shard_plan().is_some(),
            "plan derived by the sharded run"
        );
        let place_a = sim.model().place_by_name("a").unwrap();
        sim.apply_external(|m| m.set(place_a, 1));
        assert!(
            sim.shard_plan().is_none(),
            "membership change drops the plan"
        );
        sim.run_until(1.0).unwrap();
        assert_eq!(
            sim.marking().tokens(place_a),
            0,
            "re-derived plan still runs"
        );
    }

    /// A gate that lies about its write-set (declares `acc_b`, writes
    /// `acc_a`) splits into a shard it does not belong to; the merge
    /// phase's patch validation catches the cross-shard write instead of
    /// silently corrupting the other shard's state.
    #[test]
    fn lying_cross_shard_write_is_a_shard_violation() {
        let mut mb = ModelBuilder::new();
        let src_a = mb.place("src_a", 3).unwrap();
        let acc_a = mb.place("acc_a", 0).unwrap();
        let src_b = mb.place("src_b", 3).unwrap();
        let acc_b = mb.place("acc_b", 0).unwrap();
        mb.activity("honest")
            .unwrap()
            .instantaneous(0)
            .input_arc(src_a, 1)
            .output_gate("bump_a", move |m, _| m.add(acc_a, 1))
            .reads([])
            .writes([acc_a])
            .done()
            .unwrap();
        mb.activity("liar")
            .unwrap()
            .instantaneous(0)
            .input_arc(src_b, 1)
            .output_gate("bump_b", move |m, _| m.add(acc_a, 1))
            .reads([])
            .writes([acc_b])
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        assert_eq!(
            crate::shard::ShardPlan::derive(&model).num_shards(),
            2,
            "the lie hides the overlap from static derivation"
        );
        let mut sim = Simulator::new(model, 1);
        sim.set_shards(2);
        let err = sim.run_until(1.0).unwrap_err();
        match err {
            SanError::ShardViolation { activity, place } => {
                assert_eq!(activity, "liar");
                assert_eq!(place, "acc_a");
            }
            other => panic!("expected ShardViolation, got {other:?}"),
        }
    }

    /// An explicit shard request capped to one lane (single-core host)
    /// takes the direct-fire form of the sharded engine — which must keep
    /// the footprint validation, not silently fall back to sequential.
    #[test]
    fn fixed_mode_capped_to_one_lane_still_detects_violations() {
        let mut mb = ModelBuilder::new();
        let src_a = mb.place("src_a", 3).unwrap();
        let acc_a = mb.place("acc_a", 0).unwrap();
        let src_b = mb.place("src_b", 3).unwrap();
        let acc_b = mb.place("acc_b", 0).unwrap();
        mb.activity("honest")
            .unwrap()
            .instantaneous(0)
            .input_arc(src_a, 1)
            .output_gate("bump_a", move |m, _| m.add(acc_a, 1))
            .reads([])
            .writes([acc_a])
            .done()
            .unwrap();
        mb.activity("liar")
            .unwrap()
            .instantaneous(0)
            .input_arc(src_b, 1)
            .output_gate("bump_b", move |m, _| m.add(acc_a, 1))
            .reads([])
            .writes([acc_b])
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1);
        sim.set_shards(4);
        sim.set_shard_available_override(Some(1));
        let err = sim.run_until(1.0).unwrap_err();
        match err {
            SanError::ShardViolation { activity, place } => {
                assert_eq!(activity, "liar");
                assert_eq!(place, "acc_a");
            }
            other => panic!("expected ShardViolation, got {other:?}"),
        }
        assert_eq!(sim.resolved_shards(), Some(1), "one lane resolved");
    }

    /// Auto mode stays sequential on narrow plans or single-core hosts
    /// and engages `min(avail, plan width)` lanes otherwise.
    #[test]
    fn auto_mode_resolution_follows_plan_width_and_parallelism() {
        let build = || {
            let mut mb = ModelBuilder::new();
            let a = mb.place("a", 5).unwrap();
            let b = mb.place("b", 5).unwrap();
            mb.activity("da")
                .unwrap()
                .instantaneous(0)
                .input_arc(a, 1)
                .done()
                .unwrap();
            mb.activity("db")
                .unwrap()
                .instantaneous(0)
                .input_arc(b, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };

        // Plan width 2 < default threshold: sequential even with cores.
        let mut sim = Simulator::new(build(), 1);
        sim.set_shard_mode(ShardMode::Auto);
        sim.set_shard_available_override(Some(8));
        sim.run_until(0.5).unwrap();
        assert_eq!(sim.resolved_shards(), None, "narrow plan stays sequential");

        // Threshold lowered: lanes = min(avail, plan width) = 2.
        let mut sim = Simulator::new(build(), 1);
        sim.set_shard_mode(ShardMode::Auto);
        sim.set_shard_available_override(Some(8));
        sim.set_auto_shard_threshold(2);
        sim.run_until(0.5).unwrap();
        assert_eq!(sim.resolved_shards(), Some(2), "plan caps the lanes");

        // Single core: auto never pays for the sharded engine.
        let mut sim = Simulator::new(build(), 1);
        sim.set_shard_mode(ShardMode::Auto);
        sim.set_shard_available_override(Some(1));
        sim.set_auto_shard_threshold(2);
        sim.run_until(0.5).unwrap();
        assert_eq!(sim.resolved_shards(), None, "no parallelism, no lanes");

        // Compat shorthand: set_shards maps to Fixed / Off.
        let mut sim = Simulator::new(build(), 1);
        sim.set_shards(3);
        assert_eq!(sim.shard_mode(), ShardMode::Fixed(3));
        sim.set_shards(1);
        assert_eq!(sim.shard_mode(), ShardMode::Off);
    }

    /// The same lie is harmless sequentially — pins that the violation is
    /// a sharded-engine check, not a general builder restriction.
    #[test]
    fn lying_write_set_is_harmless_sequentially() {
        let mut mb = ModelBuilder::new();
        let src = mb.place("src", 3).unwrap();
        let acc = mb.place("acc", 0).unwrap();
        let decoy = mb.place("decoy", 0).unwrap();
        mb.activity("liar")
            .unwrap()
            .instantaneous(0)
            .input_arc(src, 1)
            .output_gate("bump", move |m, _| m.add(acc, 1))
            .reads([])
            .writes([decoy])
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1);
        sim.run_until(1.0).unwrap();
        assert_eq!(sim.marking().tokens(acc), 3);
    }
}
