//! Numerical (analytic) solution of Markovian SANs.
//!
//! The paper's background section notes that "once constructed, a model
//! can be solved either analytically/numerically or by simulation, as
//! provided by the Mobius tool". This module supplies the numerical side
//! for the class of models where it is sound: every timed activity is
//! **exponential**, making the SAN a continuous-time Markov chain (CTMC)
//! over its reachable markings.
//!
//! Pipeline:
//!
//! 1. **State-space generation** — breadth-first exploration of reachable
//!    markings. *Vanishing* markings (where an instantaneous activity is
//!    enabled) are eliminated on the fly: the highest-priority enabled
//!    instantaneous activity fires immediately, its probabilistic cases
//!    splitting the probability mass, until a *tangible* marking is
//!    reached.
//! 2. **Steady state** — the CTMC generator is uniformized and solved by
//!    power iteration (`π P = π`, `P = I + Q/Λ`), which converges for
//!    ergodic chains.
//! 3. **Rewards** — the steady-state expectation of any rate reward is
//!    `Σ_s π(s)·f(s)`.
//!
//! # Determinism requirement
//!
//! Gate functions receive an RNG stream for simulation; for numerical
//! solution they **must not use it** — each firing must be a deterministic
//! function of the marking. The solver passes a fixed-seed stream, so a
//! stochastic gate silently degrades the result; keep gates deterministic
//! (sample in case weights instead, which the solver handles exactly).

use std::collections::HashMap;

use vsched_des::{Dist, Xoshiro256StarStar};

use crate::activity::{CaseWeights, Timing};
use crate::builder::Model;
use crate::error::SanError;
use crate::marking::Marking;

/// Configuration for [`solve_steady_state`].
#[derive(Debug, Clone, Copy)]
pub struct CtmcOptions {
    /// Abort exploration past this many tangible states.
    pub max_states: usize,
    /// Power-iteration convergence tolerance (L1 distance per sweep).
    pub tolerance: f64,
    /// Power-iteration cap.
    pub max_iterations: usize,
    /// Recursion cap when eliminating chains of vanishing markings.
    pub max_vanishing_depth: usize,
}

impl Default for CtmcOptions {
    fn default() -> Self {
        CtmcOptions {
            max_states: 100_000,
            tolerance: 1e-12,
            max_iterations: 200_000,
            max_vanishing_depth: 1_000,
        }
    }
}

/// Steady-state solution of a Markovian SAN.
#[derive(Debug)]
pub struct CtmcSolution {
    states: Vec<Marking>,
    pi: Vec<f64>,
    converged: bool,
    iterations: usize,
}

impl CtmcSolution {
    /// Number of tangible states explored.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Whether power iteration met the tolerance (a `false` here usually
    /// means the chain is reducible or periodic — treat results with
    /// suspicion).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Power-iteration sweeps performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Steady-state probability vector, aligned with the explored states.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.pi
    }

    /// The explored tangible markings.
    #[must_use]
    pub fn states(&self) -> &[Marking] {
        &self.states
    }

    /// Steady-state expectation of a rate reward: `Σ π(s) f(s)`.
    pub fn expected_reward(&self, f: impl Fn(&Marking) -> f64) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .map(|(m, &p)| p * f(m))
            .sum()
    }

    /// Total steady-state probability of markings satisfying `pred`.
    pub fn probability_where(&self, pred: impl Fn(&Marking) -> bool) -> f64 {
        self.expected_reward(|m| f64::from(pred(m)))
    }
}

/// The explored CTMC: tangible markings, rate transitions, and the
/// probability distribution over initial tangible states.
struct Chain {
    states: Vec<Marking>,
    transitions: Vec<Vec<(usize, f64)>>,
    initial: Vec<f64>,
}

/// Generates the tangible state space and rate matrix of a Markovian SAN.
fn build_chain(model: &mut Model, options: CtmcOptions) -> Result<Chain, SanError> {
    // Validate: every timed activity exponential; collect rates.
    let mut rates = vec![0.0f64; model.activities.len()];
    for (i, act) in model.activities.iter().enumerate() {
        match &act.timing {
            Timing::Timed(Dist::Exponential { mean }) => rates[i] = 1.0 / mean,
            Timing::Timed(_) => {
                return Err(SanError::NotMarkovian {
                    activity: act.name().to_string(),
                })
            }
            Timing::Instantaneous { .. } => {}
        }
    }

    let mut explorer = Explorer {
        model,
        options,
        rng: Xoshiro256StarStar::seed_from(0),
    };

    // Resolve the initial marking (it may be vanishing).
    let initial_marking = explorer.model.initial_marking();
    let initial_tangibles = explorer.resolve_vanishing(initial_marking, 0)?;

    // BFS over tangible markings.
    let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut states: Vec<Marking> = Vec::new();
    let mut transitions: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    let intern = |m: Marking,
                  index: &mut HashMap<Vec<i64>, usize>,
                  states: &mut Vec<Marking>,
                  transitions: &mut Vec<Vec<(usize, f64)>>,
                  frontier: &mut Vec<usize>|
     -> Result<usize, SanError> {
        let key = m.as_slice().to_vec();
        if let Some(&i) = index.get(&key) {
            return Ok(i);
        }
        if states.len() >= options.max_states {
            return Err(SanError::StateSpaceExceeded {
                limit: options.max_states,
            });
        }
        let i = states.len();
        index.insert(key, i);
        states.push(m);
        transitions.push(Vec::new());
        frontier.push(i);
        Ok(i)
    };
    let mut initial = Vec::new();
    for (m, p) in initial_tangibles {
        let i = intern(m, &mut index, &mut states, &mut transitions, &mut frontier)?;
        if initial.len() <= i {
            initial.resize(i + 1, 0.0);
        }
        initial[i] += p;
    }

    while let Some(s) = frontier.pop() {
        let marking = states[s].clone();
        // Index loop: the body needs `&mut explorer` to fire cases.
        #[allow(clippy::needless_range_loop)]
        for act_idx in 0..explorer.model.activities.len() {
            let is_timed = matches!(explorer.model.activities[act_idx].timing, Timing::Timed(_));
            if !is_timed || !explorer.model.activities[act_idx].enabled(&marking) {
                continue;
            }
            let rate =
                rates[act_idx] * explorer.model.activities[act_idx].rate_multiplier(&marking);
            for (succ, prob) in explorer.fire_all_cases(&marking, act_idx)? {
                let tangibles = explorer.resolve_vanishing(succ, 0)?;
                for (t_marking, t_prob) in tangibles {
                    let t = intern(
                        t_marking,
                        &mut index,
                        &mut states,
                        &mut transitions,
                        &mut frontier,
                    )?;
                    if t != s {
                        transitions[s].push((t, rate * prob * t_prob));
                    }
                }
            }
        }
    }
    initial.resize(states.len(), 0.0);
    Ok(Chain {
        states,
        transitions,
        initial,
    })
}

impl Chain {
    /// Total exit rate of each state and the uniformization constant.
    fn uniformize(&self) -> (Vec<f64>, f64) {
        let exit: Vec<f64> = self
            .transitions
            .iter()
            .map(|ts| ts.iter().map(|&(_, r)| r).sum())
            .collect();
        let lambda = exit.iter().cloned().fold(0.0, f64::max).max(1e-12) * 1.1;
        (exit, lambda)
    }

    /// One step of the uniformized DTMC: `next = pi · P`.
    fn step(&self, pi: &[f64], next: &mut [f64], exit: &[f64], lambda: f64) {
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for s in 0..self.states.len() {
            next[s] += pi[s] * (1.0 - exit[s] / lambda);
            for &(t, r) in &self.transitions[s] {
                next[t] += pi[s] * r / lambda;
            }
        }
    }
}

/// Solves the steady state of a Markovian SAN. See the module docs.
///
/// Takes `&mut Model` because gate functions are `FnMut`.
///
/// # Errors
///
/// * [`SanError::NotMarkovian`] if any timed activity is non-exponential;
/// * [`SanError::StateSpaceExceeded`] past `options.max_states`;
/// * [`SanError::InstantaneousLoop`] if vanishing markings chain beyond
///   `options.max_vanishing_depth`.
pub fn solve_steady_state(
    model: &mut Model,
    options: CtmcOptions,
) -> Result<CtmcSolution, SanError> {
    let chain = build_chain(model, options)?;
    let Chain {
        states,
        transitions: _,
        initial: _,
    } = &chain;
    let n = states.len();
    let (exit, lambda) = chain.uniformize();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..options.max_iterations {
        iterations = it + 1;
        chain.step(&pi, &mut next, &exit, lambda);
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < options.tolerance {
            converged = true;
            break;
        }
    }
    // Normalize against drift.
    let total: f64 = pi.iter().sum();
    if total > 0.0 {
        for p in &mut pi {
            *p /= total;
        }
    }
    Ok(CtmcSolution {
        states: chain.states,
        pi,
        converged,
        iterations,
    })
}

/// Transient solution: the state distribution at virtual time `t`, by
/// uniformization — `π(t) = Σ_k Poisson(Λt; k) · π(0) Pᵏ`, truncated when
/// the remaining Poisson mass falls below the tolerance.
///
/// # Errors
///
/// Same conditions as [`solve_steady_state`]; additionally rejects a
/// negative or non-finite `t` via
/// [`SanError::NotMarkovian`]-unrelated panic-free validation (returns the
/// distribution at `t = 0` for `t <= 0`).
pub fn solve_transient(
    model: &mut Model,
    t: f64,
    options: CtmcOptions,
) -> Result<CtmcSolution, SanError> {
    let chain = build_chain(model, options)?;
    let n = chain.states.len();
    let (exit, lambda) = chain.uniformize();
    let mut pk = chain.initial.clone(); // π(0) Pᵏ for k = 0
    let mut result = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    let lt = (lambda * t.max(0.0)).min(1e9);
    // Poisson(Λt) weights, computed iteratively to avoid overflow.
    let mut weight = (-lt).exp();
    let mut accumulated = 0.0;
    let mut k = 0usize;
    let mut iterations = 0;
    while accumulated < 1.0 - options.tolerance && k < options.max_iterations {
        if weight > 0.0 {
            for (r, &p) in result.iter_mut().zip(&pk) {
                *r += weight * p;
            }
            accumulated += weight;
        }
        chain.step(&pk, &mut next, &exit, lambda);
        std::mem::swap(&mut pk, &mut next);
        k += 1;
        iterations = k;
        weight *= lt / k as f64;
        // Guard against underflowed leading weights for large Λt: once the
        // weight rises above the tolerance the accumulation is meaningful.
        if weight.is_nan() {
            break;
        }
    }
    // Normalize the truncated distribution.
    let total: f64 = result.iter().sum();
    let converged = accumulated >= 1.0 - options.tolerance.max(1e-9) || total > 0.999;
    if total > 0.0 {
        for p in &mut result {
            *p /= total;
        }
    }
    Ok(CtmcSolution {
        states: chain.states,
        pi: result,
        converged,
        iterations,
    })
}

struct Explorer<'a> {
    model: &'a mut Model,
    options: CtmcOptions,
    /// Fixed-seed stream handed to gate functions (which must ignore it).
    rng: Xoshiro256StarStar,
}

impl Explorer<'_> {
    /// Fires activity `act_idx` in `marking`, once per case, returning the
    /// successor markings with their case probabilities.
    fn fire_all_cases(
        &mut self,
        marking: &Marking,
        act_idx: usize,
    ) -> Result<Vec<(Marking, f64)>, SanError> {
        let num_cases = self.model.activities[act_idx].cases.len();
        let weights: Vec<f64> = match &self.model.activities[act_idx].case_weights {
            CaseWeights::Fixed(w) => w.clone(),
            CaseWeights::Dynamic(f) => {
                // Dynamic weights are evaluated *before* the firing, on the
                // pre-state (the simulator evaluates them after the input
                // side; for gate-free models these agree — dynamic-weight
                // models with input-gate functions should be simulated).
                let mut w = Vec::new();
                f(marking, &mut w);
                w
            }
        };
        let total: f64 = weights.iter().sum();
        let mut result = Vec::with_capacity(num_cases);
        for (case, weight) in weights.iter().enumerate().take(num_cases) {
            let prob = weight / total;
            if prob <= 0.0 {
                continue;
            }
            let succ = self.fire_case(marking, act_idx, case);
            result.push((succ, prob));
        }
        Ok(result)
    }

    fn fire_case(&mut self, marking: &Marking, act_idx: usize, case: usize) -> Marking {
        let mut m = marking.clone();
        let act = &mut self.model.activities[act_idx];
        for gate in &mut act.input_gates {
            if let Some(f) = gate.function.as_mut() {
                f(&mut m, &mut self.rng);
            }
        }
        for &(p, w) in &act.input_arcs {
            m.add(p, -w);
        }
        for &(p, w) in &act.cases[case].output_arcs {
            m.add(p, w);
        }
        for gate in &mut act.cases[case].output_gates {
            (gate.function)(&mut m, &mut self.rng);
        }
        m
    }

    /// Eliminates vanishing markings: returns the tangible markings
    /// reachable through instantaneous firings, with probabilities.
    fn resolve_vanishing(
        &mut self,
        marking: Marking,
        depth: usize,
    ) -> Result<Vec<(Marking, f64)>, SanError> {
        if depth > self.options.max_vanishing_depth {
            return Err(SanError::InstantaneousLoop {
                at_time: f64::NAN,
                limit: self.options.max_vanishing_depth as u64,
            });
        }
        // Highest-priority enabled instantaneous activity fires first;
        // ties resolve by activity index (the simulator's FIFO order).
        let mut chosen: Option<(usize, i32)> = None;
        for (i, act) in self.model.activities.iter().enumerate() {
            if let Timing::Instantaneous { priority } = act.timing {
                if act.enabled(&marking) {
                    let better = match chosen {
                        None => true,
                        Some((_, best)) => priority > best,
                    };
                    if better {
                        chosen = Some((i, priority));
                    }
                }
            }
        }
        let Some((act_idx, _)) = chosen else {
            return Ok(vec![(marking, 1.0)]);
        };
        let mut result = Vec::new();
        for (succ, prob) in self.fire_all_cases(&marking, act_idx)? {
            for (t, p) in self.resolve_vanishing(succ, depth + 1)? {
                result.push((t, prob * p));
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::sim::Simulator;

    /// M/M/1/K queue: arrivals rate λ, service rate μ, capacity K.
    fn mm1k(lambda: f64, mu: f64, k: i64) -> Model {
        let mut mb = ModelBuilder::new();
        let queue = mb.place("queue", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(1.0 / lambda).unwrap())
            .guard("capacity", move |m| m.tokens(queue) < k)
            .output_arc(queue, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0 / mu).unwrap())
            .input_arc(queue, 1)
            .done()
            .unwrap();
        mb.build().unwrap()
    }

    #[test]
    fn mm1k_matches_closed_form() {
        // λ=1, μ=2, K=5: π_i ∝ ρ^i with ρ = 0.5.
        let mut model = mm1k(1.0, 2.0, 5);
        let queue = model.place_by_name("queue").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        assert!(sol.converged());
        assert_eq!(sol.num_states(), 6);
        let rho: f64 = 0.5;
        let norm: f64 = (0..=5).map(|i| rho.powi(i)).sum();
        for (m, &p) in sol.states().iter().zip(sol.probabilities()) {
            let i = m.tokens(queue) as i32;
            let expected = rho.powi(i) / norm;
            assert!(
                (p - expected).abs() < 1e-9,
                "π({i}) = {p}, expected {expected}"
            );
        }
        // Mean queue length.
        let expected_l: f64 = (0i32..=5).map(|i| f64::from(i) * rho.powi(i) / norm).sum();
        let l = sol.expected_reward(|m| m.tokens(queue) as f64);
        assert!((l - expected_l).abs() < 1e-9);
    }

    #[test]
    fn two_state_availability() {
        // up --(fail, rate 1/10)--> down --(repair, rate 1/2)--> up:
        // availability = MTTF / (MTTF + MTTR) = 10 / 12.
        let mut mb = ModelBuilder::new();
        let up = mb.place("up", 1).unwrap();
        let down = mb.place("down", 0).unwrap();
        mb.activity("fail")
            .unwrap()
            .timed(Dist::exponential(10.0).unwrap())
            .input_arc(up, 1)
            .output_arc(down, 1)
            .done()
            .unwrap();
        mb.activity("repair")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .input_arc(down, 1)
            .output_arc(up, 1)
            .done()
            .unwrap();
        let mut model = mb.build().unwrap();
        let up_place = model.place_by_name("up").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let avail = sol.probability_where(|m| m.tokens(up_place) == 1);
        assert!((avail - 10.0 / 12.0).abs() < 1e-9, "availability {avail}");
    }

    #[test]
    fn vanishing_markings_split_by_case_probability() {
        // A single token cycles: idle --exp(1)--> pending, which an
        // instantaneous router sends to a (p=0.3) or b (p=0.7); both
        // return to idle at rate 0.5. Closed form (flow balance):
        // π_a = 0.6 π_idle, π_b = 1.4 π_idle → π = (1, 0.6, 1.4) / 3.
        let mut mb = ModelBuilder::new();
        let idle = mb.place("idle", 1).unwrap();
        let pending = mb.place("pending", 0).unwrap();
        let a = mb.place("a", 0).unwrap();
        let b = mb.place("b", 0).unwrap();
        mb.activity("source")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .input_arc(idle, 1)
            .output_arc(pending, 1)
            .done()
            .unwrap();
        mb.activity("route")
            .unwrap()
            .instantaneous(0)
            .input_arc(pending, 1)
            .case(0.3)
            .output_arc(a, 1)
            .case(0.7)
            .output_arc(b, 1)
            .done()
            .unwrap();
        mb.activity("drain_a")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .input_arc(a, 1)
            .output_arc(idle, 1)
            .done()
            .unwrap();
        mb.activity("drain_b")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .input_arc(b, 1)
            .output_arc(idle, 1)
            .done()
            .unwrap();
        let mut model = mb.build().unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        assert!(sol.converged());
        assert_eq!(sol.num_states(), 3, "pending is always vanishing");
        for m in sol.states() {
            assert_eq!(m.tokens(pending), 0, "vanishing marking survived");
        }
        let pi_idle = sol.probability_where(|m| m.tokens(idle) == 1);
        let pi_a = sol.probability_where(|m| m.tokens(a) == 1);
        let pi_b = sol.probability_where(|m| m.tokens(b) == 1);
        assert!((pi_idle - 1.0 / 3.0).abs() < 1e-9, "π_idle = {pi_idle}");
        assert!((pi_a - 0.2).abs() < 1e-9, "π_a = {pi_a}");
        assert!((pi_b - 7.0 / 15.0).abs() < 1e-9, "π_b = {pi_b}");
    }

    #[test]
    fn non_exponential_rejected() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        mb.activity("det")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(p, 1)
            .done()
            .unwrap();
        let mut model = mb.build().unwrap();
        let err = solve_steady_state(&mut model, CtmcOptions::default()).unwrap_err();
        assert!(matches!(err, SanError::NotMarkovian { .. }));
    }

    #[test]
    fn state_space_cap_enforced() {
        // Unbounded birth process.
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 0).unwrap();
        mb.activity("birth")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .output_arc(p, 1)
            .done()
            .unwrap();
        let mut model = mb.build().unwrap();
        let err = solve_steady_state(
            &mut model,
            CtmcOptions {
                max_states: 50,
                ..CtmcOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SanError::StateSpaceExceeded { limit: 50 }));
    }

    #[test]
    fn instantaneous_loop_detected() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        mb.activity("pq")
            .unwrap()
            .instantaneous(0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .done()
            .unwrap();
        mb.activity("qp")
            .unwrap()
            .instantaneous(0)
            .input_arc(q, 1)
            .output_arc(p, 1)
            .done()
            .unwrap();
        let mut model = mb.build().unwrap();
        let err = solve_steady_state(&mut model, CtmcOptions::default()).unwrap_err();
        assert!(matches!(err, SanError::InstantaneousLoop { .. }));
    }

    #[test]
    fn simulation_agrees_with_numerical() {
        // Cross-validation: the same M/M/1/K model, solved both ways.
        let mut model = mm1k(1.0, 1.5, 4);
        let queue = model.place_by_name("queue").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let numerical_l = sol.expected_reward(|m| m.tokens(queue) as f64);

        let mut sim = Simulator::new(mm1k(1.0, 1.5, 4), 99);
        let l = sim.add_rate_reward("L", move |m| m.tokens(queue) as f64);
        sim.run_until(2_000.0).unwrap();
        sim.reset_rewards();
        sim.run_until(300_000.0).unwrap();
        let simulated_l = sim.rate_reward_average(l);
        assert!(
            (numerical_l - simulated_l).abs() < 0.05,
            "numerical {numerical_l} vs simulated {simulated_l}"
        );
    }

    #[test]
    fn transient_two_state_matches_closed_form() {
        // up --(rate a=0.1)--> down --(rate b=0.5)--> up, starting up:
        // p_up(t) = b/(a+b) + a/(a+b) · e^{-(a+b)t}.
        let build = || {
            let mut mb = ModelBuilder::new();
            let up = mb.place("up", 1).unwrap();
            let down = mb.place("down", 0).unwrap();
            mb.activity("fail")
                .unwrap()
                .timed(Dist::exponential(10.0).unwrap())
                .input_arc(up, 1)
                .output_arc(down, 1)
                .done()
                .unwrap();
            mb.activity("repair")
                .unwrap()
                .timed(Dist::exponential(2.0).unwrap())
                .input_arc(down, 1)
                .output_arc(up, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let (a, b) = (0.1, 0.5);
        for &t in &[0.0, 0.5, 2.0, 5.0, 20.0] {
            let mut model = build();
            let up = model.place_by_name("up").unwrap();
            let sol = solve_transient(&mut model, t, CtmcOptions::default()).unwrap();
            let p_up = sol.probability_where(|m| m.tokens(up) == 1);
            let expected = b / (a + b) + a / (a + b) * (-(a + b) * t).exp();
            assert!(
                (p_up - expected).abs() < 1e-6,
                "t={t}: p_up {p_up}, expected {expected}"
            );
        }
    }

    #[test]
    fn transient_at_zero_is_initial_distribution() {
        let mut model = mm1k(1.0, 2.0, 5);
        let queue = model.place_by_name("queue").unwrap();
        let sol = solve_transient(&mut model, 0.0, CtmcOptions::default()).unwrap();
        assert!((sol.probability_where(|m| m.tokens(queue) == 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut model = mm1k(1.0, 2.0, 5);
        let queue = model.place_by_name("queue").unwrap();
        let steady = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let mut model2 = mm1k(1.0, 2.0, 5);
        let late = solve_transient(&mut model2, 200.0, CtmcOptions::default()).unwrap();
        let l_steady = steady.expected_reward(|m| m.tokens(queue) as f64);
        let l_late = late.expected_reward(|m| m.tokens(queue) as f64);
        assert!(
            (l_steady - l_late).abs() < 1e-6,
            "steady {l_steady} vs transient(200) {l_late}"
        );
    }

    /// M/M/c/K with marking-dependent service rate: service activity rate
    /// = μ · min(n, c).
    fn mmck(lambda: f64, mu: f64, c: i64, k: i64) -> Model {
        let mut mb = ModelBuilder::new();
        let queue = mb.place("queue", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(1.0 / lambda).unwrap())
            .guard("capacity", move |m| m.tokens(queue) < k)
            .output_arc(queue, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0 / mu).unwrap())
            .rate_multiplier(move |m| m.tokens(queue).min(c) as f64)
            .input_arc(queue, 1)
            .done()
            .unwrap();
        mb.build().unwrap()
    }

    #[test]
    fn mmck_matches_closed_form() {
        // M/M/2/6, λ=1.5, μ=1: π_n = π_0 a^n / n! (n ≤ c),
        // π_n = π_0 a^n / (c! c^{n-c}) (n > c), a = λ/μ.
        let (lambda, mu, c, k) = (1.5, 1.0, 2i64, 6i64);
        let a: f64 = lambda / mu;
        let unnorm: Vec<f64> = (0..=k)
            .map(|n| {
                let n = n as u32;
                if i64::from(n) <= c {
                    a.powi(n as i32) / (1..=n).map(f64::from).product::<f64>()
                } else {
                    let cf: f64 = (1..=c as u32).map(f64::from).product();
                    a.powi(n as i32) / (cf * (c as f64).powi(n as i32 - c as i32))
                }
            })
            .collect();
        let norm: f64 = unnorm.iter().sum();

        let mut model = mmck(lambda, mu, c, k);
        let queue = model.place_by_name("queue").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        for (m, &p) in sol.states().iter().zip(sol.probabilities()) {
            let n = m.tokens(queue) as usize;
            let expected = unnorm[n] / norm;
            assert!(
                (p - expected).abs() < 1e-9,
                "π({n}) = {p}, expected {expected}"
            );
        }
    }

    #[test]
    fn mmck_simulation_agrees_with_numerical() {
        let mut model = mmck(1.5, 1.0, 2, 6);
        let queue = model.place_by_name("queue").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let exact_l = sol.expected_reward(|m| m.tokens(queue) as f64);

        let mut sim = Simulator::new(mmck(1.5, 1.0, 2, 6), 31);
        let l = sim.add_rate_reward("L", move |m| m.tokens(queue) as f64);
        sim.run_until(2_000.0).unwrap();
        sim.reset_rewards();
        sim.run_until(300_000.0).unwrap();
        let measured = sim.rate_reward_average(l);
        assert!(
            (measured - exact_l).abs() < 0.05,
            "numerical {exact_l} vs simulated {measured}"
        );
    }

    #[test]
    fn zero_rate_multiplier_disables() {
        // Service rate multiplier is 0 when the gatekeeper place is empty:
        // the activity must not fire at all.
        let mut mb = ModelBuilder::new();
        let gate = mb.place("gate", 0).unwrap();
        let q = mb.place("q", 5).unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(0.1).unwrap())
            .rate_multiplier(move |m| m.tokens(gate) as f64)
            .input_arc(q, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let mut sim = Simulator::new(model, 3);
        sim.run_until(1_000.0).unwrap();
        assert_eq!(sim.marking().tokens(q), 5, "gated activity never fired");
    }

    #[test]
    fn solution_accessors() {
        let mut model = mm1k(1.0, 2.0, 2);
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        assert_eq!(sol.states().len(), sol.probabilities().len());
        assert!(sol.iterations() > 0);
        let total: f64 = sol.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
