//! Activities: the transitions of a SAN.

use vsched_des::Dist;

use crate::gate::{InputGate, OutputGate};
use crate::marking::{Marking, PlaceId, ReadSet};

/// Handle to an activity in a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) usize);

impl ActivityId {
    /// Index of this activity in the model's activity table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index (inverse of
    /// [`ActivityId::index`]). Only meaningful for the model whose
    /// iteration produced the index — used by structural analysis tools
    /// that store activities by position.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ActivityId(index)
    }
}

/// How an activity completes once enabled.
pub enum Timing {
    /// Completes after a random delay drawn from the distribution when the
    /// activity becomes enabled.
    Timed(Dist),
    /// Completes immediately; among simultaneously enabled instantaneous
    /// activities, higher `priority` completes first.
    Instantaneous {
        /// Completion priority (higher first).
        priority: i32,
    },
}

impl std::fmt::Debug for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Timing::Timed(d) => write!(f, "Timed({d:?})"),
            Timing::Instantaneous { priority } => {
                write!(f, "Instantaneous(priority={priority})")
            }
        }
    }
}

impl Timing {
    /// Whether the activity completes instantaneously.
    #[must_use]
    pub fn is_instantaneous(&self) -> bool {
        matches!(self, Timing::Instantaneous { .. })
    }

    /// Completion priority of an instantaneous activity (`None` for timed).
    #[must_use]
    pub fn priority(&self) -> Option<i32> {
        match self {
            Timing::Timed(_) => None,
            Timing::Instantaneous { priority } => Some(*priority),
        }
    }
}

/// Marking-dependent case-weight function: fills `out` (cleared by the
/// caller) with one weight per case. The buffer-filling shape lets the
/// simulator reuse one scratch allocation across all completions.
/// `Send + Sync` so models can be shared with shard workers.
pub type WeightFn = Box<dyn Fn(&Marking, &mut Vec<f64>) + Send + Sync>;

/// Marking-dependent rate-multiplier function (`Send + Sync` so models can
/// be shared with shard workers).
pub type RateFn = Box<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// Probability weights of an activity's cases.
pub enum CaseWeights {
    /// Fixed weights (need not be normalized).
    Fixed(Vec<f64>),
    /// Marking-dependent weights, re-evaluated at each completion.
    Dynamic(WeightFn),
}

impl std::fmt::Debug for CaseWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseWeights::Fixed(w) => write!(f, "Fixed({w:?})"),
            CaseWeights::Dynamic(_) => write!(f, "Dynamic(..)"),
        }
    }
}

/// One case (probabilistic outcome) of an activity.
#[derive(Debug, Default)]
pub struct CaseSpec {
    /// Tokens produced into places when this case is chosen.
    pub(crate) output_arcs: Vec<(PlaceId, i64)>,
    /// Output gates executed when this case is chosen, in order.
    pub(crate) output_gates: Vec<OutputGate>,
}

/// Full definition of an activity.
pub struct ActivitySpec {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    /// Tokens required from (and consumed out of) places.
    pub(crate) input_arcs: Vec<(PlaceId, i64)>,
    pub(crate) input_gates: Vec<InputGate>,
    pub(crate) cases: Vec<CaseSpec>,
    pub(crate) case_weights: CaseWeights,
    /// Optional marking-dependent rate multiplier (Mobius's
    /// marking-dependent rates): the sampled delay is divided by this
    /// factor at activation; a non-positive factor disables the activity.
    pub(crate) rate_fn: Option<RateFn>,
    /// Places the rate multiplier declares it reads (enablement-relevant:
    /// a non-positive multiplier disables the activity).
    pub(crate) rate_reads: ReadSet,
    /// Places the dynamic case-weight function declares it reads. Weights
    /// are only evaluated while this very activity fires, so this is
    /// analysis metadata — it does not enter the dependency index.
    pub(crate) weight_reads: ReadSet,
}

impl std::fmt::Debug for ActivitySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivitySpec")
            .field("name", &self.name)
            .field("timing", &self.timing)
            .field("input_arcs", &self.input_arcs)
            .field("input_gates", &self.input_gates)
            .field("cases", &self.cases.len())
            .field("case_weights", &self.case_weights)
            .finish()
    }
}

impl ActivitySpec {
    /// Activity name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the activity is enabled in `marking`: every input arc is
    /// covered, every input-gate predicate holds, and (for activities with
    /// a marking-dependent rate) the rate multiplier is positive.
    #[must_use]
    pub fn enabled(&self, marking: &Marking) -> bool {
        self.input_arcs.iter().all(|&(p, w)| marking.has(p, w))
            && self.input_gates.iter().all(|g| (g.predicate)(marking))
            && self.rate_fn.as_ref().is_none_or(|f| f(marking) > 0.0)
    }

    /// The rate multiplier in `marking` (1.0 when none is configured).
    #[must_use]
    pub fn rate_multiplier(&self, marking: &Marking) -> f64 {
        self.rate_fn.as_ref().map_or(1.0, |f| f(marking))
    }

    /// How the activity completes.
    #[must_use]
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// The input arcs: `(place, weight)` pairs consumed at completion.
    #[must_use]
    pub fn input_arcs(&self) -> &[(PlaceId, i64)] {
        &self.input_arcs
    }

    /// Number of probabilistic cases.
    #[must_use]
    pub fn num_cases(&self) -> usize {
        self.cases.len()
    }

    /// Output arcs of case `case`: `(place, weight)` pairs produced.
    ///
    /// # Panics
    ///
    /// Panics if `case >= self.num_cases()`.
    #[must_use]
    pub fn case_output_arcs(&self, case: usize) -> &[(PlaceId, i64)] {
        &self.cases[case].output_arcs
    }

    /// Names of the output gates of case `case`, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `case >= self.num_cases()`.
    pub fn case_output_gate_names(&self, case: usize) -> impl Iterator<Item = &str> {
        self.cases[case].output_gates.iter().map(|g| g.name())
    }

    /// Input gates as `(name, has_completion_function)` pairs.
    pub fn input_gate_info(&self) -> impl Iterator<Item = (&str, bool)> {
        self.input_gates
            .iter()
            .map(|g| (g.name(), g.function.is_some()))
    }

    /// Whether any gate function (input-gate completion update or output
    /// gate) runs at completion — i.e. the marking change is not fully
    /// described by the arcs.
    #[must_use]
    pub fn has_gate_functions(&self) -> bool {
        self.input_gates.iter().any(|g| g.function.is_some())
            || self.cases.iter().any(|c| !c.output_gates.is_empty())
    }

    /// Whether case weights are marking-dependent.
    #[must_use]
    pub fn has_dynamic_case_weights(&self) -> bool {
        matches!(self.case_weights, CaseWeights::Dynamic(_))
    }

    /// The fixed case weights, if the weights are not marking-dependent.
    #[must_use]
    pub fn fixed_case_weights(&self) -> Option<&[f64]> {
        match &self.case_weights {
            CaseWeights::Fixed(w) => Some(w),
            CaseWeights::Dynamic(_) => None,
        }
    }

    /// Every place [`ActivitySpec::enabled`] may read — input-arc places,
    /// declared guard-predicate reads, and declared rate-multiplier reads —
    /// sorted and deduplicated. `None` if any enablement closure (a gate
    /// predicate, or the rate multiplier) left its read-set undeclared: the
    /// activity is then *conservative* and must be revisited after every
    /// state change.
    #[must_use]
    pub fn enablement_reads(&self) -> Option<Vec<PlaceId>> {
        let mut out: Vec<PlaceId> = self.input_arcs.iter().map(|&(p, _)| p).collect();
        for gate in &self.input_gates {
            out.extend_from_slice(gate.reads.as_declared()?);
        }
        if self.rate_fn.is_some() {
            out.extend_from_slice(self.rate_reads.as_declared()?);
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// The rate multiplier's declared read-set.
    #[must_use]
    pub fn rate_reads(&self) -> &ReadSet {
        &self.rate_reads
    }

    /// The dynamic case-weight function's declared read-set.
    #[must_use]
    pub fn weight_reads(&self) -> &ReadSet {
        &self.weight_reads
    }

    /// The input gates' declared read-sets, as `(gate name, reads)` pairs.
    pub fn input_gate_reads(&self) -> impl Iterator<Item = (&str, &ReadSet)> {
        self.input_gates.iter().map(|g| (g.name(), g.reads()))
    }

    /// Every place a completion of this activity may write — input-arc and
    /// output-arc places plus the declared write-sets of every gate
    /// function — sorted and deduplicated. `None` if any gate function
    /// (input-gate completion update or output gate) left its write-set
    /// undeclared: the activity's write footprint is then unknown and it
    /// cannot join a shard.
    #[must_use]
    pub fn declared_writes(&self) -> Option<Vec<PlaceId>> {
        let mut out: Vec<PlaceId> = self.input_arcs.iter().map(|&(p, _)| p).collect();
        for case in &self.cases {
            out.extend(case.output_arcs.iter().map(|&(p, _)| p));
            for gate in &case.output_gates {
                out.extend_from_slice(gate.writes().as_declared()?);
            }
        }
        for gate in &self.input_gates {
            if gate.function.is_some() {
                out.extend_from_slice(gate.writes().as_declared()?);
            }
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Every place the *completion* of this activity may read beyond its
    /// enablement reads — gate-function reads (input gates with a
    /// completion update, output gates) and dynamic case-weight reads —
    /// sorted and deduplicated. `None` if any of those closures left its
    /// read-set undeclared.
    #[must_use]
    pub fn fire_reads(&self) -> Option<Vec<PlaceId>> {
        let mut out: Vec<PlaceId> = Vec::new();
        for gate in &self.input_gates {
            if gate.function.is_some() {
                out.extend_from_slice(gate.reads.as_declared()?);
            }
        }
        for case in &self.cases {
            for gate in &case.output_gates {
                out.extend_from_slice(gate.reads().as_declared()?);
            }
        }
        if matches!(self.case_weights, CaseWeights::Dynamic(_)) {
            out.extend_from_slice(self.weight_reads.as_declared()?);
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn marking(init: &[i64]) -> Marking {
        let names = Arc::new((0..init.len()).map(|i| format!("p{i}")).collect::<Vec<_>>());
        Marking::new(init.to_vec(), names)
    }

    fn spec(input_arcs: Vec<(PlaceId, i64)>, gates: Vec<InputGate>) -> ActivitySpec {
        ActivitySpec {
            name: "a".into(),
            timing: Timing::Instantaneous { priority: 0 },
            input_arcs,
            input_gates: gates,
            cases: vec![CaseSpec::default()],
            case_weights: CaseWeights::Fixed(vec![1.0]),
            rate_fn: None,
            rate_reads: ReadSet::All,
            weight_reads: ReadSet::All,
        }
    }

    #[test]
    fn enabled_by_arcs() {
        let s = spec(vec![(PlaceId(0), 2)], vec![]);
        assert!(!s.enabled(&marking(&[1])));
        assert!(s.enabled(&marking(&[2])));
    }

    #[test]
    fn enabled_by_gates() {
        let s = spec(
            vec![],
            vec![InputGate::guard("g", |m| m.tokens(PlaceId(0)) % 2 == 0)],
        );
        assert!(s.enabled(&marking(&[4])));
        assert!(!s.enabled(&marking(&[3])));
    }

    #[test]
    fn all_conditions_required() {
        let s = spec(
            vec![(PlaceId(0), 1)],
            vec![InputGate::guard("g", |m| m.tokens(PlaceId(1)) > 0)],
        );
        assert!(!s.enabled(&marking(&[1, 0])));
        assert!(!s.enabled(&marking(&[0, 1])));
        assert!(s.enabled(&marking(&[1, 1])));
    }

    #[test]
    fn debug_output() {
        let s = spec(vec![], vec![]);
        let d = format!("{s:?}");
        assert!(d.contains("Instantaneous"));
    }

    #[test]
    fn enablement_reads_requires_every_closure_declared() {
        // Arc-only activity: fully declared by construction.
        let s = spec(vec![(PlaceId(0), 1), (PlaceId(0), 2)], vec![]);
        assert_eq!(s.enablement_reads(), Some(vec![PlaceId(0)]));

        // Undeclared guard: conservative.
        let s = spec(vec![(PlaceId(0), 1)], vec![InputGate::guard("g", |_| true)]);
        assert_eq!(s.enablement_reads(), None);

        // Declared guard: union of arcs and guard reads, sorted + deduped.
        let s = spec(
            vec![(PlaceId(2), 1)],
            vec![InputGate::guard("g", |_| true).with_reads([PlaceId(1), PlaceId(2)])],
        );
        assert_eq!(s.enablement_reads(), Some(vec![PlaceId(1), PlaceId(2)]));

        // Undeclared rate multiplier: conservative.
        let mut s = spec(vec![], vec![]);
        s.rate_fn = Some(Box::new(|_| 1.0));
        assert_eq!(s.enablement_reads(), None);
        s.rate_reads = ReadSet::Declared(vec![PlaceId(3)]);
        assert_eq!(s.enablement_reads(), Some(vec![PlaceId(3)]));
    }
}
