//! Extended places: structured state in a SAN.
//!
//! Mobius extends classic SAN places (natural-number token counts) with
//! *extended places* that hold C structs — the paper's `VCPU_slot` place
//! carries `remaining_load`, `sync_point` and `status` fields. A
//! [`RecordRef`] models an extended place as a group of field places
//! created together by [`crate::ModelBuilder::record`], with indexed access.

use crate::marking::{Marking, PlaceId};

/// Handle to a group of field places forming one extended place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRef {
    name: String,
    fields: Vec<PlaceId>,
}

impl RecordRef {
    pub(crate) fn new(name: String, fields: Vec<PlaceId>) -> Self {
        RecordRef { name, fields }
    }

    /// The record's base name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of fields.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Place id of field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn field(&self, index: usize) -> PlaceId {
        self.fields[index]
    }

    /// All field place ids in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[PlaceId] {
        &self.fields
    }

    /// Reads field `index` from a marking.
    #[must_use]
    pub fn get(&self, marking: &Marking, index: usize) -> i64 {
        marking.tokens(self.fields[index])
    }

    /// Writes field `index` in a marking.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative (markings are natural numbers).
    pub fn set(&self, marking: &mut Marking, index: usize, value: i64) {
        marking.set(self.fields[index], value);
    }
}

#[cfg(test)]
mod tests {
    use crate::ModelBuilder;

    #[test]
    fn roundtrip_fields() {
        let mut mb = ModelBuilder::new();
        let rec = mb.record("slot", &["load", "sync", "status"]).unwrap();
        let model = mb.build().unwrap();
        let mut m = model.initial_marking();
        rec.set(&mut m, 0, 42);
        rec.set(&mut m, 2, 1);
        assert_eq!(rec.get(&m, 0), 42);
        assert_eq!(rec.get(&m, 1), 0);
        assert_eq!(rec.get(&m, 2), 1);
        assert_eq!(rec.arity(), 3);
        assert_eq!(rec.name(), "slot");
        assert_eq!(rec.fields().len(), 3);
        assert_eq!(rec.field(1), rec.fields()[1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_field_panics() {
        let mut mb = ModelBuilder::new();
        let rec = mb.record("slot", &["a"]).unwrap();
        let _ = rec.field(3);
    }
}
