//! Input and output gates.
//!
//! Gates are where a SAN gains expressiveness over plain Petri nets: an
//! *input gate* adds an arbitrary enabling predicate and a completion-time
//! state update; an *output gate* runs an arbitrary state update for the
//! case it is attached to. In Mobius these are C++ snippets; here they are
//! Rust closures over the [`Marking`].

use vsched_des::Xoshiro256StarStar;

use crate::marking::{Marking, PlaceId, ReadSet};

/// Enabling predicate of an input gate.
///
/// `Send + Sync` so a [`crate::Model`] can be shared by reference with the
/// shard workers of the parallel simulator — every gate closure is immutable
/// shared state; gates needing private mutable state (the user-defined
/// scheduling function of the VCPU scheduler keeps its round-robin cursor
/// this way) capture it behind `Arc<Mutex<..>>`.
pub type Predicate = Box<dyn Fn(&Marking) -> bool + Send + Sync>;

/// State-update function of a gate.
///
/// Receives the marking and a dedicated RNG stream so gates can perform
/// stochastic updates (the paper's `WL_Output` gate samples the workload
/// `load` and `sync_point` fields). `Fn + Send + Sync` for the same
/// model-sharing reason as [`Predicate`]; stateful gates capture an
/// `Arc<Mutex<..>>`.
pub type GateFn = Box<dyn Fn(&mut Marking, &mut Xoshiro256StarStar) + Send + Sync>;

/// An input gate: a guard plus a completion-time update.
pub struct InputGate {
    pub(crate) name: String,
    pub(crate) predicate: Predicate,
    pub(crate) function: Option<GateFn>,
    /// Places the gate declares it reads — the predicate *and* the
    /// completion-time update function. Drives the simulator's dependency
    /// index (an undeclared read-set makes the activity's enablement
    /// conservative, revisited after every firing) and, jointly with
    /// `writes`, shard derivation.
    pub(crate) reads: ReadSet,
    /// Places the completion-time update function declares it writes.
    /// Consulted by shard derivation only: an undeclared write-set keeps
    /// the activity out of every shard (it then always fires on the
    /// sequential path, which needs no write footprint).
    pub(crate) writes: ReadSet,
}

impl std::fmt::Debug for InputGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputGate")
            .field("name", &self.name)
            .field("has_function", &self.function.is_some())
            .finish()
    }
}

/// An output gate: a state update executed when its case is chosen.
pub struct OutputGate {
    pub(crate) name: String,
    pub(crate) function: GateFn,
    /// Places the update function declares it reads. Does not enter the
    /// dependency index (output gates run at completion, not at enablement)
    /// but shard derivation requires it.
    pub(crate) reads: ReadSet,
    /// Places the update function declares it writes (shard derivation;
    /// see [`InputGate`]).
    pub(crate) writes: ReadSet,
}

impl std::fmt::Debug for OutputGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutputGate")
            .field("name", &self.name)
            .finish()
    }
}

impl InputGate {
    /// Creates an input gate with a predicate only (no completion update).
    pub fn guard(
        name: impl Into<String>,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Self {
        InputGate {
            name: name.into(),
            predicate: Box::new(predicate),
            function: None,
            reads: ReadSet::All,
            writes: ReadSet::All,
        }
    }

    /// Creates an input gate with a predicate and a completion function.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
        function: impl Fn(&mut Marking, &mut Xoshiro256StarStar) + Send + Sync + 'static,
    ) -> Self {
        InputGate {
            name: name.into(),
            predicate: Box::new(predicate),
            function: Some(Box::new(function)),
            reads: ReadSet::All,
            writes: ReadSet::All,
        }
    }

    /// Declares the places the gate reads — predicate and update function
    /// together (builder form).
    #[must_use]
    pub fn with_reads(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        self.reads = ReadSet::Declared(places.into_iter().collect());
        self
    }

    /// Declares the places the update function writes (builder form).
    #[must_use]
    pub fn with_writes(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        self.writes = ReadSet::Declared(places.into_iter().collect());
        self
    }

    /// The gate's declared read-set.
    #[must_use]
    pub fn reads(&self) -> &ReadSet {
        &self.reads
    }

    /// The update function's declared write-set.
    #[must_use]
    pub fn writes(&self) -> &ReadSet {
        &self.writes
    }

    /// Gate name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl OutputGate {
    /// Creates an output gate from its update function.
    pub fn new(
        name: impl Into<String>,
        function: impl Fn(&mut Marking, &mut Xoshiro256StarStar) + Send + Sync + 'static,
    ) -> Self {
        OutputGate {
            name: name.into(),
            function: Box::new(function),
            reads: ReadSet::All,
            writes: ReadSet::All,
        }
    }

    /// Declares the places the update function reads (builder form).
    #[must_use]
    pub fn with_reads(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        self.reads = ReadSet::Declared(places.into_iter().collect());
        self
    }

    /// Declares the places the update function writes (builder form).
    #[must_use]
    pub fn with_writes(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        self.writes = ReadSet::Declared(places.into_iter().collect());
        self
    }

    /// The update function's declared read-set.
    #[must_use]
    pub fn reads(&self) -> &ReadSet {
        &self.reads
    }

    /// The update function's declared write-set.
    #[must_use]
    pub fn writes(&self) -> &ReadSet {
        &self.writes
    }

    /// Gate name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn marking() -> Marking {
        Marking::new(vec![2], Arc::new(vec!["p".into()]))
    }

    #[test]
    fn guard_has_no_function() {
        let g = InputGate::guard("g", |m| m.tokens(crate::PlaceId(0)) > 0);
        assert!(g.function.is_none());
        assert!((g.predicate)(&marking()));
        assert_eq!(g.name(), "g");
    }

    #[test]
    fn gate_function_mutates() {
        let g = OutputGate::new("og", |m, _rng| m.set(crate::PlaceId(0), 9));
        let mut m = marking();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        (g.function)(&mut m, &mut rng);
        assert_eq!(m.tokens(crate::PlaceId(0)), 9);
    }

    #[test]
    fn stateful_gate_closure() {
        // Gates are `Fn`; private mutable state goes behind a shared cell.
        let calls = Arc::new(std::sync::Mutex::new(0i64));
        let cell = Arc::clone(&calls);
        let g = OutputGate::new("counter", move |m, _| {
            let mut c = cell.lock().unwrap();
            *c += 1;
            m.set(crate::PlaceId(0), *c);
        });
        let mut m = marking();
        let mut rng = Xoshiro256StarStar::seed_from(0);
        (g.function)(&mut m, &mut rng);
        (g.function)(&mut m, &mut rng);
        assert_eq!(m.tokens(crate::PlaceId(0)), 2);
    }

    #[test]
    fn debug_impls() {
        let g = InputGate::guard("ig", |_| true);
        assert!(format!("{g:?}").contains("ig"));
        let og = OutputGate::new("og", |_, _| {});
        assert!(format!("{og:?}").contains("og"));
    }
}
