//! Markings: the state of a SAN.

use std::fmt;
use std::sync::Arc;

/// Handle to a place in a model.
///
/// Issued by [`crate::ModelBuilder::place`]; only valid for the model that
/// created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// Index of this place in the marking vector.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index (inverse of [`PlaceId::index`]).
    /// Only meaningful for the model whose iteration produced the index —
    /// used by structural analysis tools that store places by position.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PlaceId(index)
    }
}

/// The set of places a closure declares it reads.
///
/// Guards, gate functions, rate multipliers, dynamic case weights and rate
/// rewards are opaque closures; a declared read-set makes their data
/// dependencies visible so the simulator can reevaluate only the activities
/// and rewards a state change can actually affect. A closure without a
/// declaration conservatively [`ReadSet::All`]s — correct, just slower.
#[derive(Debug, Clone, Default)]
pub enum ReadSet {
    /// Conservative fallback: the closure may read any place.
    #[default]
    All,
    /// The closure reads only the listed places.
    Declared(Vec<PlaceId>),
}

impl ReadSet {
    /// Whether the read-set was explicitly declared.
    #[must_use]
    pub fn is_declared(&self) -> bool {
        matches!(self, ReadSet::Declared(_))
    }

    /// The declared places, or `None` for the conservative fallback.
    #[must_use]
    pub fn as_declared(&self) -> Option<&[PlaceId]> {
        match self {
            ReadSet::All => None,
            ReadSet::Declared(places) => Some(places),
        }
    }
}

/// The marking (token assignment) of every place in a model.
///
/// Token counts are `i64` for arithmetic convenience, but the SAN invariant —
/// markings are natural numbers — is enforced: any mutation that would drive
/// a place negative panics with the place's name, which is always a modeling
/// bug, not a runtime condition.
#[derive(Clone)]
pub struct Marking {
    tokens: Vec<i64>,
    names: Arc<Vec<String>>,
    /// First-touch-ordered log of places whose token count changed since the
    /// last [`Marking::clear_dirty`]; only populated while tracking is on.
    dirty: Vec<usize>,
    /// Membership flags for `dirty` (one per place); empty while tracking is
    /// off so untracked markings pay nothing but a branch per mutation.
    dirty_flags: Vec<bool>,
}

impl Marking {
    pub(crate) fn new(initial: Vec<i64>, names: Arc<Vec<String>>) -> Self {
        debug_assert_eq!(initial.len(), names.len());
        Marking {
            tokens: initial,
            names,
            dirty: Vec::new(),
            dirty_flags: Vec::new(),
        }
    }

    /// Switches on dirty-place tracking: from now on every mutation that
    /// changes a token count records the place. Used by the simulator's
    /// incremental reevaluation core.
    pub(crate) fn enable_dirty_tracking(&mut self) {
        self.dirty_flags = vec![false; self.tokens.len()];
    }

    /// Places whose token count changed since the last clear, in first-touch
    /// order. Empty while tracking is off.
    pub(crate) fn dirty(&self) -> &[usize] {
        &self.dirty
    }

    /// Forgets all recorded dirty places.
    pub(crate) fn clear_dirty(&mut self) {
        for &i in &self.dirty {
            self.dirty_flags[i] = false;
        }
        self.dirty.clear();
    }

    #[inline]
    fn record_touch(&mut self, idx: usize) {
        if let Some(flag) = self.dirty_flags.get_mut(idx) {
            if !*flag {
                *flag = true;
                self.dirty.push(idx);
            }
        }
    }

    /// Number of tokens in `place`.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> i64 {
        self.tokens[place.0]
    }

    /// Sets `place` to exactly `count` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `count` is negative.
    pub fn set(&mut self, place: PlaceId, count: i64) {
        assert!(
            count >= 0,
            "cannot set place `{}` to negative marking {count}",
            self.names[place.0]
        );
        if self.tokens[place.0] != count {
            self.tokens[place.0] = count;
            self.record_touch(place.0);
        }
    }

    /// Adds `delta` tokens (may be negative).
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative.
    pub fn add(&mut self, place: PlaceId, delta: i64) {
        let new = self.tokens[place.0] + delta;
        assert!(
            new >= 0,
            "place `{}` would go negative: {} + {delta}",
            self.names[place.0],
            self.tokens[place.0]
        );
        if delta != 0 {
            self.tokens[place.0] = new;
            self.record_touch(place.0);
        }
    }

    /// Whether `place` holds at least `count` tokens.
    #[must_use]
    pub fn has(&self, place: PlaceId, count: i64) -> bool {
        self.tokens[place.0] >= count
    }

    /// Whether `place` is empty.
    #[must_use]
    pub fn is_empty(&self, place: PlaceId) -> bool {
        self.tokens[place.0] == 0
    }

    /// Name of `place` (for diagnostics).
    #[must_use]
    pub fn name(&self, place: PlaceId) -> &str {
        &self.names[place.0]
    }

    /// Number of places in the model.
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // is_empty(place) queries one place
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the model has no places.
    #[must_use]
    pub fn is_model_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Raw view of all token counts, indexed by [`PlaceId::index`].
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.tokens
    }

    /// Overwrites places with the absolute values in `patch`, bypassing
    /// dirty tracking and the non-negativity assertion: the values come
    /// from an authoritative marking that already enforced both, and the
    /// sharded engine's replica sync must not pollute the dirty log its
    /// patch extraction reads.
    pub(crate) fn apply_patch(&mut self, patch: &[(u32, i64)]) {
        for &(place, value) in patch {
            self.tokens[place as usize] = value;
        }
    }
}

impl fmt::Debug for Marking {
    /// Renders only non-empty places to keep debug output readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (i, &t) in self.tokens.iter().enumerate() {
            if t != 0 {
                map.entry(&self.names[i], &t);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking(init: &[i64]) -> Marking {
        let names = Arc::new((0..init.len()).map(|i| format!("p{i}")).collect::<Vec<_>>());
        Marking::new(init.to_vec(), names)
    }

    #[test]
    fn basic_access() {
        let mut m = marking(&[1, 0, 5]);
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.has(PlaceId(2), 5));
        assert!(!m.has(PlaceId(2), 6));
        assert!(m.is_empty(PlaceId(1)));
        m.set(PlaceId(1), 3);
        assert_eq!(m.tokens(PlaceId(1)), 3);
        m.add(PlaceId(1), -3);
        assert!(m.is_empty(PlaceId(1)));
        assert_eq!(m.len(), 3);
        assert_eq!(m.as_slice(), &[1, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn set_negative_panics() {
        marking(&[0]).set(PlaceId(0), -1);
    }

    #[test]
    #[should_panic(expected = "p0")]
    fn underflow_names_the_place() {
        marking(&[2]).add(PlaceId(0), -3);
    }

    #[test]
    fn debug_shows_nonempty_only() {
        let m = marking(&[0, 7, 0]);
        let s = format!("{m:?}");
        assert!(s.contains("p1"));
        assert!(!s.contains("p0"));
    }

    #[test]
    fn dirty_tracking_records_changes_once() {
        let mut m = marking(&[1, 2, 3]);
        assert!(m.dirty().is_empty(), "tracking off: nothing recorded");
        m.set(PlaceId(0), 5);
        assert!(m.dirty().is_empty());
        m.enable_dirty_tracking();
        m.set(PlaceId(0), 5); // no-op write: value unchanged
        m.add(PlaceId(1), 0); // no-op delta
        assert!(m.dirty().is_empty(), "unchanged values are not dirty");
        m.add(PlaceId(1), 1);
        m.set(PlaceId(2), 0);
        m.add(PlaceId(1), -1);
        assert_eq!(m.dirty(), &[1, 2], "first-touch order, no duplicates");
        m.clear_dirty();
        assert!(m.dirty().is_empty());
        m.set(PlaceId(2), 7);
        assert_eq!(m.dirty(), &[2], "tracking resumes after clear");
    }

    #[test]
    fn apply_patch_sets_absolute_values_without_dirtying() {
        let mut m = marking(&[1, 2, 3]);
        m.enable_dirty_tracking();
        m.apply_patch(&[(0, 9), (2, 0), (0, 4)]);
        assert_eq!(m.as_slice(), &[4, 2, 0], "last write wins");
        assert!(m.dirty().is_empty(), "replica sync must not dirty");
    }

    #[test]
    fn read_set_accessors() {
        let all = ReadSet::All;
        assert!(!all.is_declared());
        assert!(all.as_declared().is_none());
        let declared = ReadSet::Declared(vec![PlaceId(3)]);
        assert!(declared.is_declared());
        assert_eq!(declared.as_declared(), Some(&[PlaceId(3)][..]));
    }

    #[test]
    fn clone_is_independent() {
        let m = marking(&[1]);
        let mut c = m.clone();
        c.set(PlaceId(0), 9);
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert_eq!(c.tokens(PlaceId(0)), 9);
    }
}
