//! Markings: the state of a SAN.

use std::fmt;
use std::sync::Arc;

/// Handle to a place in a model.
///
/// Issued by [`crate::ModelBuilder::place`]; only valid for the model that
/// created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// Index of this place in the marking vector.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index (inverse of [`PlaceId::index`]).
    /// Only meaningful for the model whose iteration produced the index —
    /// used by structural analysis tools that store places by position.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PlaceId(index)
    }
}

/// The marking (token assignment) of every place in a model.
///
/// Token counts are `i64` for arithmetic convenience, but the SAN invariant —
/// markings are natural numbers — is enforced: any mutation that would drive
/// a place negative panics with the place's name, which is always a modeling
/// bug, not a runtime condition.
#[derive(Clone)]
pub struct Marking {
    tokens: Vec<i64>,
    names: Arc<Vec<String>>,
}

impl Marking {
    pub(crate) fn new(initial: Vec<i64>, names: Arc<Vec<String>>) -> Self {
        debug_assert_eq!(initial.len(), names.len());
        Marking {
            tokens: initial,
            names,
        }
    }

    /// Number of tokens in `place`.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> i64 {
        self.tokens[place.0]
    }

    /// Sets `place` to exactly `count` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `count` is negative.
    pub fn set(&mut self, place: PlaceId, count: i64) {
        assert!(
            count >= 0,
            "cannot set place `{}` to negative marking {count}",
            self.names[place.0]
        );
        self.tokens[place.0] = count;
    }

    /// Adds `delta` tokens (may be negative).
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative.
    pub fn add(&mut self, place: PlaceId, delta: i64) {
        let new = self.tokens[place.0] + delta;
        assert!(
            new >= 0,
            "place `{}` would go negative: {} + {delta}",
            self.names[place.0],
            self.tokens[place.0]
        );
        self.tokens[place.0] = new;
    }

    /// Whether `place` holds at least `count` tokens.
    #[must_use]
    pub fn has(&self, place: PlaceId, count: i64) -> bool {
        self.tokens[place.0] >= count
    }

    /// Whether `place` is empty.
    #[must_use]
    pub fn is_empty(&self, place: PlaceId) -> bool {
        self.tokens[place.0] == 0
    }

    /// Name of `place` (for diagnostics).
    #[must_use]
    pub fn name(&self, place: PlaceId) -> &str {
        &self.names[place.0]
    }

    /// Number of places in the model.
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // is_empty(place) queries one place
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the model has no places.
    #[must_use]
    pub fn is_model_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Raw view of all token counts, indexed by [`PlaceId::index`].
    #[must_use]
    pub fn as_slice(&self) -> &[i64] {
        &self.tokens
    }
}

impl fmt::Debug for Marking {
    /// Renders only non-empty places to keep debug output readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (i, &t) in self.tokens.iter().enumerate() {
            if t != 0 {
                map.entry(&self.names[i], &t);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking(init: &[i64]) -> Marking {
        let names = Arc::new((0..init.len()).map(|i| format!("p{i}")).collect::<Vec<_>>());
        Marking::new(init.to_vec(), names)
    }

    #[test]
    fn basic_access() {
        let mut m = marking(&[1, 0, 5]);
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.has(PlaceId(2), 5));
        assert!(!m.has(PlaceId(2), 6));
        assert!(m.is_empty(PlaceId(1)));
        m.set(PlaceId(1), 3);
        assert_eq!(m.tokens(PlaceId(1)), 3);
        m.add(PlaceId(1), -3);
        assert!(m.is_empty(PlaceId(1)));
        assert_eq!(m.len(), 3);
        assert_eq!(m.as_slice(), &[1, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn set_negative_panics() {
        marking(&[0]).set(PlaceId(0), -1);
    }

    #[test]
    #[should_panic(expected = "p0")]
    fn underflow_names_the_place() {
        marking(&[2]).add(PlaceId(0), -3);
    }

    #[test]
    fn debug_shows_nonempty_only() {
        let m = marking(&[0, 7, 0]);
        let s = format!("{m:?}");
        assert!(s.contains("p1"));
        assert!(!s.contains("p0"));
    }

    #[test]
    fn clone_is_independent() {
        let m = marking(&[1]);
        let mut c = m.clone();
        c.set(PlaceId(0), 9);
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert_eq!(c.tokens(PlaceId(0)), 9);
    }
}
