//! The sharded engine's marking **delta feed**: an append-only,
//! cursor-indexed log of `(place, new value)` writes that keeps every
//! lane's marking replica in sync with the authoritative marking.
//!
//! The retired design replayed the *entire* patch log into every worker
//! replica on every wave, and appended to it under a mutex once per
//! sequential fire. The feed fixes both costs:
//!
//! * **Per-lane cursors.** Each lane remembers the absolute feed position
//!   it has replayed up to; an engagement replays only the entries
//!   appended since that lane's previous wave. Entries are absolute
//!   `(place, value)` pairs in authoritative apply order, so replaying a
//!   suffix always lands the replica exactly on the authoritative marking
//!   (last write wins, and re-applying a lane's own writes is a no-op).
//! * **Batched appends.** The merge loop buffers writes — sequential
//!   fires and batch patches alike — into a plain `Vec` and publishes
//!   them with **one** `append_batch` call before the next dispatch, so
//!   the feed lock is taken once per wave instead of once per fire.
//!
//! Memory stays bounded by compaction: once every cursor has passed a
//! prefix, [`Feed::compact`] drops it (the driver forces a
//! lagging-lane sync via the pool's `engage_all` before compacting, so
//! the minimum cursor is guaranteed to be at the tip).

use crate::marking::Marking;

/// Entries the feed may hold before the driver forces an all-lane sync
/// and compacts. Bounds replica lag and feed memory alike.
pub(crate) const COMPACT_THRESHOLD: usize = 4096;

/// The append-only write log plus every lane's replay cursor.
#[derive(Debug)]
pub(crate) struct Feed {
    /// Absolute position of `entries[0]` (grows with compaction).
    base: u64,
    /// `(place, new value)` pairs in authoritative apply order.
    entries: Vec<(u32, i64)>,
    /// Per lane: absolute position up to which it has replayed.
    cursors: Vec<u64>,
    /// `append_batch` calls that published at least one entry (the
    /// per-wave locking contract is asserted through this counter).
    appends: u64,
}

impl Feed {
    /// An empty feed serving `lanes` replicas, all cursors at zero — the
    /// position replicas cloned at feed creation correspond to.
    pub(crate) fn new(lanes: usize) -> Self {
        Feed {
            base: 0,
            entries: Vec::new(),
            cursors: vec![0; lanes],
            appends: 0,
        }
    }

    /// Publishes the buffered writes in one append, draining `pending`
    /// (its capacity is retained by the caller for the next wave).
    pub(crate) fn append_batch(&mut self, pending: &mut Vec<(u32, i64)>) {
        if pending.is_empty() {
            return;
        }
        self.entries.append(pending);
        self.appends += 1;
    }

    /// Replays everything `lane` has not yet seen into its replica and
    /// advances its cursor to the tip.
    pub(crate) fn replay_into(&mut self, lane: usize, replica: &mut Marking) {
        let from =
            usize::try_from(self.cursors[lane] - self.base).expect("cursor within feed range");
        replica.apply_patch(&self.entries[from..]);
        self.cursors[lane] = self.base + self.entries.len() as u64;
    }

    /// Entries currently held (the driver's compaction trigger).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Batched appends so far (one per publishing wave — the counter the
    /// lock-per-fire regression test pins).
    #[cfg(test)]
    pub(crate) fn appends(&self) -> u64 {
        self.appends
    }

    /// Drops every entry all lanes have replayed past.
    pub(crate) fn compact(&mut self) {
        let min = self.cursors.iter().copied().min().unwrap_or(self.base);
        let keep_from = usize::try_from(min - self.base).expect("cursor within feed range");
        if keep_from > 0 {
            self.entries.drain(..keep_from);
            self.base = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::PlaceId;
    use std::sync::Arc;

    fn marking(tokens: &[i64]) -> Marking {
        let names = Arc::new((0..tokens.len()).map(|i| format!("p{i}")).collect());
        let mut m = Marking::new(tokens.to_vec(), names);
        m.enable_dirty_tracking();
        m
    }

    #[test]
    fn delta_replay_matches_full_replay_per_lane() {
        // Two lanes with different sync schedules: replaying only the
        // suffix past each cursor lands both on the authoritative values.
        let mut feed = Feed::new(2);
        let auth = marking(&[9, 7, 5]);
        let mut lane0 = marking(&[0, 0, 0]);
        let mut lane1 = marking(&[0, 0, 0]);

        let mut pending = vec![(0u32, 3i64), (1, 1)];
        feed.append_batch(&mut pending);
        feed.replay_into(0, &mut lane0); // lane 0 syncs early
        assert_eq!(lane0.as_slice(), &[3, 1, 0]);

        pending.extend([(0u32, 9i64), (2, 5), (1, 7)]);
        feed.append_batch(&mut pending);
        feed.replay_into(0, &mut lane0);
        feed.replay_into(1, &mut lane1); // lane 1 replays everything
        assert_eq!(lane0.as_slice(), auth.as_slice());
        assert_eq!(lane1.as_slice(), auth.as_slice());
    }

    #[test]
    fn replaying_own_writes_is_idempotent() {
        // Entries carry absolute values, so a lane re-applying writes it
        // produced itself (they round-trip through the merge) is a no-op.
        let mut feed = Feed::new(1);
        let mut lane = marking(&[2, 2]);
        lane.set(PlaceId(0), 6); // the lane's own phase-A write
        feed.append_batch(&mut vec![(0u32, 6i64), (1, 3)]);
        feed.replay_into(0, &mut lane);
        assert_eq!(lane.as_slice(), &[6, 3]);
    }

    #[test]
    fn buffered_writes_publish_as_one_append_per_wave() {
        // The per-fire-mutex fix: any number of sequential fires between
        // waves buffer into `pending` and hit the feed exactly once.
        let mut feed = Feed::new(1);
        let mut pending = Vec::new();
        for i in 0..100u32 {
            pending.push((i % 3, i64::from(i))); // 100 "fires"
        }
        feed.append_batch(&mut pending);
        assert_eq!(feed.appends(), 1, "one lock per wave, not per fire");
        assert!(
            pending.is_empty() && pending.capacity() > 0,
            "buffer reusable"
        );
        feed.append_batch(&mut pending);
        assert_eq!(feed.appends(), 1, "empty publishes are free");
    }

    #[test]
    fn compaction_drops_only_fully_replayed_prefixes() {
        let mut feed = Feed::new(2);
        let mut fast = marking(&[0]);
        let mut slow = marking(&[0]);
        feed.append_batch(&mut vec![(0u32, 1i64), (0, 2)]);
        feed.replay_into(0, &mut fast);
        feed.compact();
        assert_eq!(feed.len(), 2, "lane 1 still needs the prefix");

        feed.replay_into(1, &mut slow);
        feed.compact();
        assert_eq!(feed.len(), 0, "all cursors past the tip");

        // Cursors stay valid across the base shift.
        feed.append_batch(&mut vec![(0u32, 4i64)]);
        feed.replay_into(0, &mut fast);
        feed.replay_into(1, &mut slow);
        assert_eq!(fast.as_slice(), &[4]);
        assert_eq!(slow.as_slice(), &[4]);
    }
}
