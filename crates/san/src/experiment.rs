//! Replicated simulation experiments with Mobius-style termination.
//!
//! Mobius runs independent replications of a model until each reward
//! variable's confidence interval meets a convergence criterion; the paper
//! reports all figures at the 95% level with intervals below 0.1. This
//! module drives [`crate::Simulator`] the same way.

use vsched_stats::{ConfidenceInterval, ReplicationController, StoppingRule};

use crate::error::SanError;
use crate::reward::RewardId;
use crate::sim::Simulator;

/// Result of a replicated experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// One confidence interval per tracked reward, in factory order.
    pub intervals: Vec<ConfidenceInterval>,
    /// How many replications were run.
    pub replications: usize,
    /// Total activity completions across all replications.
    pub total_completions: u64,
}

impl ExperimentResult {
    /// Point estimates (means) of all rewards.
    #[must_use]
    pub fn means(&self) -> Vec<f64> {
        self.intervals.iter().map(|ci| ci.mean).collect()
    }
}

/// Runs independent replications of a model until the stopping rule is met.
///
/// `factory(rep)` must build a fresh simulator for replication `rep` —
/// seeding it from `rep` (e.g. `base_seed + rep`) — and return the reward
/// ids to track. Each replication runs `[0, warmup)` as discarded
/// transient, then `[warmup, warmup + horizon)` as the observation window.
///
/// # Errors
///
/// Propagates any [`SanError`] from a replication (e.g. an instantaneous
/// loop in the model).
///
/// # Panics
///
/// Panics if the factory returns no reward ids, or a different number of
/// rewards across replications.
pub fn run_replicated(
    mut factory: impl FnMut(u64) -> (Simulator, Vec<RewardId>),
    warmup: f64,
    horizon: f64,
    rule: StoppingRule,
) -> Result<ExperimentResult, SanError> {
    let mut controller: Option<ReplicationController> = None;
    let mut rep: u64 = 0;
    let mut total_completions: u64 = 0;
    loop {
        if let Some(c) = &controller {
            if !c.needs_more() {
                break;
            }
        }
        let (mut sim, rewards) = factory(rep);
        assert!(!rewards.is_empty(), "factory must register rewards");
        if warmup > 0.0 {
            sim.run_until(warmup)?;
            sim.reset_rewards();
        }
        sim.run_until(warmup + horizon)?;
        total_completions += sim.stats().completions;
        let observations: Vec<f64> = rewards
            .iter()
            .map(|&r| sim.rate_reward_average(r))
            .collect();
        let c = controller
            .get_or_insert_with(|| ReplicationController::new(rule, observations.len()));
        c.record(&observations);
        rep += 1;
    }
    let controller = controller.expect("at least one replication ran");
    let intervals = controller
        .intervals()
        .expect("min_replications >= 2 guarantees enough data");
    Ok(ExperimentResult {
        intervals,
        replications: controller.replications(),
        total_completions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use vsched_des::Dist;

    fn mm1_factory(rep: u64) -> (Simulator, Vec<RewardId>) {
        let mut mb = ModelBuilder::new();
        let system = mb.place("system", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .output_arc(system, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .input_arc(system, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1000 + rep);
        let busy = sim.add_rate_reward("busy", move |m| {
            if m.tokens(system) > 0 {
                1.0
            } else {
                0.0
            }
        });
        (sim, vec![busy])
    }

    #[test]
    fn mm1_utilization_converges_to_rho() {
        let rule = StoppingRule::new(0.95, 0.02)
            .with_min_replications(5)
            .with_max_replications(60);
        let result = run_replicated(mm1_factory, 1_000.0, 20_000.0, rule).unwrap();
        let rho = result.intervals[0].mean;
        assert!((rho - 0.5).abs() < 0.03, "utilization {rho}, expected 0.5");
        assert!(result.replications >= 5);
        assert!(result.total_completions > 0);
        assert_eq!(result.means().len(), 1);
    }

    #[test]
    fn stops_at_max_replications() {
        let rule = StoppingRule::new(0.95, 1e-9)
            .with_min_replications(2)
            .with_max_replications(4);
        let result = run_replicated(mm1_factory, 0.0, 100.0, rule).unwrap();
        assert_eq!(result.replications, 4);
    }

    #[test]
    #[should_panic(expected = "must register rewards")]
    fn empty_rewards_rejected() {
        let _ = run_replicated(
            |rep| {
                let (sim, _) = mm1_factory(rep);
                (sim, vec![])
            },
            0.0,
            10.0,
            StoppingRule::paper_default(),
        );
    }
}
