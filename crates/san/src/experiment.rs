//! Replicated simulation experiments with Mobius-style termination.
//!
//! Mobius runs independent replications of a model until each reward
//! variable's confidence interval meets a convergence criterion; the paper
//! reports all figures at the 95% level with intervals below 0.1. This
//! module drives [`crate::Simulator`] the same way.

use vsched_stats::{ConfidenceInterval, StoppingRule};

use crate::error::SanError;
use crate::reward::RewardId;
use crate::sim::Simulator;

/// Result of a replicated experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// One confidence interval per tracked reward, in factory order.
    pub intervals: Vec<ConfidenceInterval>,
    /// How many replications were run.
    pub replications: usize,
    /// Total activity completions across all replications.
    pub total_completions: u64,
}

impl ExperimentResult {
    /// Point estimates (means) of all rewards.
    #[must_use]
    pub fn means(&self) -> Vec<f64> {
        self.intervals.iter().map(|ci| ci.mean).collect()
    }
}

/// Runs independent replications of a model until the stopping rule is met,
/// using one worker per available core.
///
/// Equivalent to [`run_replicated_jobs`] with `jobs = None`; the result is
/// bit-identical for every worker count.
///
/// # Errors
///
/// Propagates any [`SanError`] from a replication (e.g. an instantaneous
/// loop in the model).
///
/// # Panics
///
/// Panics if the factory returns no reward ids, or a different number of
/// rewards across replications.
pub fn run_replicated(
    factory: impl Fn(u64) -> (Simulator, Vec<RewardId>) + Sync,
    warmup: f64,
    horizon: f64,
    rule: StoppingRule,
) -> Result<ExperimentResult, SanError> {
    run_replicated_jobs(factory, warmup, horizon, rule, None)
}

/// Runs independent replications of a model until the stopping rule is met,
/// on a bounded pool of `jobs` worker threads.
///
/// `factory(rep)` must build a fresh simulator for replication `rep` —
/// seeding it from `rep` (e.g. `base_seed + rep`) — and return the reward
/// ids to track. Each replication runs `[0, warmup)` as discarded
/// transient, then `[warmup, warmup + horizon)` as the observation window.
///
/// Replications run as speculative parallel batches, but observations merge
/// into the stopping-rule controller strictly in ascending replication
/// order (see `vsched-exec`), so intervals, replication count, and
/// completion totals are **bit-identical for every `jobs` value**. `None`
/// (or `Some(0)`) uses all available cores.
///
/// # Errors
///
/// Propagates any [`SanError`] from a replication; with several failures
/// the lowest-indexed one is reported, matching a sequential run.
///
/// # Panics
///
/// Panics if the factory returns no reward ids, or a different number of
/// rewards across replications.
pub fn run_replicated_jobs(
    factory: impl Fn(u64) -> (Simulator, Vec<RewardId>) + Sync,
    warmup: f64,
    horizon: f64,
    rule: StoppingRule,
    jobs: Option<usize>,
) -> Result<ExperimentResult, SanError> {
    let task = |rep: u64| -> Result<(Vec<f64>, u64), SanError> {
        let (mut sim, rewards) = factory(rep);
        assert!(!rewards.is_empty(), "factory must register rewards");
        // One branch per event buys a corrupted-future-event-list net for
        // every replicated experiment, so it is always on here.
        sim.enable_event_monotonicity_check();
        if warmup > 0.0 {
            sim.run_until(warmup)?;
            sim.reset_rewards();
        }
        sim.run_until(warmup + horizon)?;
        let observations = rewards
            .iter()
            .map(|&r| sim.rate_reward_average(r))
            .collect();
        Ok((observations, sim.stats().completions))
    };
    let (controller, outputs) = vsched_exec::run_converged(
        vsched_exec::resolve_jobs(jobs),
        rule,
        task,
        |(observations, _): &(Vec<f64>, u64)| observations.clone(),
    )?;
    let intervals = controller
        .intervals()
        .expect("min_replications >= 2 guarantees enough data");
    Ok(ExperimentResult {
        intervals,
        replications: controller.replications(),
        total_completions: outputs.iter().map(|(_, completions)| completions).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use vsched_des::Dist;

    fn mm1_factory(rep: u64) -> (Simulator, Vec<RewardId>) {
        let mut mb = ModelBuilder::new();
        let system = mb.place("system", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .output_arc(system, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .input_arc(system, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), 1000 + rep);
        let busy = sim.add_rate_reward(
            "busy",
            move |m| {
                if m.tokens(system) > 0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        (sim, vec![busy])
    }

    #[test]
    fn mm1_utilization_converges_to_rho() {
        let rule = StoppingRule::new(0.95, 0.02)
            .with_min_replications(5)
            .with_max_replications(60);
        let result = run_replicated(mm1_factory, 1_000.0, 20_000.0, rule).unwrap();
        let rho = result.intervals[0].mean;
        assert!((rho - 0.5).abs() < 0.03, "utilization {rho}, expected 0.5");
        assert!(result.replications >= 5);
        assert!(result.total_completions > 0);
        assert_eq!(result.means().len(), 1);
    }

    #[test]
    fn stops_at_max_replications() {
        let rule = StoppingRule::new(0.95, 1e-9)
            .with_min_replications(2)
            .with_max_replications(4);
        let result = run_replicated(mm1_factory, 0.0, 100.0, rule).unwrap();
        assert_eq!(result.replications, 4);
    }

    #[test]
    #[should_panic(expected = "must register rewards")]
    fn empty_rewards_rejected() {
        let _ = run_replicated(
            |rep| {
                let (sim, _) = mm1_factory(rep);
                (sim, vec![])
            },
            0.0,
            10.0,
            StoppingRule::paper_default(),
        );
    }
}
