//! Error type for SAN model construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors from building or simulating a SAN model.
#[derive(Debug, Clone, PartialEq)]
pub enum SanError {
    /// A place with this name already exists in the model.
    DuplicatePlace {
        /// The conflicting place name.
        name: String,
    },
    /// An activity with this name already exists in the model.
    DuplicateActivity {
        /// The conflicting activity name.
        name: String,
    },
    /// No place with this name exists.
    UnknownPlace {
        /// The requested place name.
        name: String,
    },
    /// An arc was declared with a non-positive token weight.
    InvalidArcWeight {
        /// Activity the arc belongs to.
        activity: String,
        /// The offending weight.
        weight: i64,
    },
    /// A case was declared with a non-positive probability weight.
    InvalidCaseWeight {
        /// Activity the case belongs to.
        activity: String,
    },
    /// The simulator detected an unbounded chain of zero-delay completions —
    /// the model's instantaneous activities re-enable one another forever.
    InstantaneousLoop {
        /// Virtual time at which the loop was detected.
        at_time: f64,
        /// Number of zero-advance completions tolerated before giving up.
        limit: u64,
    },
    /// A shared place was re-declared with a conflicting initial marking.
    SharedPlaceConflict {
        /// The place name.
        name: String,
        /// Initial marking from the first declaration.
        existing: i64,
        /// Initial marking from the conflicting declaration.
        requested: i64,
    },
    /// A distribution parameter error bubbled up from the DES kernel.
    Distribution(vsched_des::DesError),
    /// Numerical solution requires every timed activity to be exponential.
    NotMarkovian {
        /// The offending (non-exponential) activity.
        activity: String,
    },
    /// State-space exploration exceeded the configured limit.
    StateSpaceExceeded {
        /// The configured state cap.
        limit: usize,
    },
    /// `.reads(...)` was called where no immediately preceding closure
    /// (guard, input/output gate, rate multiplier, or dynamic case weights)
    /// can accept a read-set declaration.
    MisplacedReads {
        /// Activity being built when the misplaced declaration occurred.
        activity: String,
    },
    /// `.writes(...)` was called where no immediately preceding gate
    /// function (input gate with update, or output gate) can accept a
    /// write-set declaration.
    MisplacedWrites {
        /// Activity being built when the misplaced declaration occurred.
        activity: String,
    },
    /// A shard-parallel firing wrote a place outside its activity's shard —
    /// a gate function's declared write-set was wrong. Caught by the
    /// runtime validation of every parallel batch.
    ShardViolation {
        /// The activity whose completion wrote out of bounds.
        activity: String,
        /// The place written outside the activity's shard.
        place: String,
    },
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::DuplicatePlace { name } => write!(f, "duplicate place `{name}`"),
            SanError::DuplicateActivity { name } => {
                write!(f, "duplicate activity `{name}`")
            }
            SanError::UnknownPlace { name } => write!(f, "unknown place `{name}`"),
            SanError::InvalidArcWeight { activity, weight } => {
                write!(f, "activity `{activity}` has arc with invalid weight {weight}")
            }
            SanError::InvalidCaseWeight { activity } => {
                write!(f, "activity `{activity}` has a case with non-positive weight")
            }
            SanError::InstantaneousLoop { at_time, limit } => write!(
                f,
                "instantaneous-activity loop at t={at_time}: more than {limit} completions without time advancing"
            ),
            SanError::SharedPlaceConflict {
                name,
                existing,
                requested,
            } => write!(
                f,
                "shared place `{name}` re-declared with initial marking {requested}, but it was created with {existing}"
            ),
            SanError::Distribution(e) => write!(f, "distribution error: {e}"),
            SanError::NotMarkovian { activity } => write!(
                f,
                "activity `{activity}` is not exponential; numerical solution requires a Markovian model"
            ),
            SanError::StateSpaceExceeded { limit } => {
                write!(f, "state space exceeds the configured limit of {limit} states")
            }
            SanError::MisplacedReads { activity } => write!(
                f,
                "activity `{activity}`: .reads(...) must immediately follow the closure it describes \
                 (guard, input/output gate, rate multiplier, or dynamic case weights)"
            ),
            SanError::MisplacedWrites { activity } => write!(
                f,
                "activity `{activity}`: .writes(...) must immediately follow the gate function it \
                 describes (input gate with update, or output gate)"
            ),
            SanError::ShardViolation { activity, place } => write!(
                f,
                "activity `{activity}` wrote place `{place}` outside its shard: a gate function's \
                 declared write-set is wrong"
            ),
        }
    }
}

impl Error for SanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SanError::Distribution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vsched_des::DesError> for SanError {
    fn from(e: vsched_des::DesError) -> Self {
        SanError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SanError::DuplicatePlace { name: "p".into() }
            .to_string()
            .contains("duplicate place"));
        assert!(SanError::UnknownPlace { name: "q".into() }
            .to_string()
            .contains("unknown place"));
        assert!(SanError::InstantaneousLoop {
            at_time: 3.0,
            limit: 10
        }
        .to_string()
        .contains("t=3"));
    }

    #[test]
    fn from_des_error() {
        let e: SanError = vsched_des::DesError::InvalidDistribution {
            family: "uniform",
            reason: "bad".into(),
        }
        .into();
        assert!(matches!(e, SanError::Distribution(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
