//! Static derivation of conflict-free activity shards.
//!
//! The parallel simulator fires batches of same-instant, same-priority
//! instantaneous completions concurrently. That is sound only for
//! activities whose entire marking footprint is known statically and
//! provably disjoint from every co-fired activity's footprint. This module
//! computes the finest such partition — the **shard plan** — from declared
//! read/write-sets alone, before the first event fires.
//!
//! An activity is a *shard candidate* when the engine can see everything
//! its completion touches:
//!
//! * it is instantaneous (timed activities interleave with the clock and
//!   always take the sequential path),
//! * its enablement reads are declared ([`crate::activity::ActivitySpec::enablement_reads`]),
//! * its completion reads are declared ([`crate::activity::ActivitySpec::fire_reads`]), and
//! * its write footprint is declared ([`crate::activity::ActivitySpec::declared_writes`]).
//!
//! Candidates are then **demoted** back to the sequential path when their
//! firing could *enable* an instantaneous activity of strictly higher
//! priority: the parallel engine pre-pops a whole same-priority batch, and
//! a higher-priority arrival mid-batch would, under sequential semantics,
//! preempt the not-yet-fired remainder. (Equal or lower priority is safe:
//! a newly scheduled event carries a larger sequence number and pops after
//! every pre-popped batch member.) The same demotion applies when the
//! model has any *conservative* instantaneous activity of higher priority,
//! since a conservative activity may be enabled by anything.
//!
//! Finally, surviving candidates are partitioned by union-find: for every
//! place with at least one candidate writer, all candidate readers and
//! writers of that place are merged into one shard. Places written only by
//! non-candidate ("global") activities are constant for the duration of a
//! parallel batch — globals only ever fire sequentially — so reading them
//! does not connect shards.
//!
//! The resulting guarantee, relied on for bit-identity: two activities in
//! different shards have disjoint write-sets, and neither reads anything
//! the other writes.

use crate::activity::ActivityId;
use crate::builder::Model;
use crate::marking::PlaceId;

/// Shard index meaning "not sharded": globals and unwritten places.
const GLOBAL: i32 = -1;

/// The static shard partition of a model; see the module docs.
///
/// Derived once per model by [`ShardPlan::derive`]; consulted by the
/// simulator on every parallel batch and exposed for analysis
/// (`vsched-analyze` cross-checks it against the observed incidence
/// matrix).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per activity: shard index, or [`GLOBAL`].
    act_shard: Vec<i32>,
    /// Per place: the shard of its candidate writers, or [`GLOBAL`] if no
    /// candidate writes it.
    place_shard: Vec<i32>,
    num_shards: usize,
}

impl ShardPlan {
    /// Computes the shard plan of `model` from its declared read/write
    /// footprints. Deterministic: shard indices are assigned in ascending
    /// order of each shard's lowest activity index.
    #[must_use]
    pub fn derive(model: &Model) -> ShardPlan {
        let n_act = model.num_activities();
        let n_place = model.num_places();

        // Footprints of each candidate: (reads ∪ fire reads, writes).
        let mut reads: Vec<Vec<PlaceId>> = vec![Vec::new(); n_act];
        let mut writes: Vec<Vec<PlaceId>> = vec![Vec::new(); n_act];
        let mut candidate = vec![false; n_act];
        for (i, act) in model.activities.iter().enumerate() {
            if !act.timing().is_instantaneous() {
                continue;
            }
            let (Some(er), Some(fr), Some(w)) = (
                act.enablement_reads(),
                act.fire_reads(),
                act.declared_writes(),
            ) else {
                continue;
            };
            candidate[i] = true;
            let mut r = er;
            r.extend(fr);
            r.sort_unstable();
            r.dedup();
            reads[i] = r;
            writes[i] = w;
        }

        // Priority demotion: a candidate must not be able to enable a
        // higher-priority instantaneous activity mid-batch.
        let inst_prio = |i: usize| model.activities[i].timing().priority();
        let max_conservative_prio = model
            .enable_index
            .conservative
            .iter()
            .filter_map(|&d| inst_prio(d as usize))
            .max();
        for i in 0..n_act {
            if !candidate[i] {
                continue;
            }
            let my_prio = inst_prio(i).expect("candidates are instantaneous");
            if max_conservative_prio.is_some_and(|p| p > my_prio) {
                candidate[i] = false;
                continue;
            }
            let enables_higher = writes[i].iter().any(|&p| {
                model
                    .enable_index
                    .dependents(p.index())
                    .iter()
                    .any(|&d| inst_prio(d as usize).is_some_and(|dp| dp > my_prio))
            });
            if enables_higher {
                candidate[i] = false;
            }
        }

        // Union-find over candidate activities, connected through places:
        // any place with a candidate writer merges all its candidate
        // readers and writers.
        let mut parent: Vec<u32> = (0..n_act as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut writers: Vec<Vec<u32>> = vec![Vec::new(); n_place];
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n_place];
        for i in 0..n_act {
            if !candidate[i] {
                continue;
            }
            for &p in &writes[i] {
                writers[p.index()].push(i as u32);
            }
            for &p in &reads[i] {
                readers[p.index()].push(i as u32);
            }
        }
        for p in 0..n_place {
            if writers[p].is_empty() {
                continue;
            }
            let first = writers[p][0];
            for &a in writers[p].iter().chain(&readers[p]) {
                let (ra, rb) = (find(&mut parent, first), find(&mut parent, a));
                if ra != rb {
                    // Keep the smaller root so shard numbering below is
                    // stable in ascending activity order.
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi as usize] = lo;
                }
            }
        }

        // Number the shards in ascending order of their lowest member.
        let mut act_shard = vec![GLOBAL; n_act];
        let mut shard_of_root: Vec<i32> = vec![GLOBAL; n_act];
        let mut num_shards = 0usize;
        for i in 0..n_act {
            if !candidate[i] {
                continue;
            }
            let root = find(&mut parent, i as u32) as usize;
            if shard_of_root[root] == GLOBAL {
                shard_of_root[root] = num_shards as i32;
                num_shards += 1;
            }
            act_shard[i] = shard_of_root[root];
        }
        let mut place_shard = vec![GLOBAL; n_place];
        for p in 0..n_place {
            if let Some(&w) = writers[p].first() {
                place_shard[p] = act_shard[w as usize];
            }
        }

        ShardPlan {
            act_shard,
            place_shard,
            num_shards,
        }
    }

    /// Number of shards (conflict-free groups of shardable activities).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard of `activity`, or `None` if it always fires sequentially.
    #[must_use]
    pub fn activity_shard(&self, activity: ActivityId) -> Option<usize> {
        let s = self.act_shard[activity.index()];
        (s >= 0).then_some(s as usize)
    }

    /// The shard whose activities may write `place`, or `None` if only
    /// sequential-path activities write it.
    #[must_use]
    pub fn place_shard(&self, place: PlaceId) -> Option<usize> {
        let s = self.place_shard[place.index()];
        (s >= 0).then_some(s as usize)
    }

    /// Raw per-activity shard indices (`-1` = sequential path).
    #[inline]
    pub(crate) fn act_shard_raw(&self) -> &[i32] {
        &self.act_shard
    }

    /// Raw per-place shard indices (`-1` = no candidate writer).
    #[inline]
    pub(crate) fn place_shard_raw(&self) -> &[i32] {
        &self.place_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use vsched_des::Dist;

    /// n independent token movers (fully declared) + one timed driver.
    fn independent_model(n: usize) -> (Model, Vec<ActivityId>) {
        let mut mb = ModelBuilder::new();
        let mut acts = Vec::new();
        for i in 0..n {
            let src = mb.place(&format!("src{i}"), 3).unwrap();
            let dst = mb.place(&format!("dst{i}"), 0).unwrap();
            let a = mb
                .activity(&format!("move{i}"))
                .unwrap()
                .instantaneous(5)
                .input_arc(src, 1)
                .output_arc(dst, 1)
                .done()
                .unwrap();
            acts.push(a);
        }
        let tick = mb.place("tick", 0).unwrap();
        mb.activity("clock")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .guard("cap", move |m| m.tokens(tick) < 100)
            .reads([tick])
            .output_arc(tick, 1)
            .done()
            .unwrap();
        (mb.build().unwrap(), acts)
    }

    #[test]
    fn independent_activities_get_one_shard_each() {
        let (model, acts) = independent_model(4);
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 4);
        let shards: Vec<_> = acts
            .iter()
            .map(|&a| plan.activity_shard(a).unwrap())
            .collect();
        assert_eq!(shards, vec![0, 1, 2, 3], "ascending, deterministic");
        let clock = model.activity_by_name("clock").unwrap();
        assert_eq!(plan.activity_shard(clock), None, "timed ⇒ sequential");
    }

    #[test]
    fn shared_written_place_merges_shards() {
        let mut mb = ModelBuilder::new();
        let shared = mb.place("shared", 0).unwrap();
        let a_src = mb.place("a_src", 1).unwrap();
        let b_src = mb.place("b_src", 1).unwrap();
        let a = mb
            .activity("a")
            .unwrap()
            .instantaneous(0)
            .input_arc(a_src, 1)
            .output_arc(shared, 1)
            .done()
            .unwrap();
        let b = mb
            .activity("b")
            .unwrap()
            .instantaneous(0)
            .input_arc(b_src, 1)
            .output_arc(shared, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 1, "overlapping writes collapse");
        assert_eq!(plan.activity_shard(a), plan.activity_shard(b));
        assert_eq!(plan.place_shard(shared), Some(0));
    }

    #[test]
    fn reader_of_a_sharded_place_joins_the_writer_shard() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        let r_src = mb.place("r_src", 1).unwrap();
        let r_dst = mb.place("r_dst", 0).unwrap();
        let w = mb
            .activity("writer")
            .unwrap()
            .instantaneous(0)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .done()
            .unwrap();
        // Reads q (written by `writer`) via a declared guard.
        let r = mb
            .activity("reader")
            .unwrap()
            .instantaneous(0)
            .guard("sees_q", move |m| m.tokens(q) == 0)
            .reads([q])
            .input_arc(r_src, 1)
            .output_arc(r_dst, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.activity_shard(w), plan.activity_shard(r));
    }

    #[test]
    fn reading_a_globally_written_place_does_not_merge() {
        // Both movers read `config`, but only the timed (global) refresher
        // writes it — constant during a batch, so the movers stay apart.
        let mut mb = ModelBuilder::new();
        let config = mb.place("config", 1).unwrap();
        let mut acts = Vec::new();
        for i in 0..2 {
            let src = mb.place(&format!("src{i}"), 1).unwrap();
            let dst = mb.place(&format!("dst{i}"), 0).unwrap();
            let a = mb
                .activity(&format!("move{i}"))
                .unwrap()
                .instantaneous(0)
                .guard("cfg", move |m| m.tokens(config) > 0)
                .reads([config])
                .input_arc(src, 1)
                .output_arc(dst, 1)
                .done()
                .unwrap();
            acts.push(a);
        }
        mb.activity("refresh")
            .unwrap()
            .timed(Dist::deterministic(1.0).unwrap())
            .input_arc(config, 1)
            .output_arc(config, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 2);
        assert_ne!(plan.activity_shard(acts[0]), plan.activity_shard(acts[1]));
        assert_eq!(plan.place_shard(config), None, "no candidate writer");
    }

    #[test]
    fn undeclared_gate_keeps_activity_global() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        let a = mb
            .activity("opaque")
            .unwrap()
            .instantaneous(0)
            .input_arc(p, 1)
            .output_gate("og", move |m, _| m.add(q, 1))
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.activity_shard(a), None, "undeclared write footprint");
        assert_eq!(plan.num_shards(), 0);
    }

    #[test]
    fn enabling_a_higher_priority_activity_demotes() {
        let mut mb = ModelBuilder::new();
        let src = mb.place("src", 1).unwrap();
        let mid = mb.place("mid", 0).unwrap();
        let out = mb.place("out", 0).unwrap();
        // `low` (prio 1) writes `mid`, which enables `high` (prio 9):
        // firing `low` mid-batch would preempt the rest of the batch.
        let low = mb
            .activity("low")
            .unwrap()
            .instantaneous(1)
            .input_arc(src, 1)
            .output_arc(mid, 1)
            .done()
            .unwrap();
        let high = mb
            .activity("high")
            .unwrap()
            .instantaneous(9)
            .input_arc(mid, 1)
            .output_arc(out, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.activity_shard(low), None, "demoted");
        // `high` itself writes nothing that enables anything higher.
        assert!(plan.activity_shard(high).is_some());
    }

    #[test]
    fn conservative_higher_priority_instantaneous_demotes_everything_below() {
        let mut mb = ModelBuilder::new();
        let src = mb.place("src", 1).unwrap();
        let dst = mb.place("dst", 0).unwrap();
        let stop = mb.place("stop", 1).unwrap();
        let low = mb
            .activity("low")
            .unwrap()
            .instantaneous(1)
            .input_arc(src, 1)
            .output_arc(dst, 1)
            .done()
            .unwrap();
        // Undeclared guard ⇒ conservative; prio 9 > 1 demotes `low`.
        let high = mb
            .activity("watcher")
            .unwrap()
            .instantaneous(9)
            .guard("opaque", |_| false)
            .input_arc(stop, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.activity_shard(low), None);
        assert_eq!(plan.activity_shard(high), None, "conservative ⇒ global");
    }

    #[test]
    fn declared_gate_functions_can_shard() {
        let mut mb = ModelBuilder::new();
        let mut acts = Vec::new();
        for i in 0..3 {
            let src = mb.place(&format!("src{i}"), 1).unwrap();
            let acc = mb.place(&format!("acc{i}"), 0).unwrap();
            let a = mb
                .activity(&format!("work{i}"))
                .unwrap()
                .instantaneous(2)
                .input_arc(src, 1)
                .output_gate("bump", move |m, _| {
                    let v = m.tokens(acc);
                    m.set(acc, v + 2);
                })
                .reads([acc])
                .writes([acc])
                .done()
                .unwrap();
            acts.push(a);
        }
        let model = mb.build().unwrap();
        let plan = ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 3);
        for (i, &a) in acts.iter().enumerate() {
            assert_eq!(plan.activity_shard(a), Some(i));
        }
    }
}
