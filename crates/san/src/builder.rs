//! Model construction: places, activities, and Mobius-style composition.

use std::collections::HashMap;
use std::sync::Arc;

use vsched_des::{Dist, Xoshiro256StarStar};

use crate::activity::{ActivityId, ActivitySpec, CaseSpec, CaseWeights, RateFn, Timing, WeightFn};
use crate::error::SanError;
use crate::gate::{InputGate, OutputGate};
use crate::marking::{Marking, PlaceId, ReadSet};
use crate::record::RecordRef;

/// Place → dependent-activity index computed at [`ModelBuilder::build`] time
/// from input arcs and declared read-sets. The simulator's incremental
/// reevaluation visits `dependents(p)` for each dirty place `p`, plus every
/// `conservative` activity.
///
/// Stored in CSR (offsets + one flat data array) rather than a `Vec` per
/// place: at 1000-VM scale the per-place `Vec` headers alone cost more
/// cache traffic than the dependent lists themselves, and the hot loop
/// walks several lists per completion.
pub(crate) struct EnableIndex {
    /// `offsets[p] .. offsets[p + 1]` indexes `data` for place `p`.
    offsets: Vec<u32>,
    /// Dependent activity indices, ascending within each place's range.
    data: Vec<u32>,
    /// Activities with an undeclared enablement closure, ascending — the
    /// conservative fallback, revisited after every firing.
    pub(crate) conservative: Vec<u32>,
}

impl EnableIndex {
    fn build(num_places: usize, activities: &[ActivitySpec]) -> Self {
        // Two passes: count per-place degrees, then fill the flat array.
        let mut counts = vec![0u32; num_places];
        let mut conservative = Vec::new();
        let mut reads: Vec<Option<Vec<crate::PlaceId>>> = Vec::with_capacity(activities.len());
        for (i, act) in activities.iter().enumerate() {
            let r = act.enablement_reads();
            match &r {
                Some(places) => {
                    for p in places {
                        counts[p.index()] += 1;
                    }
                }
                None => conservative.push(i as u32),
            }
            reads.push(r);
        }
        let mut offsets = Vec::with_capacity(num_places + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..num_places].to_vec();
        let mut data = vec![0u32; total as usize];
        // `enablement_reads` is sorted and deduplicated, and `i` is
        // ascending, so every per-place range ends up ascending too.
        for (i, r) in reads.iter().enumerate() {
            if let Some(places) = r {
                for p in places {
                    let slot = &mut cursor[p.index()];
                    data[*slot as usize] = i as u32;
                    *slot += 1;
                }
            }
        }
        EnableIndex {
            offsets,
            data,
            conservative,
        }
    }

    /// Activities whose enablement may depend on place `p`, ascending.
    #[inline]
    pub(crate) fn dependents(&self, p: usize) -> &[u32] {
        &self.data[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }
}

/// A complete, validated SAN model ready for simulation.
///
/// Produced by [`ModelBuilder::build`]. The model owns the gate closures, so
/// it is not `Clone`; replicated experiments rebuild the model from a factory
/// closure (see [`crate::experiment`]).
pub struct Model {
    pub(crate) names: Arc<Vec<String>>,
    pub(crate) initial: Vec<i64>,
    pub(crate) activities: Vec<ActivitySpec>,
    pub(crate) enable_index: EnableIndex,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("places", &self.names.len())
            .field("activities", &self.activities.len())
            .finish()
    }
}

impl Model {
    /// The initial marking of the model.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.initial.clone(), Arc::clone(&self.names))
    }

    /// Number of places.
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.names.len()
    }

    /// Number of activities.
    #[must_use]
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// Looks up a place id by fully qualified name.
    #[must_use]
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.names.iter().position(|n| n == name).map(PlaceId)
    }

    /// Looks up an activity id by fully qualified name.
    #[must_use]
    pub fn activity_by_name(&self, name: &str) -> Option<ActivityId> {
        self.activities
            .iter()
            .position(|a| a.name == name)
            .map(ActivityId)
    }

    /// Fully qualified name of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` was not issued by this model's builder.
    #[must_use]
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.names[place.0]
    }

    /// Iterates over all places as `(id, name)` pairs.
    pub fn places(&self) -> impl Iterator<Item = (PlaceId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PlaceId(i), n.as_str()))
    }

    /// The definition of activity `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this model's builder.
    #[must_use]
    pub fn activity(&self, id: ActivityId) -> &ActivitySpec {
        &self.activities[id.0]
    }

    /// Iterates over all activities as `(id, spec)` pairs.
    pub fn activities(&self) -> impl Iterator<Item = (ActivityId, &ActivitySpec)> {
        self.activities
            .iter()
            .enumerate()
            .map(|(i, a)| (ActivityId(i), a))
    }

    /// Activities whose enablement may depend on `place` (input arc or a
    /// declared read), in ascending index order. Conservative activities
    /// (see [`Model::conservative_activities`]) are *not* listed here.
    pub fn enablement_dependents(&self, place: PlaceId) -> impl Iterator<Item = ActivityId> + '_ {
        self.enable_index
            .dependents(place.0)
            .iter()
            .map(|&i| ActivityId(i as usize))
    }

    /// Activities whose enablement read-set is undeclared — the simulator
    /// falls back to rescanning these after every firing. A fully declared
    /// model yields an empty iterator.
    pub fn conservative_activities(&self) -> impl Iterator<Item = ActivityId> + '_ {
        self.enable_index
            .conservative
            .iter()
            .map(|&i| ActivityId(i as usize))
    }
}

/// Incremental builder for SAN models.
///
/// Composition follows Mobius: a *submodel* is any function that adds places
/// and activities to the builder. [`ModelBuilder::scope`] namespaces the
/// submodel's local names (`vm1/Workload`), while
/// [`ModelBuilder::shared_place`] implements **Join**: the first declaration
/// creates the place, later declarations under the same fully qualified name
/// resolve to it — exactly the "join places" of the paper's Tables 1–2.
/// **Replicate** is a loop over scopes.
///
/// See the crate-level example for basic usage.
pub struct ModelBuilder {
    names: Vec<String>,
    by_name: HashMap<String, PlaceId>,
    shared: Vec<bool>,
    initial: Vec<i64>,
    activities: Vec<ActivitySpec>,
    activity_names: HashMap<String, ActivityId>,
    scope: Vec<String>,
}

impl Default for ModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ModelBuilder {
            names: Vec::new(),
            by_name: HashMap::new(),
            shared: Vec::new(),
            initial: Vec::new(),
            activities: Vec::new(),
            activity_names: HashMap::new(),
            scope: Vec::new(),
        }
    }

    fn qualify(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.scope.join("/"), name)
        }
    }

    /// Adds a place with `initial` tokens under the current scope.
    ///
    /// # Errors
    ///
    /// [`SanError::DuplicatePlace`] if the qualified name already exists.
    pub fn place(&mut self, name: &str, initial: i64) -> Result<PlaceId, SanError> {
        let qualified = self.qualify(name);
        if self.by_name.contains_key(&qualified) {
            return Err(SanError::DuplicatePlace { name: qualified });
        }
        let id = PlaceId(self.names.len());
        self.names.push(qualified.clone());
        self.by_name.insert(qualified, id);
        self.shared.push(false);
        self.initial.push(initial);
        Ok(id)
    }

    /// Declares a **join place**: creates it on first declaration, returns
    /// the existing id on later declarations of the same qualified name.
    ///
    /// Note the name is qualified against the *current* scope; to share
    /// across sibling scopes, declare the shared place at the parent scope
    /// and pass the id into the submodels (the idiom `vsched-core` uses), or
    /// declare it with an absolute name via [`ModelBuilder::shared_place_abs`].
    ///
    /// # Errors
    ///
    /// [`SanError::SharedPlaceConflict`] if re-declared with a different
    /// initial marking, or [`SanError::DuplicatePlace`] if the name exists
    /// as a non-shared place.
    pub fn shared_place(&mut self, name: &str, initial: i64) -> Result<PlaceId, SanError> {
        let qualified = self.qualify(name);
        self.shared_place_qualified(qualified, initial)
    }

    /// [`ModelBuilder::shared_place`] with an absolute (scope-independent)
    /// name.
    ///
    /// # Errors
    ///
    /// Same as [`ModelBuilder::shared_place`].
    pub fn shared_place_abs(&mut self, name: &str, initial: i64) -> Result<PlaceId, SanError> {
        self.shared_place_qualified(name.to_string(), initial)
    }

    fn shared_place_qualified(
        &mut self,
        qualified: String,
        initial: i64,
    ) -> Result<PlaceId, SanError> {
        if let Some(&id) = self.by_name.get(&qualified) {
            if !self.shared[id.0] {
                return Err(SanError::DuplicatePlace { name: qualified });
            }
            if self.initial[id.0] != initial {
                return Err(SanError::SharedPlaceConflict {
                    name: qualified,
                    existing: self.initial[id.0],
                    requested: initial,
                });
            }
            return Ok(id);
        }
        let id = PlaceId(self.names.len());
        self.names.push(qualified.clone());
        self.by_name.insert(qualified, id);
        self.shared.push(true);
        self.initial.push(initial);
        Ok(id)
    }

    /// Adds a record (Mobius *extended place*): one field place per name,
    /// grouped behind a [`RecordRef`].
    ///
    /// # Errors
    ///
    /// [`SanError::DuplicatePlace`] if any field name collides.
    pub fn record(&mut self, name: &str, fields: &[&str]) -> Result<RecordRef, SanError> {
        let mut ids = Vec::with_capacity(fields.len());
        for field in fields {
            ids.push(self.place(&format!("{name}.{field}"), 0)?);
        }
        Ok(RecordRef::new(name.to_string(), ids))
    }

    /// Looks up a place by name, resolved against the current scope first
    /// and then as an absolute name.
    #[must_use]
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.by_name
            .get(&self.qualify(name))
            .or_else(|| self.by_name.get(name))
            .copied()
    }

    /// Runs `f` with names prefixed by `name/` — the submodel idiom.
    ///
    /// ```
    /// use vsched_san::ModelBuilder;
    /// let mut mb = ModelBuilder::new();
    /// let ids = mb.scope("vm1", |mb| mb.place("Workload", 0))?;
    /// assert_eq!(mb.find_place("vm1/Workload"), Some(ids));
    /// # Ok::<(), vsched_san::SanError>(())
    /// ```
    pub fn scope<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut ModelBuilder) -> Result<T, SanError>,
    ) -> Result<T, SanError> {
        self.scope.push(name.to_string());
        let result = f(self);
        self.scope.pop();
        result
    }

    /// Mobius **Replicate**: instantiates the submodel template `f` once per
    /// scope `name_i` for `i` in `0..n`, collecting the results.
    ///
    /// # Errors
    ///
    /// Propagates the first error from the template.
    pub fn replicate<T>(
        &mut self,
        name: &str,
        n: usize,
        mut f: impl FnMut(&mut ModelBuilder, usize) -> Result<T, SanError>,
    ) -> Result<Vec<T>, SanError> {
        (0..n)
            .map(|i| {
                let scope_name = format!("{name}_{i}");
                self.scope(&scope_name, |mb| f(mb, i))
            })
            .collect()
    }

    /// Starts defining an activity. Finish with [`ActivityBuilder::done`].
    ///
    /// # Errors
    ///
    /// [`SanError::DuplicateActivity`] if the qualified name already exists.
    pub fn activity(&mut self, name: &str) -> Result<ActivityBuilder<'_>, SanError> {
        let qualified = self.qualify(name);
        if self.activity_names.contains_key(&qualified) {
            return Err(SanError::DuplicateActivity { name: qualified });
        }
        Ok(ActivityBuilder {
            builder: self,
            name: qualified,
            timing: Timing::Instantaneous { priority: 0 },
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            cases: Vec::new(),
            weights: Vec::new(),
            dynamic_weights: None,
            rate_fn: None,
            rate_reads: ReadSet::All,
            weight_reads: ReadSet::All,
            last_closure: LastClosure::None,
            reads_done: false,
            writes_done: false,
            misplaced_reads: false,
            misplaced_writes: false,
        })
    }

    /// Validates and freezes the model.
    ///
    /// # Errors
    ///
    /// Currently infallible for models produced through this builder (all
    /// invariants are enforced at declaration time), but returns `Result`
    /// so future validations are non-breaking.
    pub fn build(self) -> Result<Model, SanError> {
        let enable_index = EnableIndex::build(self.names.len(), &self.activities);
        Ok(Model {
            names: Arc::new(self.names),
            initial: self.initial,
            activities: self.activities,
            enable_index,
        })
    }
}

/// Which closure a subsequent [`ActivityBuilder::reads`] call describes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LastClosure {
    None,
    /// The most recently added input gate (guard or full gate).
    Gate,
    /// The most recently added output gate of the current case.
    OutputGate,
    Rate,
    Weights,
}

/// Fluent definition of one activity; created by [`ModelBuilder::activity`].
pub struct ActivityBuilder<'a> {
    builder: &'a mut ModelBuilder,
    name: String,
    timing: Timing,
    input_arcs: Vec<(PlaceId, i64)>,
    input_gates: Vec<InputGate>,
    cases: Vec<CaseSpec>,
    weights: Vec<f64>,
    dynamic_weights: Option<WeightFn>,
    rate_fn: Option<RateFn>,
    rate_reads: ReadSet,
    weight_reads: ReadSet,
    last_closure: LastClosure,
    /// Whether `.reads(...)` was already attached to the last closure.
    reads_done: bool,
    /// Whether `.writes(...)` was already attached to the last closure.
    writes_done: bool,
    misplaced_reads: bool,
    misplaced_writes: bool,
}

impl<'a> ActivityBuilder<'a> {
    fn set_closure(&mut self, lc: LastClosure) {
        self.last_closure = lc;
        self.reads_done = false;
        self.writes_done = false;
    }

    /// Makes the activity timed with delay distribution `dist`.
    #[must_use]
    pub fn timed(mut self, dist: Dist) -> Self {
        self.timing = Timing::Timed(dist);
        self.set_closure(LastClosure::None);
        self
    }

    /// Makes the activity instantaneous with the given completion priority.
    #[must_use]
    pub fn instantaneous(mut self, priority: i32) -> Self {
        self.timing = Timing::Instantaneous { priority };
        self.set_closure(LastClosure::None);
        self
    }

    /// Scales the activity's rate by a marking-dependent factor (Mobius's
    /// marking-dependent rates): the sampled delay is divided by
    /// `f(marking)` at activation. A non-positive factor disables the
    /// activity. The canonical use is an M/M/c server:
    /// `.timed(exp).rate_multiplier(move |m| m.tokens(q).min(c) as f64)`.
    #[must_use]
    pub fn rate_multiplier(mut self, f: impl Fn(&Marking) -> f64 + Send + Sync + 'static) -> Self {
        self.rate_fn = Some(Box::new(f));
        self.set_closure(LastClosure::Rate);
        self
    }

    /// Requires (and consumes) `weight` tokens from `place`.
    #[must_use]
    pub fn input_arc(mut self, place: PlaceId, weight: i64) -> Self {
        self.input_arcs.push((place, weight));
        self.set_closure(LastClosure::None);
        self
    }

    /// Adds an input gate with only an enabling predicate.
    #[must_use]
    pub fn guard(
        mut self,
        name: &str,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.input_gates.push(InputGate::guard(name, predicate));
        self.set_closure(LastClosure::Gate);
        self
    }

    /// Adds a full input gate (predicate + completion function).
    #[must_use]
    pub fn input_gate(
        mut self,
        name: &str,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
        function: impl Fn(&mut Marking, &mut Xoshiro256StarStar) + Send + Sync + 'static,
    ) -> Self {
        self.input_gates
            .push(InputGate::new(name, predicate, function));
        self.set_closure(LastClosure::Gate);
        self
    }

    /// Declares the places the **immediately preceding** closure reads — a
    /// guard or input gate's predicate, an output gate's update, a rate
    /// multiplier, or a dynamic case-weight function:
    ///
    /// ```
    /// # use vsched_san::ModelBuilder;
    /// # let mut mb = ModelBuilder::new();
    /// # let halt = mb.place("halt", 0)?;
    /// # let p = mb.place("p", 1)?;
    /// mb.activity("step")?
    ///     .instantaneous(0)
    ///     .input_arc(p, 1)
    ///     .guard("not_halted", move |m| m.is_empty(halt))
    ///     .reads([halt])
    ///     .done()?;
    /// # Ok::<(), vsched_san::SanError>(())
    /// ```
    ///
    /// A closure without a declaration conservatively "reads everything":
    /// still correct, but its activity is rescanned after every firing
    /// instead of only when a declared place changes. Declarations on
    /// enablement closures (predicates, rate multipliers) drive the
    /// incremental simulator; declarations on fire-time closures (gate
    /// updates, case weights) are checked by analysis tools only.
    ///
    /// Calling `.reads` anywhere else (or twice for one closure) is
    /// reported as [`SanError::MisplacedReads`] by
    /// [`ActivityBuilder::done`].
    #[must_use]
    pub fn reads(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        if self.reads_done {
            self.misplaced_reads = true;
            return self;
        }
        let set = ReadSet::Declared(places.into_iter().collect());
        match self.last_closure {
            LastClosure::Gate => {
                if let Some(g) = self.input_gates.last_mut() {
                    g.reads = set;
                }
            }
            LastClosure::OutputGate => {
                if let Some(g) = self
                    .cases
                    .last_mut()
                    .and_then(|c| c.output_gates.last_mut())
                {
                    g.reads = set;
                }
            }
            LastClosure::Rate => self.rate_reads = set,
            LastClosure::Weights => self.weight_reads = set,
            LastClosure::None => self.misplaced_reads = true,
        }
        // `last_closure` stays live so `.writes(...)` may follow (or
        // precede) `.reads(...)` on the same gate.
        self.reads_done = true;
        self
    }

    /// Declares the places the **immediately preceding** gate function may
    /// write — an input gate's completion function or an output gate's
    /// update. Purely a capability declaration for shard derivation (see
    /// [`crate::shard::ShardPlan`]): an activity whose every gate declares
    /// its write-set can fire in parallel with activities of other shards.
    /// Writing outside the declared set is reported by the sharded engine
    /// as [`SanError::ShardViolation`] when it crosses a shard boundary.
    ///
    /// Calling `.writes` after anything that is not a gate *function* — a
    /// plain guard, a rate multiplier, a case-weight function, a non-gate
    /// builder call — or twice for one gate is reported as
    /// [`SanError::MisplacedWrites`] by [`ActivityBuilder::done`].
    #[must_use]
    pub fn writes(mut self, places: impl IntoIterator<Item = PlaceId>) -> Self {
        if self.writes_done {
            self.misplaced_writes = true;
            return self;
        }
        let set: Vec<PlaceId> = places.into_iter().collect();
        match self.last_closure {
            LastClosure::Gate => {
                match self.input_gates.last_mut() {
                    // A guard without a completion function writes nothing;
                    // declaring a write-set for it is a modeling error.
                    Some(g) if g.function.is_some() => g.writes = ReadSet::Declared(set),
                    _ => self.misplaced_writes = true,
                }
            }
            LastClosure::OutputGate => {
                if let Some(g) = self
                    .cases
                    .last_mut()
                    .and_then(|c| c.output_gates.last_mut())
                {
                    g.writes = ReadSet::Declared(set);
                }
            }
            LastClosure::Rate | LastClosure::Weights | LastClosure::None => {
                self.misplaced_writes = true;
            }
        }
        self.writes_done = true;
        self
    }

    /// Starts a new case with probability `weight`. Output arcs / gates
    /// added afterwards attach to this case.
    #[must_use]
    pub fn case(mut self, weight: f64) -> Self {
        self.cases.push(CaseSpec::default());
        self.weights.push(weight);
        self.set_closure(LastClosure::None);
        self
    }

    /// Replaces fixed case weights with a marking-dependent weight function.
    ///
    /// Convenience wrapper over [`ActivityBuilder::dynamic_case_weights_into`]
    /// for closures that return a fresh `Vec` (the returned weights are
    /// copied into the simulator's scratch buffer each completion).
    #[must_use]
    pub fn dynamic_case_weights(
        self,
        f: impl Fn(&Marking) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        self.dynamic_case_weights_into(move |m, out| out.extend_from_slice(&f(m)))
    }

    /// Replaces fixed case weights with a marking-dependent weight function
    /// that fills a caller-provided buffer — the allocation-free form the
    /// simulator calls with a reused scratch `Vec` (cleared before each
    /// call; push one weight per case).
    #[must_use]
    pub fn dynamic_case_weights_into(
        mut self,
        f: impl Fn(&Marking, &mut Vec<f64>) + Send + Sync + 'static,
    ) -> Self {
        self.dynamic_weights = Some(Box::new(f));
        self.set_closure(LastClosure::Weights);
        self
    }

    fn current_case(&mut self) -> &mut CaseSpec {
        if self.cases.is_empty() {
            self.cases.push(CaseSpec::default());
            self.weights.push(1.0);
        }
        self.cases.last_mut().expect("just ensured non-empty")
    }

    /// Produces `weight` tokens into `place` (attached to the current case;
    /// a single default case is created if none was declared).
    #[must_use]
    pub fn output_arc(mut self, place: PlaceId, weight: i64) -> Self {
        self.current_case().output_arcs.push((place, weight));
        self.set_closure(LastClosure::None);
        self
    }

    /// Attaches an output gate to the current case.
    #[must_use]
    pub fn output_gate(
        mut self,
        name: &str,
        function: impl Fn(&mut Marking, &mut Xoshiro256StarStar) + Send + Sync + 'static,
    ) -> Self {
        self.current_case()
            .output_gates
            .push(OutputGate::new(name, function));
        self.set_closure(LastClosure::OutputGate);
        self
    }

    /// Finishes the activity and registers it with the model.
    ///
    /// # Errors
    ///
    /// * [`SanError::InvalidArcWeight`] for non-positive arc weights,
    /// * [`SanError::InvalidCaseWeight`] for non-positive fixed case weights,
    /// * [`SanError::MisplacedReads`] if a `.reads(...)` call did not
    ///   immediately follow a closure-accepting builder call,
    /// * [`SanError::MisplacedWrites`] if a `.writes(...)` call did not
    ///   immediately follow a gate function.
    pub fn done(mut self) -> Result<ActivityId, SanError> {
        if self.misplaced_reads {
            return Err(SanError::MisplacedReads {
                activity: self.name,
            });
        }
        if self.misplaced_writes {
            return Err(SanError::MisplacedWrites {
                activity: self.name,
            });
        }
        if self.cases.is_empty() {
            self.cases.push(CaseSpec::default());
            self.weights.push(1.0);
        }
        for &(_, w) in self
            .input_arcs
            .iter()
            .chain(self.cases.iter().flat_map(|c| c.output_arcs.iter()))
        {
            if w <= 0 {
                return Err(SanError::InvalidArcWeight {
                    activity: self.name,
                    weight: w,
                });
            }
        }
        let case_weights = match self.dynamic_weights {
            Some(f) => CaseWeights::Dynamic(f),
            None => {
                if self.weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
                    return Err(SanError::InvalidCaseWeight {
                        activity: self.name,
                    });
                }
                CaseWeights::Fixed(self.weights)
            }
        };
        let id = ActivityId(self.builder.activities.len());
        self.builder.activity_names.insert(self.name.clone(), id);
        self.builder.activities.push(ActivitySpec {
            name: self.name,
            timing: self.timing,
            input_arcs: self.input_arcs,
            input_gates: self.input_gates,
            cases: self.cases,
            case_weights,
            rate_fn: self.rate_fn,
            rate_reads: self.rate_reads,
            weight_reads: self.weight_reads,
        });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_place_rejected() {
        let mut mb = ModelBuilder::new();
        mb.place("p", 0).unwrap();
        assert!(matches!(
            mb.place("p", 1),
            Err(SanError::DuplicatePlace { .. })
        ));
    }

    #[test]
    fn scopes_namespace_places() {
        let mut mb = ModelBuilder::new();
        let a = mb.scope("vm1", |mb| mb.place("x", 1)).unwrap();
        let b = mb.scope("vm2", |mb| mb.place("x", 2)).unwrap();
        assert_ne!(a, b);
        let model = mb.build().unwrap();
        assert_eq!(model.place_by_name("vm1/x"), Some(a));
        assert_eq!(model.place_by_name("vm2/x"), Some(b));
        let m = model.initial_marking();
        assert_eq!(m.tokens(a), 1);
        assert_eq!(m.tokens(b), 2);
    }

    #[test]
    fn nested_scopes() {
        let mut mb = ModelBuilder::new();
        let p = mb
            .scope("sys", |mb| mb.scope("vm1", |mb| mb.place("y", 0)))
            .unwrap();
        let model = mb.build().unwrap();
        assert_eq!(model.place_by_name("sys/vm1/y"), Some(p));
    }

    #[test]
    fn shared_place_joins() {
        let mut mb = ModelBuilder::new();
        let a = mb.shared_place("Blocked", 0).unwrap();
        let b = mb.shared_place("Blocked", 0).unwrap();
        assert_eq!(a, b);
        assert!(matches!(
            mb.shared_place("Blocked", 5),
            Err(SanError::SharedPlaceConflict { .. })
        ));
    }

    #[test]
    fn shared_place_cannot_shadow_normal_place() {
        let mut mb = ModelBuilder::new();
        mb.place("p", 0).unwrap();
        assert!(matches!(
            mb.shared_place("p", 0),
            Err(SanError::DuplicatePlace { .. })
        ));
    }

    #[test]
    fn shared_place_abs_ignores_scope() {
        let mut mb = ModelBuilder::new();
        let outer = mb.shared_place_abs("global", 0).unwrap();
        let inner = mb
            .scope("vm1", |mb| mb.shared_place_abs("global", 0))
            .unwrap();
        assert_eq!(outer, inner);
    }

    #[test]
    fn replicate_stamps_submodels() {
        let mut mb = ModelBuilder::new();
        let ids = mb
            .replicate("vcpu", 3, |mb, i| mb.place("slot", i as i64))
            .unwrap();
        assert_eq!(ids.len(), 3);
        let model = mb.build().unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(model.place_by_name(&format!("vcpu_{i}/slot")), Some(*id));
            assert_eq!(model.initial_marking().tokens(*id), i as i64);
        }
    }

    #[test]
    fn record_creates_field_places() {
        let mut mb = ModelBuilder::new();
        let rec = mb
            .record("VCPU1_slot", &["remaining_load", "sync_point", "status"])
            .unwrap();
        assert_eq!(rec.arity(), 3);
        let model = mb.build().unwrap();
        assert!(model.place_by_name("VCPU1_slot.remaining_load").is_some());
        assert!(model.place_by_name("VCPU1_slot.status").is_some());
    }

    #[test]
    fn activity_builder_validates_weights() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 0).unwrap();
        let err = mb
            .activity("bad")
            .unwrap()
            .input_arc(p, 0)
            .done()
            .unwrap_err();
        assert!(matches!(err, SanError::InvalidArcWeight { .. }));

        let err = mb.activity("bad2").unwrap().case(0.0).done().unwrap_err();
        assert!(matches!(err, SanError::InvalidCaseWeight { .. }));
    }

    #[test]
    fn duplicate_activity_rejected() {
        let mut mb = ModelBuilder::new();
        mb.activity("a").unwrap().done().unwrap();
        assert!(matches!(
            mb.activity("a").map(|_| ()),
            Err(SanError::DuplicateActivity { .. })
        ));
    }

    #[test]
    fn default_case_is_created() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 0).unwrap();
        let id = mb.activity("a").unwrap().output_arc(p, 1).done().unwrap();
        let model = mb.build().unwrap();
        assert_eq!(model.activities[id.index()].cases.len(), 1);
    }

    #[test]
    fn model_lookup_by_name() {
        let mut mb = ModelBuilder::new();
        mb.place("p", 0).unwrap();
        mb.activity("act").unwrap().done().unwrap();
        let model = mb.build().unwrap();
        assert!(model.place_by_name("p").is_some());
        assert!(model.place_by_name("nope").is_none());
        assert!(model.activity_by_name("act").is_some());
        assert!(model.activity_by_name("nope").is_none());
        assert_eq!(model.num_places(), 1);
        assert_eq!(model.num_activities(), 1);
    }

    #[test]
    fn reads_attaches_to_preceding_closure() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let q = mb.place("q", 0).unwrap();
        let id = mb
            .activity("a")
            .unwrap()
            .guard("g", move |m| m.tokens(q) == 0)
            .reads([q])
            .input_arc(p, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let spec = model.activity(id);
        assert_eq!(spec.enablement_reads(), Some(vec![p, q]));
        assert_eq!(model.conservative_activities().count(), 0);
        let deps: Vec<_> = model.enablement_dependents(q).collect();
        assert_eq!(deps, vec![id]);
    }

    #[test]
    fn misplaced_reads_rejected() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let err = mb
            .activity("a")
            .unwrap()
            .input_arc(p, 1)
            .reads([p])
            .done()
            .unwrap_err();
        assert!(matches!(err, SanError::MisplacedReads { .. }));

        // A second .reads for the same closure is also misplaced.
        let err = mb
            .activity("b")
            .unwrap()
            .guard("g", |_| true)
            .reads([p])
            .reads([p])
            .done()
            .unwrap_err();
        assert!(matches!(err, SanError::MisplacedReads { .. }));
    }

    #[test]
    fn undeclared_closure_is_conservative() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 1).unwrap();
        let a = mb
            .activity("a")
            .unwrap()
            .guard("g", |_| true)
            .input_arc(p, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let conservative: Vec<_> = model.conservative_activities().collect();
        assert_eq!(conservative, vec![a]);
        assert_eq!(
            model.enablement_dependents(p).count(),
            0,
            "conservative activities are not indexed per place"
        );
    }

    #[test]
    fn dependency_index_is_ascending_per_place() {
        let mut mb = ModelBuilder::new();
        let p = mb.place("p", 4).unwrap();
        for name in ["a", "b", "c"] {
            mb.activity(name).unwrap().input_arc(p, 1).done().unwrap();
        }
        let model = mb.build().unwrap();
        let deps: Vec<usize> = model.enablement_dependents(p).map(|a| a.index()).collect();
        assert_eq!(deps, vec![0, 1, 2]);
    }

    #[test]
    fn find_place_resolves_scoped_then_absolute() {
        let mut mb = ModelBuilder::new();
        let root = mb.place("x", 0).unwrap();
        mb.scope("vm", |mb| {
            let local = mb.place("x", 0)?;
            assert_eq!(mb.find_place("x"), Some(local), "scoped wins");
            Ok(())
        })
        .unwrap();
        assert_eq!(mb.find_place("x"), Some(root));
        assert!(mb.find_place("vm/x").is_some());
    }
}
