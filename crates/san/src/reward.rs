//! Reward variables: the measurement side of a SAN.
//!
//! Mobius attaches *reward variables* to a model; the paper uses rate
//! rewards that "monitor the state transition of each VCPU" to compute
//! availability and utilization. Two kinds are supported:
//!
//! * **Rate rewards** accumulate `∫ f(marking(t)) dt`; their time average
//!   over the observation window is the reported metric (e.g. the fraction
//!   of time a VCPU is ACTIVE).
//! * **Impulse rewards** earn `f(marking)` each time a designated activity
//!   completes (e.g. counting dispatched workloads).

use vsched_stats::TimeWeighted;

use crate::activity::ActivityId;
use crate::marking::Marking;

/// Handle to a reward variable registered with a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RewardId(pub(crate) usize);

/// A reward function over markings.
pub type RewardFn = Box<dyn Fn(&Marking) -> f64>;

pub(crate) struct RateReward {
    pub(crate) name: String,
    pub(crate) f: RewardFn,
    pub(crate) acc: TimeWeighted,
    /// Value of `f` since the last state change (the signal is piecewise
    /// constant between completions).
    pub(crate) current: f64,
}

pub(crate) struct ImpulseReward {
    pub(crate) name: String,
    pub(crate) activity: ActivityId,
    pub(crate) f: RewardFn,
    pub(crate) total: f64,
    pub(crate) count: u64,
}

impl std::fmt::Debug for RateReward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateReward")
            .field("name", &self.name)
            .field("current", &self.current)
            .field("average", &self.acc.time_average())
            .finish()
    }
}

impl std::fmt::Debug for ImpulseReward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImpulseReward")
            .field("name", &self.name)
            .field("total", &self.total)
            .field("count", &self.count)
            .finish()
    }
}
