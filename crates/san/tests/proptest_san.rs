//! Property-based tests of the SAN engine and the CTMC solver.

use proptest::prelude::*;
use vsched_des::Dist;
use vsched_san::{solve_steady_state, CtmcOptions, Model, ModelBuilder, Simulator};

/// A random birth-death chain on 0..=k with per-level rates.
fn birth_death(k: usize, births: &[f64], deaths: &[f64]) -> Model {
    let mut mb = ModelBuilder::new();
    let level = mb.place("level", 0).unwrap();
    for (i, &rate) in births.iter().enumerate() {
        let at = i as i64;
        mb.activity(&format!("birth{i}"))
            .unwrap()
            .timed(Dist::exponential(1.0 / rate).unwrap())
            .guard("at_level", move |m| m.tokens(level) == at)
            .output_arc(level, 1)
            .done()
            .unwrap();
    }
    for (i, &rate) in deaths.iter().enumerate() {
        let at = (i + 1) as i64;
        mb.activity(&format!("death{i}"))
            .unwrap()
            .timed(Dist::exponential(1.0 / rate).unwrap())
            .guard("at_level", move |m| m.tokens(level) == at)
            .input_arc(level, 1)
            .done()
            .unwrap();
    }
    let _ = k;
    mb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random birth-death chains: the numerical solution satisfies
    /// detailed balance (π_i λ_i = π_{i+1} μ_{i+1}) and sums to one.
    #[test]
    fn numerical_satisfies_detailed_balance(
        k in 1usize..6,
        rates in proptest::collection::vec(0.2f64..5.0, 12),
    ) {
        let births: Vec<f64> = rates[..k].to_vec();
        let deaths: Vec<f64> = rates[6..6 + k].to_vec();
        let mut model = birth_death(k, &births, &deaths);
        let level = model.place_by_name("level").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        prop_assert!(sol.converged());
        prop_assert_eq!(sol.num_states(), k + 1);
        let total: f64 = sol.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let pi_at = |lvl: i64| sol.probability_where(|m| m.tokens(level) == lvl);
        for i in 0..k {
            let lhs = pi_at(i as i64) * births[i];
            let rhs = pi_at(i as i64 + 1) * deaths[i];
            prop_assert!(
                (lhs - rhs).abs() < 1e-6,
                "detailed balance at level {}: {} vs {}", i, lhs, rhs
            );
        }
    }

    /// The simulator conserves tokens in a random closed ring: one token
    /// circulates forever, never duplicated or lost.
    #[test]
    fn simulator_conserves_ring_token(
        n in 2usize..6,
        means in proptest::collection::vec(0.5f64..4.0, 6),
        seed in 0u64..1000,
        horizon in 10.0f64..500.0,
    ) {
        let mut mb = ModelBuilder::new();
        let places: Vec<_> = (0..n)
            .map(|i| mb.place(&format!("p{i}"), i64::from(i == 0)).unwrap())
            .collect();
        for i in 0..n {
            mb.activity(&format!("move{i}"))
                .unwrap()
                .timed(Dist::exponential(means[i]).unwrap())
                .input_arc(places[i], 1)
                .output_arc(places[(i + 1) % n], 1)
                .done()
                .unwrap();
        }
        let model = mb.build().unwrap();
        let mut sim = Simulator::new(model, seed);
        sim.run_until(horizon).unwrap();
        let total: i64 = places.iter().map(|&p| sim.marking().tokens(p)).sum();
        prop_assert_eq!(total, 1, "ring token duplicated or lost");
    }

    /// Simulation and numerical solution agree on the two-state chain for
    /// random rates (loose tolerance: simulation noise).
    #[test]
    fn simulation_tracks_numerical_two_state(
        fail_mean in 1.0f64..20.0,
        repair_mean in 1.0f64..20.0,
        seed in 0u64..50,
    ) {
        let build = || {
            let mut mb = ModelBuilder::new();
            let up = mb.place("up", 1).unwrap();
            let down = mb.place("down", 0).unwrap();
            mb.activity("fail")
                .unwrap()
                .timed(Dist::exponential(fail_mean).unwrap())
                .input_arc(up, 1)
                .output_arc(down, 1)
                .done()
                .unwrap();
            mb.activity("repair")
                .unwrap()
                .timed(Dist::exponential(repair_mean).unwrap())
                .input_arc(down, 1)
                .output_arc(up, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let mut model = build();
        let up = model.place_by_name("up").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let exact = sol.probability_where(|m| m.tokens(up) == 1);

        let mut sim = Simulator::new(build(), seed);
        let avail = sim.add_rate_reward("up", move |m| m.tokens(up) as f64);
        let horizon = (fail_mean + repair_mean) * 2_000.0;
        sim.run_until(horizon).unwrap();
        let measured = sim.rate_reward_average(avail);
        prop_assert!(
            (measured - exact).abs() < 0.05,
            "exact {} vs simulated {}", exact, measured
        );
    }
}
