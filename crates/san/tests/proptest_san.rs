//! Property-based tests of the SAN engine and the CTMC solver.

use proptest::prelude::*;
use vsched_des::Dist;
use vsched_san::{solve_steady_state, CtmcOptions, Model, ModelBuilder, PlaceId, Simulator};

/// A random birth-death chain on 0..=k with per-level rates.
fn birth_death(k: usize, births: &[f64], deaths: &[f64]) -> Model {
    let mut mb = ModelBuilder::new();
    let level = mb.place("level", 0).unwrap();
    for (i, &rate) in births.iter().enumerate() {
        let at = i as i64;
        mb.activity(&format!("birth{i}"))
            .unwrap()
            .timed(Dist::exponential(1.0 / rate).unwrap())
            .guard("at_level", move |m| m.tokens(level) == at)
            .output_arc(level, 1)
            .done()
            .unwrap();
    }
    for (i, &rate) in deaths.iter().enumerate() {
        let at = (i + 1) as i64;
        mb.activity(&format!("death{i}"))
            .unwrap()
            .timed(Dist::exponential(1.0 / rate).unwrap())
            .guard("at_level", move |m| m.tokens(level) == at)
            .input_arc(level, 1)
            .done()
            .unwrap();
    }
    let _ = k;
    mb.build().unwrap()
}

/// The sharding proptests' random gated model: a deterministic clock fans
/// tokens out to per-group instantaneous workers with declared footprints
/// (rng-drawing output gates, dynamic case weights), plus an undeclared
/// global "mixer" at a lower completion priority that forces sequential
/// fires to interleave with the batched waves.
fn gated_shard_model(groups: usize, init: &[i64], prios: &[i32], wiring: &[usize]) -> Model {
    let mut mb = ModelBuilder::new();
    let ticks: Vec<PlaceId> = (0..groups)
        .map(|i| mb.place(&format!("tick{i}"), 0).unwrap())
        .collect();
    let bufs: Vec<PlaceId> = (0..groups)
        .map(|i| mb.place(&format!("buf{i}"), init[i]).unwrap())
        .collect();
    let accs: Vec<PlaceId> = (0..groups)
        .map(|i| mb.place(&format!("acc{i}"), 0).unwrap())
        .collect();
    let pulse = mb.place("pulse", 0).unwrap();
    let mut clock = mb
        .activity("clock")
        .unwrap()
        .timed(Dist::deterministic(1.0).unwrap())
        .output_arc(pulse, 1);
    for &t in &ticks {
        clock = clock.output_arc(t, 1);
    }
    clock.done().unwrap();
    for i in 0..groups {
        let (buf, acc) = (bufs[i], accs[i]);
        let mut a = mb
            .activity(&format!("work{i}"))
            .unwrap()
            .instantaneous(prios[i])
            .input_arc(ticks[i], 1)
            .guard("buf_cap", move |m| m.tokens(buf) < 1_000)
            .reads([buf]);
        if wiring[i].is_multiple_of(3) {
            // Two cases picked by marking-dependent weights; both
            // route through declared rng-drawing gates.
            a = a
                .case(1.0)
                .output_gate("grow", move |m, rng| {
                    if rng.next_f64() < 0.7 {
                        m.add(acc, 1);
                    } else {
                        m.add(buf, 1);
                    }
                })
                .reads([])
                .writes([acc, buf])
                .case(1.0)
                .output_gate("drain", move |m, rng| {
                    if m.tokens(buf) > 0 && rng.next_bool(0.5) {
                        m.add(buf, -1);
                        m.add(acc, 1);
                    }
                })
                .reads([buf])
                .writes([buf, acc])
                .dynamic_case_weights_into(move |m, out| {
                    out.push(1.0 + m.tokens(buf) as f64);
                    out.push(1.0);
                })
                .reads([buf]);
        } else {
            a = a
                .output_gate("work", move |m, rng| {
                    if rng.next_f64() < 0.5 {
                        m.add(acc, 1);
                    } else {
                        m.add(buf, 1);
                    }
                })
                .reads([])
                .writes([acc, buf]);
        }
        a.done().unwrap();
    }
    // Undeclared gate ⇒ global (sequential path), interleaved with
    // the batched workers at a lower completion priority.
    let target = bufs[wiring[5] % groups];
    let probe = accs[wiring[4] % groups];
    mb.activity("mixer")
        .unwrap()
        .instantaneous(-1)
        .input_arc(pulse, 1)
        .output_gate("mix", move |m, _| {
            if m.tokens(probe) % 2 == 0 {
                m.add(target, 1);
            }
        })
        .done()
        .unwrap();
    mb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random birth-death chains: the numerical solution satisfies
    /// detailed balance (π_i λ_i = π_{i+1} μ_{i+1}) and sums to one.
    #[test]
    fn numerical_satisfies_detailed_balance(
        k in 1usize..6,
        rates in proptest::collection::vec(0.2f64..5.0, 12),
    ) {
        let births: Vec<f64> = rates[..k].to_vec();
        let deaths: Vec<f64> = rates[6..6 + k].to_vec();
        let mut model = birth_death(k, &births, &deaths);
        let level = model.place_by_name("level").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        prop_assert!(sol.converged());
        prop_assert_eq!(sol.num_states(), k + 1);
        let total: f64 = sol.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let pi_at = |lvl: i64| sol.probability_where(|m| m.tokens(level) == lvl);
        for i in 0..k {
            let lhs = pi_at(i as i64) * births[i];
            let rhs = pi_at(i as i64 + 1) * deaths[i];
            prop_assert!(
                (lhs - rhs).abs() < 1e-6,
                "detailed balance at level {}: {} vs {}", i, lhs, rhs
            );
        }
    }

    /// The simulator conserves tokens in a random closed ring: one token
    /// circulates forever, never duplicated or lost.
    #[test]
    fn simulator_conserves_ring_token(
        n in 2usize..6,
        means in proptest::collection::vec(0.5f64..4.0, 6),
        seed in 0u64..1000,
        horizon in 10.0f64..500.0,
    ) {
        let mut mb = ModelBuilder::new();
        let places: Vec<_> = (0..n)
            .map(|i| mb.place(&format!("p{i}"), i64::from(i == 0)).unwrap())
            .collect();
        for i in 0..n {
            mb.activity(&format!("move{i}"))
                .unwrap()
                .timed(Dist::exponential(means[i]).unwrap())
                .input_arc(places[i], 1)
                .output_arc(places[(i + 1) % n], 1)
                .done()
                .unwrap();
        }
        let model = mb.build().unwrap();
        let mut sim = Simulator::new(model, seed);
        sim.run_until(horizon).unwrap();
        let total: i64 = places.iter().map(|&p| sim.marking().tokens(p)).sum();
        prop_assert_eq!(total, 1, "ring token duplicated or lost");
    }

    /// The headline claim of the incremental reevaluation core: on random
    /// gated models — mixed declared and undeclared read-sets, rate
    /// multipliers, dynamic case weights — the incremental mode's run is
    /// **bit-identical** to the full-rescan reference mode: same final
    /// marking, same completion/abort counts, same reward bit patterns.
    #[test]
    fn incremental_is_bit_identical_to_full_rescan(
        n in 2usize..5,
        init in proptest::collection::vec(0i64..4, 5),
        means in proptest::collection::vec(0.3f64..3.0, 8),
        wiring in proptest::collection::vec(0usize..10_000, 8),
        declare in proptest::collection::vec(any::<bool>(), 8),
        seed in 0u64..200,
        horizon in 5.0f64..80.0,
    ) {
        let build = || {
            let mut mb = ModelBuilder::new();
            let places: Vec<PlaceId> = (0..n)
                .map(|i| mb.place(&format!("p{i}"), init[i]).unwrap())
                .collect();
            for (i, &mean) in means.iter().enumerate() {
                let src = places[wiring[i] % n];
                let dst = places[(wiring[i] / n) % n];
                let gp = places[(wiring[i] / (n * n)) % n];
                let wp = places[(wiring[i] / 7) % n];
                let mut a = mb
                    .activity(&format!("a{i}"))
                    .unwrap()
                    .timed(Dist::exponential(mean).unwrap())
                    .input_arc(src, 1)
                    .guard("below_cap", move |m| m.tokens(gp) <= 2);
                if declare[i] {
                    a = a.reads([gp]);
                }
                if wiring[i].is_multiple_of(3) {
                    a = a.rate_multiplier(move |m| 1.0 + m.tokens(gp) as f64);
                    if declare[i] {
                        a = a.reads([gp]);
                    }
                }
                if wiring[i] % 4 == 1 {
                    // Two cases under dynamic weights; the second case
                    // routes through an output gate instead of an arc.
                    a = a
                        .case(1.0)
                        .output_arc(dst, 1)
                        .case(1.0)
                        .output_gate("stash", move |m, _rng| {
                            let t = m.tokens(gp);
                            m.set(gp, t); // read-modify-write, no net change
                            m.add(dst, 1);
                        })
                        .dynamic_case_weights_into(move |m, out| {
                            out.push(1.0 + m.tokens(wp) as f64);
                            out.push(1.0);
                        });
                } else {
                    a = a.output_arc(dst, 1);
                }
                a.done().unwrap();
            }
            mb.build().unwrap()
        };
        let run = |full: bool| {
            let model = build();
            let ps: Vec<PlaceId> = (0..n)
                .map(|i| model.place_by_name(&format!("p{i}")).unwrap())
                .collect();
            let mut sim = Simulator::new(model, seed);
            let rids: Vec<_> = ps
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    if i % 2 == 0 {
                        sim.add_rate_reward_with_reads(format!("r{i}"), [p], move |m| {
                            m.tokens(p) as f64
                        })
                    } else {
                        sim.add_rate_reward(format!("r{i}"), move |m| m.tokens(p) as f64)
                    }
                })
                .collect();
            sim.set_full_rescan(full);
            sim.run_until(horizon).unwrap();
            let rewards: Vec<u64> = rids
                .iter()
                .map(|&r| sim.rate_reward_average(r).to_bits())
                .collect();
            (sim.marking().as_slice().to_vec(), sim.stats(), rewards)
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Satellite of the sharding tentpole: on random gated models (see
    /// [`gated_shard_model`]) a sharded run is **bit-identical** to the
    /// sequential engine at every shard count: same final marking, same
    /// completion counts, same reward bit patterns, same per-activity RNG
    /// positions (checked implicitly: any divergent draw changes the
    /// marking trajectory). The available-parallelism override forces real
    /// helper threads for the lane counts and the one-lane direct-fire
    /// form alike, regardless of the host's core count.
    #[test]
    fn sharded_is_bit_identical_to_sequential(
        groups in 2usize..6,
        init in proptest::collection::vec(1i64..5, 6),
        prios in proptest::collection::vec(0i32..3, 6),
        wiring in proptest::collection::vec(0usize..10_000, 6),
        seed in 0u64..200,
        horizon in 5.0f64..60.0,
        shard_counts in proptest::collection::vec(2usize..9, 1..4),
    ) {
        let run = |shards: usize, avail: usize| {
            let model = gated_shard_model(groups, &init, &prios, &wiring);
            let accs: Vec<PlaceId> = (0..groups)
                .map(|i| model.place_by_name(&format!("acc{i}")).unwrap())
                .collect();
            let mut sim = Simulator::new(model, seed);
            let rids: Vec<_> = accs
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    if i % 2 == 0 {
                        sim.add_rate_reward_with_reads(format!("r{i}"), [p], move |m| {
                            m.tokens(p) as f64
                        })
                    } else {
                        sim.add_rate_reward(format!("r{i}"), move |m| m.tokens(p) as f64)
                    }
                })
                .collect();
            sim.set_shards(shards);
            sim.set_shard_available_override(Some(avail));
            sim.run_until(horizon).unwrap();
            let rewards: Vec<u64> = rids
                .iter()
                .map(|&r| sim.rate_reward_average(r).to_bits())
                .collect();
            (sim.marking().as_slice().to_vec(), sim.stats(), rewards)
        };
        let reference = run(0, 1);
        for &count in &shard_counts {
            // Real lanes (forced threads) and the capped one-lane form.
            prop_assert_eq!(run(count, count), reference.clone(), "shards = {} threaded", count);
            prop_assert_eq!(run(count, 1), reference.clone(), "shards = {} one-lane", count);
        }
    }

    /// Satellite of the sharding tentpole: delta replica maintenance. Runs
    /// the same random gated models through the multi-lane engine with the
    /// horizon split into segments (each `run_until` restarts the pool and
    /// the feed, so cursors, compaction and replica reconstruction all
    /// exercise), with forced helper threads. Every wave start, each lane
    /// asserts — via the engine's internal debug-build audit — that delta
    /// replay landed its replica exactly on the authoritative marking; the
    /// final states must then equal a sequential full-replay run bit for
    /// bit.
    #[test]
    fn delta_replay_matches_full_replay(
        groups in 2usize..6,
        init in proptest::collection::vec(1i64..5, 6),
        prios in proptest::collection::vec(0i32..3, 6),
        wiring in proptest::collection::vec(0usize..10_000, 6),
        seed in 0u64..200,
        horizon in 10.0f64..60.0,
        shards in 2usize..6,
        segments in 1usize..4,
    ) {
        let run = |shards: usize, segments: usize| {
            let model = gated_shard_model(groups, &init, &prios, &wiring);
            let mut sim = Simulator::new(model, seed);
            sim.set_shards(shards);
            sim.set_shard_available_override(Some(shards.max(1)));
            for k in 1..=segments {
                let t = horizon * k as f64 / segments as f64;
                sim.run_until(t).unwrap();
            }
            (sim.marking().as_slice().to_vec(), sim.stats())
        };
        let reference = run(0, 1);
        prop_assert_eq!(run(shards, segments), reference, "shards = {}", shards);
    }

    /// Simulation and numerical solution agree on the two-state chain for
    /// random rates (loose tolerance: simulation noise).
    #[test]
    fn simulation_tracks_numerical_two_state(
        fail_mean in 1.0f64..20.0,
        repair_mean in 1.0f64..20.0,
        seed in 0u64..50,
    ) {
        let build = || {
            let mut mb = ModelBuilder::new();
            let up = mb.place("up", 1).unwrap();
            let down = mb.place("down", 0).unwrap();
            mb.activity("fail")
                .unwrap()
                .timed(Dist::exponential(fail_mean).unwrap())
                .input_arc(up, 1)
                .output_arc(down, 1)
                .done()
                .unwrap();
            mb.activity("repair")
                .unwrap()
                .timed(Dist::exponential(repair_mean).unwrap())
                .input_arc(down, 1)
                .output_arc(up, 1)
                .done()
                .unwrap();
            mb.build().unwrap()
        };
        let mut model = build();
        let up = model.place_by_name("up").unwrap();
        let sol = solve_steady_state(&mut model, CtmcOptions::default()).unwrap();
        let exact = sol.probability_where(|m| m.tokens(up) == 1);

        let mut sim = Simulator::new(build(), seed);
        let avail = sim.add_rate_reward("up", move |m| m.tokens(up) as f64);
        let horizon = (fail_mean + repair_mean) * 2_000.0;
        sim.run_until(horizon).unwrap();
        let measured = sim.rate_reward_average(avail);
        prop_assert!(
            (measured - exact).abs() < 0.05,
            "exact {} vs simulated {}", exact, measured
        );
    }
}
