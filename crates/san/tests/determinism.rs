//! Parallel determinism of `san::experiment`: the replicated-experiment
//! driver must produce **bit-identical** results for every worker count,
//! because seeds derive purely from the replication index and observations
//! merge into the stopping rule in ascending replication order.

use vsched_des::Dist;
use vsched_san::{run_replicated_jobs, ExperimentResult, ModelBuilder, RewardId, Simulator};
use vsched_stats::StoppingRule;

/// M/M/1-style model factory, seeded from `base_seed + rep`.
fn mm1_factory(base_seed: u64) -> impl Fn(u64) -> (Simulator, Vec<RewardId>) + Sync {
    move |rep| {
        let mut mb = ModelBuilder::new();
        let queue = mb.place("queue", 0).unwrap();
        mb.activity("arrive")
            .unwrap()
            .timed(Dist::exponential(2.0).unwrap())
            .output_arc(queue, 1)
            .done()
            .unwrap();
        mb.activity("serve")
            .unwrap()
            .timed(Dist::exponential(1.0).unwrap())
            .input_arc(queue, 1)
            .done()
            .unwrap();
        let mut sim = Simulator::new(mb.build().unwrap(), base_seed + rep);
        let busy =
            sim.add_rate_reward("busy", move |m| if m.tokens(queue) > 0 { 1.0 } else { 0.0 });
        let depth = sim.add_rate_reward("depth", move |m| m.tokens(queue) as f64);
        (sim, vec![busy, depth])
    }
}

fn run_with_jobs(base_seed: u64, jobs: usize) -> ExperimentResult {
    let rule = StoppingRule::new(0.95, 0.05)
        .with_min_replications(4)
        .with_max_replications(24);
    run_replicated_jobs(mm1_factory(base_seed), 200.0, 3_000.0, rule, Some(jobs))
        .expect("experiment runs")
}

/// Bit-level equality of two experiment results.
fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.replications, b.replications);
    assert_eq!(a.total_completions, b.total_completions);
    assert_eq!(a.intervals.len(), b.intervals.len());
    for (ia, ib) in a.intervals.iter().zip(&b.intervals) {
        assert_eq!(ia.mean.to_bits(), ib.mean.to_bits(), "means differ");
        assert_eq!(
            ia.half_width.to_bits(),
            ib.half_width.to_bits(),
            "half-widths differ"
        );
    }
}

#[test]
fn jobs_1_and_4_bit_identical() {
    let sequential = run_with_jobs(0x5eed, 1);
    let parallel = run_with_jobs(0x5eed, 4);
    assert_bit_identical(&sequential, &parallel);
}

#[test]
fn oversubscribed_pool_bit_identical() {
    // More workers than replications the rule can ever request.
    let sequential = run_with_jobs(7, 1);
    let flooded = run_with_jobs(7, 32);
    assert_bit_identical(&sequential, &flooded);
}

#[test]
fn auto_jobs_matches_sequential() {
    let rule = StoppingRule::new(0.95, 0.05)
        .with_min_replications(4)
        .with_max_replications(24);
    let auto = run_replicated_jobs(mm1_factory(0x5eed), 200.0, 3_000.0, rule, None)
        .expect("experiment runs");
    assert_bit_identical(&run_with_jobs(0x5eed, 1), &auto);
}

#[test]
fn seed_change_changes_results() {
    let a = run_with_jobs(1, 4);
    let b = run_with_jobs(2, 4);
    assert_ne!(
        a.intervals[0].mean.to_bits(),
        b.intervals[0].mean.to_bits(),
        "different base seeds must produce different observations"
    );
}
