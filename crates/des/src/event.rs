//! A cancellable future-event list with deterministic ordering.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle to a scheduled event, used for cancellation.
///
/// Handles are unique for the lifetime of the [`EventQueue`] that issued them;
/// cancelling a handle twice, or after the event fired, is a harmless no-op
/// that returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    time: SimTime,
    /// Higher priority fires first among events at the same instant.
    priority: i32,
    /// FIFO tie-breaker among events with equal time and priority.
    seq: u64,
    id: EventId,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert time (earliest first), keep
        // priority natural (highest first), invert seq (lowest first).
        other
            .time
            .cmp(&self.time)
            .then_with(|| self.priority.cmp(&other.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future-event list of a discrete-event simulation.
///
/// Events carry an arbitrary payload `T`. Ordering is deterministic:
///
/// 1. earliest [`SimTime`] first,
/// 2. then highest `priority`,
/// 3. then insertion order (FIFO).
///
/// Cancellation is *lazy*: [`EventQueue::cancel`] marks the handle and the
/// entry is discarded when it reaches the head, so cancel is `O(1)` and pop
/// stays `O(log n)` amortized.
///
/// # Example
///
/// ```
/// use vsched_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::new(1.0), 0, 'a');
/// let _b = q.schedule(SimTime::new(1.0), 5, 'b'); // same time, higher priority
/// q.cancel(a);
/// assert_eq!(q.pop().map(|(_, _, p)| p), Some('b'));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Ids scheduled but not yet fired or cancelled. Bounds memory to the
    /// number of in-flight events.
    pending: HashSet<EventId>,
    /// Ids cancelled but still physically present in the heap (lazy removal).
    cancelled: HashSet<EventId>,
    next_seq: u64,
    /// Time of the last popped event, tracked only while the monotonicity
    /// check is enabled (see [`EventQueue::enable_monotonicity_check`]).
    last_popped: Option<SimTime>,
    monotonicity_check: bool,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: None,
            monotonicity_check: false,
        }
    }

    /// Enables the event-clock monotonicity check: after this call, every
    /// [`EventQueue::pop`] asserts that event times never decrease. A
    /// violation would mean the future-event list is corrupted (a broken
    /// ordering or a mutation of an entry while heaped) and panics rather
    /// than silently running the simulation backwards in time.
    ///
    /// Disabled by default; when disabled the only cost is one untaken
    /// branch per pop.
    pub fn enable_monotonicity_check(&mut self) {
        self.monotonicity_check = true;
    }

    /// Whether the monotonicity check is enabled.
    #[must_use]
    pub fn monotonicity_check_enabled(&self) -> bool {
        self.monotonicity_check
    }

    /// Schedules `payload` to fire at `time` with the given `priority`
    /// (higher fires first at equal times). Returns a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, priority: i32, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time,
            priority,
            seq,
            id,
            payload,
        });
        self.pending.insert(id);
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.prune();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event as `(time, id, payload)`.
    ///
    /// # Panics
    ///
    /// If the monotonicity check is enabled and the popped event is earlier
    /// than a previously popped one (a corrupted future-event list).
    pub fn pop(&mut self) -> Option<(SimTime, EventId, T)> {
        self.prune();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.id);
        if self.monotonicity_check {
            if let Some(last) = self.last_popped {
                assert!(
                    entry.time >= last,
                    "event queue monotonicity violated: popped t={:?} after t={:?}",
                    entry.time,
                    last
                );
            }
            self.last_popped = Some(entry.time);
        }
        Some((entry.time, entry.id, entry.payload))
    }

    /// Drops all pending events and resets the monotonicity watermark.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
        self.last_popped = None;
    }

    fn prune(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 0, 3);
        q.schedule(t(1.0), 0, 1);
        q.schedule(t(2.0), 0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn priority_breaks_time_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 0, "low");
        q.schedule(t(1.0), 10, "high");
        assert_eq!(q.pop().unwrap().2, "high");
        assert_eq!(q.pop().unwrap().2, "low");
    }

    #[test]
    fn fifo_breaks_priority_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), 0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 0, 'a');
        let b = q.schedule(t(2.0), 0, 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, b);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 0, ());
        q.pop().unwrap();
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        let mut other: EventQueue<()> = EventQueue::new();
        let foreign = other.schedule(t(1.0), 0, ());
        assert!(!q.cancel(foreign));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 0, ());
        q.schedule(t(2.0), 0, ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 0, ());
        q.schedule(t(2.0), 0, ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn monotonicity_check_accepts_ordered_pops() {
        let mut q = EventQueue::new();
        q.enable_monotonicity_check();
        assert!(q.monotonicity_check_enabled());
        q.schedule(t(2.0), 0, 'b');
        q.schedule(t(1.0), 0, 'a');
        assert_eq!(q.pop().unwrap().2, 'a');
        // Scheduling in the past *before* anything later fired is legal.
        q.schedule(t(1.5), 0, 'm');
        assert_eq!(q.pop().unwrap().2, 'm');
        assert_eq!(q.pop().unwrap().2, 'b');
        // clear() resets the watermark, so earlier times are fine again.
        q.clear();
        q.schedule(t(0.5), 0, 'z');
        assert_eq!(q.pop().unwrap().2, 'z');
    }

    #[test]
    #[should_panic(expected = "monotonicity violated")]
    fn monotonicity_check_catches_time_regression() {
        let mut q = EventQueue::new();
        q.enable_monotonicity_check();
        q.schedule(t(5.0), 0, ());
        q.pop().unwrap();
        // Scheduling behind the already-fired frontier is exactly the
        // corruption this check exists to catch.
        q.schedule(t(1.0), 0, ());
        q.pop().unwrap();
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), 0, 5);
        q.schedule(t(1.0), 0, 1);
        assert_eq!(q.pop().unwrap().2, 1);
        q.schedule(t(3.0), 0, 3);
        assert_eq!(q.pop().unwrap().2, 3);
        assert_eq!(q.pop().unwrap().2, 5);
    }
}
