//! An indexed calendar event queue for instantaneous-heavy workloads.
//!
//! [`CalendarQueue`] is a drop-in alternative to [`EventQueue`] with the
//! **same tie-break contract** — events pop in `(time ascending, priority
//! descending, insertion order)` — but a different internal shape, tuned
//! for the SAN engine's traffic at large model sizes:
//!
//! * A **slot arena** with a free list replaces the per-queue `HashSet`s
//!   of pending/cancelled ids: cancellation is an O(1) slot write, and a
//!   handle ([`CalEventId`]) is an index + generation pair that can never
//!   alias a reused slot.
//! * The **current-instant zone** holds every event scheduled at the time
//!   currently being processed, bucketed by priority. The paper model
//!   fires thousands of instantaneous activities per clock tick, all at
//!   the same instant across a handful of priority levels; the zone turns
//!   each of those pops into a deque `pop_front` instead of a heap
//!   sift-down over the entire future-event list.
//! * A conventional binary **future heap** holds everything beyond the
//!   current instant. When the zone drains, the next time cohort is
//!   pulled from the heap in one pass.
//!
//! Equivalence with [`EventQueue`] is pinned by unit tests below and by a
//! randomized schedule/cancel/pop proptest in
//! `crates/des/tests/proptest_event_queue.rs`.
//!
//! [`EventQueue`]: crate::event::EventQueue

use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Cancellation handle for an event scheduled on a [`CalendarQueue`].
///
/// Slot index plus generation: a handle kept after its event popped or
/// cancelled can never refer to a later occupant of the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CalEventId {
    slot: u32,
    generation: u32,
}

/// One arena slot. `seq` identifies the occupant: zone/heap entries carry
/// the seq they were created for, so entries left behind by a cancelled
/// (and possibly reused) slot are recognized and skipped on encounter.
#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    seq: u64,
    time: SimTime,
    priority: i32,
    live: bool,
    payload: Option<T>,
}

/// A future-heap entry; ordering matches `event::Entry`: earliest time
/// first, then highest priority, then lowest seq (insertion order).
#[derive(Debug, PartialEq, Eq)]
struct FutureEntry {
    time: SimTime,
    priority: i32,
    seq: u64,
    slot: u32,
}

impl Ord for FutureEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| self.priority.cmp(&other.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for FutureEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The indexed calendar/bucket event queue. See the module docs.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
    /// The instant the zone currently represents (`None` = zone empty).
    zone_time: Option<SimTime>,
    /// Priority buckets at `zone_time`, highest priority first. Each
    /// deque is in seq (insertion) order; entries carry the seq they were
    /// enqueued for so stale entries are skipped.
    zone: Vec<(i32, VecDeque<(u32, u64)>)>,
    future: BinaryHeap<FutureEntry>,
    last_popped: Option<SimTime>,
    monotonicity_check: bool,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            zone_time: None,
            zone: Vec::new(),
            future: BinaryHeap::new(),
            last_popped: None,
            monotonicity_check: false,
        }
    }

    /// Enables the event-clock monotonicity check: every subsequent
    /// [`CalendarQueue::pop`] asserts event times never decrease (same
    /// contract as [`crate::EventQueue::enable_monotonicity_check`]).
    pub fn enable_monotonicity_check(&mut self) {
        self.monotonicity_check = true;
    }

    /// Whether the monotonicity check is enabled.
    #[must_use]
    pub fn monotonicity_check_enabled(&self) -> bool {
        self.monotonicity_check
    }

    /// Number of scheduled (non-cancelled, non-popped) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at `time` with `priority` (higher fires first
    /// at equal times). Returns a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, priority: i32, payload: T) -> CalEventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.generation = s.generation.wrapping_add(1);
                s.seq = seq;
                s.time = time;
                s.priority = priority;
                s.live = true;
                s.payload = Some(payload);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("calendar slot count fits u32");
                self.slots.push(Slot {
                    generation: 0,
                    seq,
                    time,
                    priority,
                    live: true,
                    payload: Some(payload),
                });
                i
            }
        };
        self.live += 1;
        match self.zone_time {
            Some(zt) if time == zt => self.zone_insert(priority, slot, seq),
            Some(zt) if time < zt => {
                // An event landed before the instant being processed:
                // spill the zone back to the heap and let the next pull
                // re-establish the earliest cohort. (The engine never does
                // this — its clock only moves forward — but the queue
                // stays correct if a client does.)
                self.spill_zone();
                self.future.push(FutureEntry {
                    time,
                    priority,
                    seq,
                    slot,
                });
            }
            _ => self.future.push(FutureEntry {
                time,
                priority,
                seq,
                slot,
            }),
        }
        CalEventId {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending; `false` if it already popped, was already cancelled, or
    /// the handle is stale. O(1): the slot is freed immediately and any
    /// zone/heap entry left behind is recognized by seq and skipped.
    pub fn cancel(&mut self, id: CalEventId) -> bool {
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if !s.live || s.generation != id.generation {
            return false;
        }
        s.live = false;
        s.payload = None;
        self.free.push(id.slot);
        self.live -= 1;
        true
    }

    /// Time of the next event, without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_zone_head()
            .map(|_| self.zone_time.expect("zone set"))
    }

    /// The next event as `(time, priority, &payload)`, without removing
    /// it. Lets a caller group consecutive events before popping.
    #[must_use]
    pub fn peek(&mut self) -> Option<(SimTime, i32, &T)> {
        let (slot, _) = self.ensure_zone_head()?;
        let time = self.zone_time.expect("zone set");
        let s = &self.slots[slot as usize];
        Some((time, s.priority, s.payload.as_ref().expect("live slot")))
    }

    /// Removes and returns the next event as `(time, id, payload)`.
    /// The returned id is the (now spent) handle the event was scheduled
    /// under — callers that map ids to model state can clear the mapping.
    pub fn pop(&mut self) -> Option<(SimTime, CalEventId, T)> {
        let (slot, _) = self.ensure_zone_head()?;
        let time = self.zone_time.expect("zone set");
        // Detach the head entry.
        let bucket = &mut self.zone[0].1;
        bucket.pop_front();
        if bucket.is_empty() {
            self.zone.remove(0);
            if self.zone.is_empty() {
                self.zone_time = None;
            }
        }
        if self.monotonicity_check {
            if let Some(last) = self.last_popped {
                assert!(
                    time >= last,
                    "event clock moved backwards: popped t={time} after t={last}"
                );
            }
            self.last_popped = Some(time);
        }
        let s = &mut self.slots[slot as usize];
        let id = CalEventId {
            slot,
            generation: s.generation,
        };
        s.live = false;
        let payload = s.payload.take().expect("live slot has payload");
        self.free.push(slot);
        self.live -= 1;
        Some((time, id, payload))
    }

    /// Drops every scheduled event.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.zone.clear();
        self.zone_time = None;
        self.future.clear();
        self.live = 0;
    }

    /// Inserts a live entry into the zone's priority buckets.
    fn zone_insert(&mut self, priority: i32, slot: u32, seq: u64) {
        // Buckets are sorted by priority descending; the priority alphabet
        // is tiny (the SAN engine uses < 10 levels), so a linear probe
        // beats a search structure.
        match self.zone.iter().position(|&(p, _)| p <= priority) {
            Some(i) if self.zone[i].0 == priority => self.zone[i].1.push_back((slot, seq)),
            Some(i) => self
                .zone
                .insert(i, (priority, VecDeque::from([(slot, seq)]))),
            None => self.zone.push((priority, VecDeque::from([(slot, seq)]))),
        }
    }

    /// Moves every zone entry back onto the future heap (rare path: an
    /// event was scheduled before the zone's instant).
    fn spill_zone(&mut self) {
        let Some(zt) = self.zone_time.take() else {
            return;
        };
        for (priority, bucket) in self.zone.drain(..) {
            for (slot, seq) in bucket {
                let s = &self.slots[slot as usize];
                if s.live && s.seq == seq {
                    self.future.push(FutureEntry {
                        time: zt,
                        priority,
                        seq,
                        slot,
                    });
                }
            }
        }
    }

    /// Ensures the zone's head entry is live, pulling the next time
    /// cohort from the heap when the zone drains. Returns the head
    /// `(slot, seq)` or `None` if the queue is empty.
    fn ensure_zone_head(&mut self) -> Option<(u32, u64)> {
        loop {
            // Prune stale entries off the zone front.
            while let Some((_, bucket)) = self.zone.first_mut() {
                match bucket.front() {
                    Some(&(slot, seq)) => {
                        let s = &self.slots[slot as usize];
                        if s.live && s.seq == seq {
                            return Some((slot, seq));
                        }
                        bucket.pop_front();
                    }
                    None => {
                        self.zone.remove(0);
                    }
                }
            }
            self.zone_time = None;
            // Pull the earliest cohort (all events at the minimum time)
            // from the heap. Heap order pops same-time entries priority-
            // descending then seq-ascending, so bucket order is right.
            let mut cohort_time: Option<SimTime> = None;
            while let Some(top) = self.future.peek() {
                let s = &self.slots[top.slot as usize];
                if !s.live || s.seq != top.seq {
                    self.future.pop();
                    continue;
                }
                match cohort_time {
                    None => {
                        cohort_time = Some(top.time);
                    }
                    Some(t) if top.time == t => {}
                    Some(_) => break,
                }
                let e = self.future.pop().expect("peeked entry");
                self.zone_insert(e.priority, e.slot, e.seq);
            }
            match cohort_time {
                Some(t) => self.zone_time = Some(t),
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(2.0), 0, "b");
        q.schedule(SimTime::new(1.0), 0, "a");
        q.schedule(SimTime::new(3.0), 0, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_pops_priority_descending_then_insertion_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::new(5.0);
        q.schedule(t, 1, "low-first");
        q.schedule(t, 9, "high-first");
        q.schedule(t, 9, "high-second");
        q.schedule(t, 1, "low-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(
            order,
            ["high-first", "high-second", "low-first", "low-second"]
        );
    }

    #[test]
    fn cancel_prevents_pop_and_is_idempotent() {
        let mut q = CalendarQueue::new();
        let id = q.schedule(SimTime::new(1.0), 0, "x");
        let keep = q.schedule(SimTime::new(2.0), 0, "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "second cancel reports false");
        assert_eq!(q.len(), 1);
        let (t, got, p) = q.pop().unwrap();
        assert_eq!((t, got, p), (SimTime::new(2.0), keep, "y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_handle_after_slot_reuse_is_rejected() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::new(1.0), 0, "a");
        assert!(q.cancel(a));
        // The freed slot is reused with a bumped generation.
        let b = q.schedule(SimTime::new(2.0), 0, "b");
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn events_scheduled_mid_instant_join_the_current_cohort() {
        // The SAN engine's instantaneous cascades do exactly this: pop an
        // event at time t, schedule more events at time t, and expect them
        // to fire before anything later — ordered by priority, then seq.
        let mut q = CalendarQueue::new();
        let t = SimTime::new(1.0);
        q.schedule(t, 5, "first");
        q.schedule(SimTime::new(2.0), 9, "later");
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "first");
        q.schedule(t, 3, "cascade-low");
        q.schedule(t, 7, "cascade-high");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["cascade-high", "cascade-low", "later"]);
    }

    #[test]
    fn earlier_schedule_than_zone_time_spills_and_reorders() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(5.0), 0, "zone");
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
        // Zone is now at t=5; an earlier event must still pop first.
        q.schedule(SimTime::new(1.0), 0, "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["early", "zone"]);
    }

    #[test]
    fn peek_does_not_disturb_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(1.0), 2, 10u32);
        q.schedule(SimTime::new(1.0), 7, 20u32);
        let (t, prio, &payload) = q.peek().unwrap();
        assert_eq!((t, prio, payload), (SimTime::new(1.0), 7, 20));
        let (_, _, first) = q.pop().unwrap();
        assert_eq!(first, 20);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_schedule_cancel_pop() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::new(1.0), 0, ());
        q.schedule(SimTime::new(2.0), 0, ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(1.0), 0, ());
        q.schedule(SimTime::new(2.0), 0, ());
        let _ = q.peek_time();
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "event clock moved backwards")]
    fn monotonicity_check_fires_on_backwards_pop() {
        let mut q = CalendarQueue::new();
        q.enable_monotonicity_check();
        assert!(q.monotonicity_check_enabled());
        q.schedule(SimTime::new(5.0), 0, ());
        q.pop();
        q.schedule(SimTime::new(1.0), 0, ());
        q.pop();
    }

    /// The pinning test the tentpole rests on: a mixed schedule/cancel
    /// workload driven through both queues pops in exactly the same
    /// order. (The randomized version lives in the proptest suite.)
    #[test]
    fn matches_event_queue_on_a_mixed_workload() {
        let mut old: EventQueue<u32> = EventQueue::new();
        let mut new: CalendarQueue<u32> = CalendarQueue::new();
        let mut old_ids = Vec::new();
        let mut new_ids = Vec::new();
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x1234_5678_u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for i in 0..500u32 {
            match next(4) {
                0 | 1 => {
                    let t = SimTime::new(next(20) as f64);
                    let prio = next(5) as i32;
                    old_ids.push(old.schedule(t, prio, i));
                    new_ids.push(new.schedule(t, prio, i));
                }
                2 => {
                    assert_eq!(
                        old.pop().map(|(t, _, p)| (t, p)),
                        new.pop().map(|(t, _, p)| (t, p))
                    );
                }
                _ => {
                    if !old_ids.is_empty() {
                        let k = next(old_ids.len() as u64) as usize;
                        assert_eq!(old.cancel(old_ids[k]), new.cancel(new_ids[k]));
                    }
                }
            }
            assert_eq!(old.len(), new.len());
        }
        loop {
            let a = old.pop().map(|(t, _, p)| (t, p));
            let b = new.pop().map(|(t, _, p)| (t, p));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
