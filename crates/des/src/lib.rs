//! # vsched-des — discrete-event simulation kernel
//!
//! This crate is the lowest substrate of the `vsched-sim` workspace. It
//! provides the three ingredients every discrete-event simulator needs:
//!
//! * a **virtual clock** with a totally ordered, finite time type
//!   ([`SimTime`]),
//! * a **cancellable future-event list** ([`EventQueue`]) with deterministic
//!   tie-breaking (time, then priority, then insertion order), and
//! * **reproducible randomness**: a small, portable PRNG
//!   ([`rng::Xoshiro256StarStar`]) with independent per-component streams
//!   ([`rng::RngStreams`]) and a library of sampling
//!   [`dist::Dist`]ributions.
//!
//! The SAN engine (`vsched-san`) and the direct virtualization engine
//! (`vsched-core`) are both built on top of this crate.
//!
//! ## Example
//!
//! ```
//! use vsched_des::{EventQueue, SimTime};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::new(2.0), 0, "second");
//! queue.schedule(SimTime::new(1.0), 0, "first");
//! let (t, _, payload) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::new(1.0));
//! assert_eq!(payload, "first");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod error;
pub mod event;
pub mod rng;
pub mod time;

pub use calendar::{CalEventId, CalendarQueue};
pub use dist::Dist;
pub use error::DesError;
pub use event::{EventId, EventQueue};
pub use rng::{RngStreams, Xoshiro256StarStar};
pub use time::SimTime;
