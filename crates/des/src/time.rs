//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the virtual time axis.
///
/// `SimTime` wraps an `f64` that is guaranteed to be **finite and
/// non-negative**, which makes the type totally ordered ([`Ord`]) and safe to
/// use as a priority-queue key. Continuous-time formalisms (exponential
/// activity delays in a SAN) and discrete-time models (the paper's unit-period
/// `Clock` activity) both fit.
///
/// # Example
///
/// ```
/// use vsched_des::SimTime;
/// let t = SimTime::new(1.5) + SimTime::new(2.5);
/// assert_eq!(t.as_f64(), 4.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of the simulation time axis.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, infinite, or negative — such values would break
    /// the total order the event queue relies on.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "SimTime must be finite and non-negative, got {t}"
        );
        SimTime(t)
    }

    /// Returns the raw floating-point value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns `self - rhs`, clamped at zero.
    ///
    /// ```
    /// use vsched_des::SimTime;
    /// assert_eq!(SimTime::new(1.0).saturating_sub(SimTime::new(3.0)), SimTime::ZERO);
    /// ```
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are finite by construction, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is finite")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when `rhs` may exceed `self`.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl From<f64> for SimTime {
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(SimTime::new(1.0) + SimTime::new(2.0), SimTime::new(3.0));
        assert_eq!(SimTime::new(3.0) - SimTime::new(2.0), SimTime::new(1.0));
        let mut t = SimTime::ZERO;
        t += SimTime::new(5.0);
        assert_eq!(t.as_f64(), 5.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimTime::new(2.0).saturating_sub(SimTime::new(5.0)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::new(5.0).saturating_sub(SimTime::new(2.0)),
            SimTime::new(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_infinite() {
        let _ = SimTime::new(f64::INFINITY);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "1.5");
        assert_eq!(format!("{:?}", SimTime::new(1.5)), "t=1.5");
    }
}
