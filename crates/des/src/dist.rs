//! Sampling distributions for activity delays and workload generation.
//!
//! The paper states that "the generation of load and sync_point is
//! configurable to any distribution and rate"; [`Dist`] is the vocabulary of
//! distributions the framework accepts. Every constructor validates its
//! parameters ([`DesError::InvalidDistribution`]) so an invalid model is
//! rejected at build time rather than producing NaN delays mid-simulation.

use crate::error::DesError;
use crate::rng::Xoshiro256StarStar;

/// A validated sampling distribution over non-negative reals.
///
/// # Example
///
/// ```
/// use vsched_des::{Dist, Xoshiro256StarStar};
///
/// let d = Dist::uniform(5.0, 15.0)?;
/// let mut rng = Xoshiro256StarStar::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!((5.0..15.0).contains(&x));
/// assert_eq!(d.mean(), 10.0);
/// # Ok::<(), vsched_des::DesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns the same value.
    Deterministic {
        /// The constant value returned by every sample.
        value: f64,
    },
    /// Continuous uniform on `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Exponential with the given mean (`1/rate`).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Normal truncated below at zero (resampled).
    Normal {
        /// Mean of the untruncated normal.
        mean: f64,
        /// Standard deviation (must be positive).
        std_dev: f64,
    },
    /// Erlang: sum of `k` independent exponentials with total mean `mean`.
    Erlang {
        /// Shape (number of exponential stages), at least 1.
        k: u32,
        /// Mean of the sum.
        mean: f64,
    },
    /// Geometric number of trials until first success (support `1, 2, …`).
    Geometric {
        /// Per-trial success probability, in `(0, 1]`.
        p: f64,
    },
    /// Discrete uniform over the integers `low..=high`.
    DiscreteUniform {
        /// Inclusive lower bound.
        low: u64,
        /// Inclusive upper bound.
        high: u64,
    },
    /// Empirical distribution over weighted points.
    Empirical {
        /// `(value, weight)` pairs; weights need not be normalized.
        points: Vec<(f64, f64)>,
    },
}

impl Dist {
    /// A distribution that always yields `value`.
    ///
    /// # Errors
    ///
    /// Fails if `value` is negative or non-finite.
    pub fn deterministic(value: f64) -> Result<Dist, DesError> {
        if !value.is_finite() || value < 0.0 {
            return Err(invalid("deterministic", "value must be finite and >= 0"));
        }
        Ok(Dist::Deterministic { value })
    }

    /// Continuous uniform on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Fails unless `0 <= low < high` and both are finite.
    pub fn uniform(low: f64, high: f64) -> Result<Dist, DesError> {
        if !(low.is_finite() && high.is_finite()) || low < 0.0 || low >= high {
            return Err(invalid("uniform", "requires 0 <= low < high"));
        }
        Ok(Dist::Uniform { low, high })
    }

    /// Exponential with the given `mean`.
    ///
    /// # Errors
    ///
    /// Fails unless `mean` is finite and positive.
    pub fn exponential(mean: f64) -> Result<Dist, DesError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(invalid("exponential", "mean must be positive"));
        }
        Ok(Dist::Exponential { mean })
    }

    /// Normal truncated at zero.
    ///
    /// # Errors
    ///
    /// Fails unless `mean` is finite and non-negative and `std_dev` is finite
    /// and positive.
    pub fn normal(mean: f64, std_dev: f64) -> Result<Dist, DesError> {
        if !mean.is_finite() || mean < 0.0 || !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(invalid("normal", "requires mean >= 0 and std_dev > 0"));
        }
        Ok(Dist::Normal { mean, std_dev })
    }

    /// Erlang with `k` stages and total `mean`.
    ///
    /// # Errors
    ///
    /// Fails unless `k >= 1` and `mean > 0`.
    pub fn erlang(k: u32, mean: f64) -> Result<Dist, DesError> {
        if k == 0 {
            return Err(invalid("erlang", "k must be at least 1"));
        }
        if !mean.is_finite() || mean <= 0.0 {
            return Err(invalid("erlang", "mean must be positive"));
        }
        Ok(Dist::Erlang { k, mean })
    }

    /// Geometric with success probability `p`.
    ///
    /// # Errors
    ///
    /// Fails unless `0 < p <= 1`.
    pub fn geometric(p: f64) -> Result<Dist, DesError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(invalid("geometric", "p must be in (0, 1]"));
        }
        Ok(Dist::Geometric { p })
    }

    /// Discrete uniform over `low..=high`.
    ///
    /// # Errors
    ///
    /// Fails unless `low <= high`.
    pub fn discrete_uniform(low: u64, high: u64) -> Result<Dist, DesError> {
        if low > high {
            return Err(invalid("discrete uniform", "requires low <= high"));
        }
        Ok(Dist::DiscreteUniform { low, high })
    }

    /// Empirical distribution over weighted `(value, weight)` points.
    ///
    /// # Errors
    ///
    /// Fails if no point has positive weight, or any value/weight is
    /// negative or non-finite.
    pub fn empirical(points: Vec<(f64, f64)>) -> Result<Dist, DesError> {
        let total: f64 = points.iter().map(|&(_, w)| w).sum();
        let well_formed = points
            .iter()
            .all(|&(v, w)| v.is_finite() && v >= 0.0 && w.is_finite() && w >= 0.0);
        if points.is_empty() || !well_formed || total <= 0.0 {
            return Err(invalid(
                "empirical",
                "requires finite non-negative points with positive total weight",
            ));
        }
        Ok(Dist::Empirical { points })
    }

    /// Draws one sample. The result is always finite and non-negative.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        match self {
            Dist::Deterministic { value } => *value,
            Dist::Uniform { low, high } => low + (high - low) * rng.next_f64(),
            Dist::Exponential { mean } => {
                // Inverse transform; 1 - u in (0, 1] avoids ln(0).
                -mean * (1.0 - rng.next_f64()).ln()
            }
            Dist::Normal { mean, std_dev } => loop {
                let x = mean + std_dev * standard_normal(rng);
                if x >= 0.0 {
                    break x;
                }
            },
            Dist::Erlang { k, mean } => {
                let stage_mean = mean / f64::from(*k);
                (0..*k)
                    .map(|_| -stage_mean * (1.0 - rng.next_f64()).ln())
                    .sum()
            }
            Dist::Geometric { p } => {
                if *p >= 1.0 {
                    return 1.0;
                }
                // Inverse transform on the geometric CDF.
                let u = 1.0 - rng.next_f64(); // (0, 1]
                (u.ln() / (1.0 - p).ln()).ceil().max(1.0)
            }
            Dist::DiscreteUniform { low, high } => (low + rng.next_below(high - low + 1)) as f64,
            Dist::Empirical { points } => {
                let total: f64 = points.iter().map(|&(_, w)| w).sum();
                let mut target = rng.next_f64() * total;
                for &(v, w) in points {
                    if target < w {
                        return v;
                    }
                    target -= w;
                }
                // Floating-point slack: fall back to the last point.
                points.last().map(|&(v, _)| v).unwrap_or(0.0)
            }
        }
    }

    /// Analytical mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Deterministic { value } => *value,
            Dist::Uniform { low, high } => (low + high) / 2.0,
            Dist::Exponential { mean } | Dist::Erlang { mean, .. } => *mean,
            // Truncation bias is negligible for the parameter ranges the
            // framework uses (mean >> std_dev); report the untruncated mean.
            Dist::Normal { mean, .. } => *mean,
            Dist::Geometric { p } => 1.0 / p,
            Dist::DiscreteUniform { low, high } => (*low as f64 + *high as f64) / 2.0,
            Dist::Empirical { points } => {
                let total: f64 = points.iter().map(|&(_, w)| w).sum();
                points.iter().map(|&(v, w)| v * w).sum::<f64>() / total
            }
        }
    }
}

/// Standard normal via Marsaglia's polar method.
fn standard_normal(rng: &mut Xoshiro256StarStar) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

fn invalid(family: &'static str, reason: &str) -> DesError {
    DesError::InvalidDistribution {
        family,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(12345)
    }

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::deterministic(7.0).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 7.0);
        }
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(5.0, 15.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((5.0..15.0).contains(&x));
        }
        assert!((empirical_mean(&d, 50_000) - 10.0).abs() < 0.1);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exponential(4.0).unwrap();
        assert!((empirical_mean(&d, 200_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn normal_truncated_nonnegative() {
        let d = Dist::normal(2.0, 3.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_converges_when_far_from_zero() {
        let d = Dist::normal(50.0, 5.0).unwrap();
        assert!((empirical_mean(&d, 100_000) - 50.0).abs() < 0.1);
    }

    #[test]
    fn erlang_mean_and_lower_variance() {
        let d = Dist::erlang(4, 8.0).unwrap();
        assert!((empirical_mean(&d, 100_000) - 8.0).abs() < 0.1);
        // Erlang-4 variance = mean^2 / 4; check it is well below exponential's.
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 16.0).abs() < 1.0, "variance {var} should be ~16");
    }

    #[test]
    fn geometric_support_and_mean() {
        let d = Dist::geometric(0.25).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!(x >= 1.0 && x.fract() == 0.0);
        }
        assert!((empirical_mean(&d, 200_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn geometric_p_one_always_one() {
        let d = Dist::geometric(1.0).unwrap();
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 1.0);
    }

    #[test]
    fn discrete_uniform_hits_all_values() {
        let d = Dist::discrete_uniform(3, 6).unwrap();
        let mut r = rng();
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = d.sample(&mut r) as usize;
            assert!((3..=6).contains(&x));
            seen[x] = true;
        }
        assert!(seen[3] && seen[4] && seen[5] && seen[6]);
        assert_eq!(d.mean(), 4.5);
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Dist::empirical(vec![(1.0, 3.0), (10.0, 1.0)]).unwrap();
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        assert!((d.mean() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn constructors_validate() {
        assert!(Dist::deterministic(-1.0).is_err());
        assert!(Dist::deterministic(f64::NAN).is_err());
        assert!(Dist::uniform(5.0, 5.0).is_err());
        assert!(Dist::uniform(-1.0, 5.0).is_err());
        assert!(Dist::exponential(0.0).is_err());
        assert!(Dist::normal(1.0, 0.0).is_err());
        assert!(Dist::normal(-1.0, 1.0).is_err());
        assert!(Dist::erlang(0, 1.0).is_err());
        assert!(Dist::erlang(2, -1.0).is_err());
        assert!(Dist::geometric(0.0).is_err());
        assert!(Dist::geometric(1.5).is_err());
        assert!(Dist::discrete_uniform(5, 3).is_err());
        assert!(Dist::empirical(vec![]).is_err());
        assert!(Dist::empirical(vec![(1.0, 0.0)]).is_err());
        assert!(Dist::empirical(vec![(-1.0, 1.0)]).is_err());
    }

    #[test]
    fn all_samples_finite_nonnegative() {
        let dists = vec![
            Dist::deterministic(3.0).unwrap(),
            Dist::uniform(0.0, 1.0).unwrap(),
            Dist::exponential(2.0).unwrap(),
            Dist::normal(1.0, 1.0).unwrap(),
            Dist::erlang(3, 6.0).unwrap(),
            Dist::geometric(0.5).unwrap(),
            Dist::discrete_uniform(0, 9).unwrap(),
            Dist::empirical(vec![(2.0, 1.0), (4.0, 1.0)]).unwrap(),
        ];
        let mut r = rng();
        for d in &dists {
            for _ in 0..1000 {
                let x = d.sample(&mut r);
                assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    }
}
