//! Error type for the DES kernel.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing kernel objects.
///
/// All runtime paths of the kernel are infallible by construction; errors can
/// only arise from invalid *parameters* (e.g. a negative rate for an
/// exponential distribution).
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// A distribution was parameterized outside its domain.
    InvalidDistribution {
        /// Name of the distribution family, e.g. `"exponential"`.
        family: &'static str,
        /// Human-readable reason the parameters are invalid.
        reason: String,
    },
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::InvalidDistribution { family, reason } => {
                write!(f, "invalid {family} distribution: {reason}")
            }
        }
    }
}

impl Error for DesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DesError::InvalidDistribution {
            family: "exponential",
            reason: "mean must be positive".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("exponential"));
        assert!(msg.contains("mean must be positive"));
    }
}
