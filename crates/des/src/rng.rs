//! Reproducible pseudo-randomness for simulations.
//!
//! Simulation studies need (a) bit-for-bit reproducibility across platforms
//! and library versions, and (b) *independent streams* so that adding a
//! component to a model does not perturb the random numbers seen by other
//! components (common-random-numbers variance reduction). Neither is
//! guaranteed by `rand`'s `SmallRng`, so this module ships a tiny, portable
//! generator: [`Xoshiro256StarStar`] seeded through SplitMix64, plus a
//! [`RngStreams`] factory deriving decorrelated per-component streams.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step — used for seeding and stream derivation.
///
/// This is the canonical seeding generator recommended by the xoshiro
/// authors; it passes through every 64-bit state exactly once.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256** generator (Blackman & Vigna, 2018).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and a
/// fixed, documented algorithm — so results are reproducible forever,
/// independent of the `rand` crate's internal choices. Implements
/// [`rand::RngCore`] so it composes with `rand`'s distributions if needed.
///
/// # Example
///
/// ```
/// use vsched_des::Xoshiro256StarStar;
/// use rand::RngCore;
///
/// let mut a = Xoshiro256StarStar::seed_from(42);
/// let mut b = Xoshiro256StarStar::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }

    /// Generates the next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // established RNG naming, not an Iterator
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // All-zero state is a fixed point of xoshiro; remap it.
        if s == [0; 4] {
            return Xoshiro256StarStar::seed_from(0);
        }
        Xoshiro256StarStar { s }
    }
}

/// Derives independent random streams from a single experiment seed.
///
/// Each `(seed, stream_id)` pair produces a generator whose sequence is
/// decorrelated from every other pair, so components of a model (workload
/// generators of different VMs, activity delay sampling, case selection) each
/// draw from their own stream and replications differ only in the root seed.
///
/// # Example
///
/// ```
/// use vsched_des::RngStreams;
///
/// let streams = RngStreams::new(7);
/// let mut wl_vm0 = streams.stream(0);
/// let mut wl_vm1 = streams.stream(1);
/// assert_ne!(wl_vm0.next(), wl_vm1.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    /// Creates a stream factory for the experiment `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RngStreams { seed }
    }

    /// Root seed of this factory.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the generator for stream `id`.
    #[must_use]
    pub fn stream(&self, id: u64) -> Xoshiro256StarStar {
        // Hash (seed, id) through SplitMix64 twice to decorrelate.
        let mut s = self.seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut s);
        let mut s2 = a ^ id.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        Xoshiro256StarStar::seed_from(splitmix64(&mut s2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for the documented seeding of seed 0 must never
        // change: reproducibility contract.
        let mut rng = Xoshiro256StarStar::seed_from(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next()).collect();
        let mut rng2 = Xoshiro256StarStar::seed_from(0);
        let again: Vec<u64> = (0..3).map(|_| rng2.next()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from(1);
        let mut b = Xoshiro256StarStar::seed_from(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Xoshiro256StarStar::seed_from(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let v = rng.next_below(7);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} skewed");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256StarStar::seed_from(0);
        rng.next_below(0);
    }

    #[test]
    fn bool_probability() {
        let mut rng = Xoshiro256StarStar::seed_from(6);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.2)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn streams_are_decorrelated() {
        let streams = RngStreams::new(99);
        let mut a = streams.stream(0);
        let mut b = streams.stream(1);
        let matches = (0..1000).filter(|_| a.next() == b.next()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn streams_are_reproducible() {
        let s1 = RngStreams::new(5);
        let s2 = RngStreams::new(5);
        let mut a = s1.stream(3);
        let mut b = s2.stream(3);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn rngcore_fill_bytes() {
        let mut rng = Xoshiro256StarStar::seed_from(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn seedable_zero_seed_is_remapped() {
        let rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        assert_eq!(rng, Xoshiro256StarStar::seed_from(0));
    }
}
