//! Property-based tests: the event queue against a reference model, and
//! the calendar queue against the event queue.

use proptest::prelude::*;
use vsched_des::{CalendarQueue, EventQueue, SimTime};

/// Operations the fuzzer may apply.
#[derive(Debug, Clone)]
enum Op {
    Schedule { time: u32, priority: i8 },
    Pop,
    CancelNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..1000, any::<i8>()).prop_map(|(time, priority)| Op::Schedule { time, priority }),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::CancelNth),
    ]
}

/// Reference: a plain vector re-sorted on every pop.
#[derive(Default)]
struct Reference {
    // (time, priority, seq, cancelled)
    items: Vec<(u32, i8, u64, bool)>,
    next_seq: u64,
}

impl Reference {
    fn schedule(&mut self, time: u32, priority: i8) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((time, priority, seq, false));
        seq
    }
    fn cancel(&mut self, seq: u64) -> bool {
        for it in &mut self.items {
            if it.2 == seq && !it.3 {
                it.3 = true;
                return true;
            }
        }
        false
    }
    fn pop(&mut self) -> Option<u64> {
        let best = self
            .items
            .iter()
            .filter(|it| !it.3)
            .min_by_key(|&&(time, priority, seq, _)| (time, std::cmp::Reverse(priority), seq))?
            .2;
        self.items.retain(|it| it.2 != best);
        Some(best)
    }
    fn len(&self) -> usize {
        self.items.iter().filter(|it| !it.3).count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary op sequences: the queue and the reference agree on every
    /// pop result, every cancel result, and the live count.
    #[test]
    fn queue_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut queue = EventQueue::new();
        let mut reference = Reference::default();
        // seq -> EventId mapping (insertion order matches).
        let mut ids = Vec::new();
        for op in ops {
            match op {
                Op::Schedule { time, priority } => {
                    let id = queue.schedule(
                        SimTime::new(f64::from(time)),
                        i32::from(priority),
                        (),
                    );
                    let seq = reference.schedule(time, priority);
                    ids.push((seq, id));
                }
                Op::Pop => {
                    let got = queue.pop().map(|(_, id, ())| id);
                    let expected_seq = reference.pop();
                    let expected = expected_seq
                        .map(|seq| ids.iter().find(|(s, _)| *s == seq).unwrap().1);
                    prop_assert_eq!(got, expected);
                }
                Op::CancelNth(n) => {
                    if let Some(&(seq, id)) = ids.get(n) {
                        let got = queue.cancel(id);
                        let expected = reference.cancel(seq);
                        prop_assert_eq!(got, expected);
                    }
                }
            }
            prop_assert_eq!(queue.len(), reference.len());
            prop_assert_eq!(queue.is_empty(), reference.len() == 0);
        }
        // Drain both and compare the full remaining order.
        loop {
            let got = queue.pop().map(|(_, id, ())| id);
            let expected = reference
                .pop()
                .map(|seq| ids.iter().find(|(s, _)| *s == seq).unwrap().1);
            prop_assert_eq!(got, expected);
            if got.is_none() {
                break;
            }
        }
    }

    /// The calendar queue is observationally equivalent to the event
    /// queue on arbitrary schedule/cancel/pop sequences: every pop
    /// returns the same `(time, payload)`, every cancel the same bool,
    /// and the live counts track. This is the contract that lets the SAN
    /// engine swap queues without a semantic change.
    #[test]
    fn calendar_queue_matches_event_queue(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut old: EventQueue<u64> = EventQueue::new();
        let mut new: CalendarQueue<u64> = CalendarQueue::new();
        let mut old_ids = Vec::new();
        let mut new_ids = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule { time, priority } => {
                    let t = SimTime::new(f64::from(time));
                    old_ids.push(old.schedule(t, i32::from(priority), payload));
                    new_ids.push(new.schedule(t, i32::from(priority), payload));
                    payload += 1;
                }
                Op::Pop => {
                    let a = old.pop().map(|(t, _, p)| (t, p));
                    let b = new.pop().map(|(t, _, p)| (t, p));
                    prop_assert_eq!(a, b);
                }
                Op::CancelNth(n) => {
                    if let (Some(&a), Some(&b)) = (old_ids.get(n), new_ids.get(n)) {
                        prop_assert_eq!(old.cancel(a), new.cancel(b));
                    }
                }
            }
            prop_assert_eq!(old.len(), new.len());
            prop_assert_eq!(old.is_empty(), new.is_empty());
        }
        loop {
            let a = old.pop().map(|(t, _, p)| (t, p));
            let b = new.pop().map(|(t, _, p)| (t, p));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Pop order is non-decreasing in time regardless of insertion order.
    #[test]
    fn pops_are_time_ordered(times in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let mut queue = EventQueue::new();
        for &t in &times {
            queue.schedule(SimTime::new(t), 0, ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _, ())) = queue.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }
}
