//! Seeded random generation of fuzz cases.
//!
//! Each case draws from its own [`vsched_des::RngStreams`] stream, keyed
//! by the case index, so case `i` of seed `s` is identical whether cases
//! run sequentially, in parallel, or alone — the same independence trick
//! the replication engine uses for per-replication streams.
//!
//! The generated envelope stays inside the regime the paper models —
//! saturated workload generators (no interarrival process) and at most
//! as many sibling VCPUs per VM as there are PCPUs, since a gang wider
//! than the machine can never co-start.

use vsched_core::PolicyKind;
use vsched_des::rng::{RngStreams, Xoshiro256StarStar};

use crate::case::{FuzzCase, LoadSpec, SyncSpec, TraceEventCase, TraceOpCase, VmCase};
use vsched_core::SyncMechanism;

/// Warm-up ticks for generated cases — long enough to leave the empty
/// initial state for every topology in the envelope.
pub const GEN_WARMUP: u64 = 200;
/// Measured ticks for generated cases — short enough that a 200-case run
/// finishes in CI, long enough that CI half-widths are meaningful.
pub const GEN_HORIZON: u64 = 800;
/// Replications per engine per case.
pub const GEN_REPLICATIONS: usize = 3;

/// Deterministic fuzz-case generator.
#[derive(Debug)]
pub struct CaseGen {
    streams: RngStreams,
}

impl CaseGen {
    /// A generator for the given master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CaseGen {
            streams: RngStreams::new(seed),
        }
    }

    /// Generates case `index`. Pure: the same `(seed, index)` always
    /// yields the same case.
    #[must_use]
    pub fn case(&self, index: u64) -> FuzzCase {
        let mut rng = self.streams.stream(index);

        let pcpus = 1 + rng.next_below(4) as usize;
        let num_vms = 1 + rng.next_below(3) as usize;
        let max_gang = pcpus.min(3);
        let mut vms = Vec::with_capacity(num_vms);
        let mut total = 0usize;
        for _ in 0..num_vms {
            let room = max_gang.min(6 - total);
            if room == 0 {
                break;
            }
            let vcpus = 1 + rng.next_below(room as u64) as usize;
            let weight = 1 + rng.next_below(4) as u32;
            total += vcpus;
            vms.push(VmCase { vcpus, weight });
        }

        let load = match rng.next_below(3) {
            0 => LoadSpec::Deterministic {
                value: (2 + rng.next_below(12)) as f64,
            },
            1 => {
                let low = (1 + rng.next_below(5)) as f64;
                let high = low + (2 + rng.next_below(12)) as f64;
                LoadSpec::Uniform { low, high }
            }
            _ => LoadSpec::Exponential {
                mean: (3 + rng.next_below(10)) as f64,
            },
        };

        let mechanism = if rng.next_bool(0.5) {
            SyncMechanism::Barrier
        } else {
            SyncMechanism::SpinLock
        };
        let sync = if rng.next_bool(0.5) {
            SyncSpec {
                probability: 0.05 + 0.3 * rng.next_f64(),
                every: None,
                mechanism,
            }
        } else {
            SyncSpec {
                probability: 0.0,
                every: Some(2 + rng.next_below(7) as u32),
                mechanism,
            }
        };

        const TIMESLICES: [u64; 5] = [2, 3, 5, 10, 30];
        let timeslice = TIMESLICES[rng.next_below(TIMESLICES.len() as u64) as usize];

        let policy = Self::policy(&mut rng);
        let seed = rng.next();
        // Trace draws come strictly AFTER every static draw, so the
        // static prefix of a case (pcpus through seed) is byte-identical
        // to what pre-trace generator versions produced for the same
        // `(seed, index)` — old reproducer digests stay comparable.
        let trace = Self::trace(&mut rng, &vms);

        FuzzCase {
            case_index: index,
            pcpus,
            vms,
            load,
            sync,
            timeslice,
            policy,
            seed,
            warmup: GEN_WARMUP,
            horizon: GEN_HORIZON,
            replications: GEN_REPLICATIONS,
            trace,
        }
    }

    /// Draws a bounded churn scenario over the case's VMs. Half the
    /// cases stay purely static (preserving the pre-trace coverage);
    /// the rest get up to 4 events — departures, re-arrivals with the
    /// original shape, load-level steps — at strictly increasing ticks
    /// inside the run window. Sequences are valid by construction:
    /// departures only while present, arrivals only while absent, and at
    /// least one VM stays admitted at all times (the saturated envelope
    /// never goes fully idle).
    fn trace(rng: &mut Xoshiro256StarStar, vms: &[VmCase]) -> Vec<TraceEventCase> {
        if rng.next_bool(0.5) {
            return Vec::new();
        }
        let n = 1 + rng.next_below(4) as usize;
        let mut present = vec![true; vms.len()];
        let mut t = 0u64;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            t += 40 + rng.next_below(160);
            if t >= GEN_WARMUP + GEN_HORIZON {
                break;
            }
            let vm = rng.next_below(vms.len() as u64) as usize;
            let op = if !present[vm] {
                present[vm] = true;
                TraceOpCase::Arrive
            } else if present.iter().filter(|&&p| p).count() > 1 && rng.next_bool(0.5) {
                present[vm] = false;
                TraceOpCase::Depart
            } else {
                TraceOpCase::SetLoad {
                    level: 250 * (1 + rng.next_below(4) as u32),
                }
            };
            events.push(TraceEventCase { at: t, vm, op });
        }
        events
    }

    /// Draws a policy from the canonical [`PolicyKind::all`] registry
    /// (one index draw over its length, so a registry addition widens the
    /// envelope automatically), then randomizes the parameters of the
    /// parameterized kinds. The draw sequence is identical to earlier
    /// hand-enumerated versions of this function for the current registry,
    /// keeping every `(seed, index)` case stable.
    fn policy(rng: &mut Xoshiro256StarStar) -> PolicyKind {
        let mut all = PolicyKind::all();
        match all.swap_remove(rng.next_below(all.len() as u64) as usize) {
            PolicyKind::RelaxedCo { .. } => {
                let skew_resume = 1 + rng.next_below(3);
                PolicyKind::RelaxedCo {
                    skew_threshold: skew_resume + 1 + rng.next_below(8),
                    skew_resume,
                }
            }
            PolicyKind::Credit { .. } => PolicyKind::Credit {
                refill_period: 10 + rng.next_below(50),
            },
            PolicyKind::Sedf { .. } => PolicyKind::Sedf {
                period: 20 + rng.next_below(180),
            },
            PolicyKind::Bvt { .. } => PolicyKind::Bvt {
                max_lag: 500 + rng.next_below(5_000),
            },
            fixed => fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_independent() {
        let a = CaseGen::new(42);
        let b = CaseGen::new(42);
        for i in [0u64, 1, 7, 199] {
            assert_eq!(a.case(i), b.case(i));
        }
        // Different indices and different seeds decorrelate.
        assert_ne!(a.case(0), a.case(1));
        assert_ne!(CaseGen::new(42).case(3), CaseGen::new(43).case(3));
    }

    #[test]
    fn generated_cases_respect_the_envelope_and_build() {
        let g = CaseGen::new(7);
        for i in 0..100 {
            let case = g.case(i);
            assert!((1..=4).contains(&case.pcpus), "case {i}: pcpus");
            assert!((1..=3).contains(&case.vms.len()), "case {i}: vms");
            let total: usize = case.vms.iter().map(|v| v.vcpus).sum();
            assert!(total <= 6, "case {i}: total vcpus");
            for vm in &case.vms {
                assert!(
                    vm.vcpus <= case.pcpus,
                    "case {i}: gang wider than the machine"
                );
            }
            if let PolicyKind::RelaxedCo {
                skew_threshold,
                skew_resume,
            } = case.policy
            {
                assert!(skew_resume < skew_threshold, "case {i}: RCS params");
            }
            let config = case.system_config().unwrap();
            assert_eq!(config.pcpus(), case.pcpus);
        }
    }

    #[test]
    fn generated_traces_are_valid_and_bounded() {
        let g = CaseGen::new(7);
        let mut traced = 0;
        for i in 0..100 {
            let case = g.case(i);
            assert!(case.trace.len() <= 4, "case {i}: too many events");
            for pair in case.trace.windows(2) {
                assert!(pair[0].at < pair[1].at, "case {i}: times not increasing");
            }
            for e in &case.trace {
                assert!(e.vm < case.vms.len(), "case {i}: VM index");
                assert!(
                    (0 < e.at) && (e.at < GEN_WARMUP + GEN_HORIZON),
                    "case {i}: event outside the run window"
                );
            }
            if !case.trace.is_empty() {
                traced += 1;
                // Every generated scenario compiles to the case's own
                // static topology as the union.
                let s = case.trace_schedule().unwrap();
                assert_eq!(s.config(), &case.system_config().unwrap());
            }
        }
        assert!(
            (20..=80).contains(&traced),
            "expected roughly half the cases traced, got {traced}/100"
        );
    }
}
