//! Seeded random generation of fuzz cases.
//!
//! Each case draws from its own [`vsched_des::RngStreams`] stream, keyed
//! by the case index, so case `i` of seed `s` is identical whether cases
//! run sequentially, in parallel, or alone — the same independence trick
//! the replication engine uses for per-replication streams.
//!
//! The generated envelope stays inside the regime the paper models —
//! saturated workload generators (no interarrival process) and at most
//! as many sibling VCPUs per VM as there are PCPUs, since a gang wider
//! than the machine can never co-start.

use vsched_core::PolicyKind;
use vsched_des::rng::{RngStreams, Xoshiro256StarStar};

use crate::case::{FuzzCase, LoadSpec, SyncSpec, VmCase};
use vsched_core::SyncMechanism;

/// Warm-up ticks for generated cases — long enough to leave the empty
/// initial state for every topology in the envelope.
pub const GEN_WARMUP: u64 = 200;
/// Measured ticks for generated cases — short enough that a 200-case run
/// finishes in CI, long enough that CI half-widths are meaningful.
pub const GEN_HORIZON: u64 = 800;
/// Replications per engine per case.
pub const GEN_REPLICATIONS: usize = 3;

/// Deterministic fuzz-case generator.
#[derive(Debug)]
pub struct CaseGen {
    streams: RngStreams,
}

impl CaseGen {
    /// A generator for the given master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CaseGen {
            streams: RngStreams::new(seed),
        }
    }

    /// Generates case `index`. Pure: the same `(seed, index)` always
    /// yields the same case.
    #[must_use]
    pub fn case(&self, index: u64) -> FuzzCase {
        let mut rng = self.streams.stream(index);

        let pcpus = 1 + rng.next_below(4) as usize;
        let num_vms = 1 + rng.next_below(3) as usize;
        let max_gang = pcpus.min(3);
        let mut vms = Vec::with_capacity(num_vms);
        let mut total = 0usize;
        for _ in 0..num_vms {
            let room = max_gang.min(6 - total);
            if room == 0 {
                break;
            }
            let vcpus = 1 + rng.next_below(room as u64) as usize;
            let weight = 1 + rng.next_below(4) as u32;
            total += vcpus;
            vms.push(VmCase { vcpus, weight });
        }

        let load = match rng.next_below(3) {
            0 => LoadSpec::Deterministic {
                value: (2 + rng.next_below(12)) as f64,
            },
            1 => {
                let low = (1 + rng.next_below(5)) as f64;
                let high = low + (2 + rng.next_below(12)) as f64;
                LoadSpec::Uniform { low, high }
            }
            _ => LoadSpec::Exponential {
                mean: (3 + rng.next_below(10)) as f64,
            },
        };

        let mechanism = if rng.next_bool(0.5) {
            SyncMechanism::Barrier
        } else {
            SyncMechanism::SpinLock
        };
        let sync = if rng.next_bool(0.5) {
            SyncSpec {
                probability: 0.05 + 0.3 * rng.next_f64(),
                every: None,
                mechanism,
            }
        } else {
            SyncSpec {
                probability: 0.0,
                every: Some(2 + rng.next_below(7) as u32),
                mechanism,
            }
        };

        const TIMESLICES: [u64; 5] = [2, 3, 5, 10, 30];
        let timeslice = TIMESLICES[rng.next_below(TIMESLICES.len() as u64) as usize];

        let policy = Self::policy(&mut rng);
        let seed = rng.next();

        FuzzCase {
            case_index: index,
            pcpus,
            vms,
            load,
            sync,
            timeslice,
            policy,
            seed,
            warmup: GEN_WARMUP,
            horizon: GEN_HORIZON,
            replications: GEN_REPLICATIONS,
        }
    }

    /// Draws a policy from the canonical [`PolicyKind::all`] registry
    /// (one index draw over its length, so a registry addition widens the
    /// envelope automatically), then randomizes the parameters of the
    /// parameterized kinds. The draw sequence is identical to earlier
    /// hand-enumerated versions of this function for the current registry,
    /// keeping every `(seed, index)` case stable.
    fn policy(rng: &mut Xoshiro256StarStar) -> PolicyKind {
        let mut all = PolicyKind::all();
        match all.swap_remove(rng.next_below(all.len() as u64) as usize) {
            PolicyKind::RelaxedCo { .. } => {
                let skew_resume = 1 + rng.next_below(3);
                PolicyKind::RelaxedCo {
                    skew_threshold: skew_resume + 1 + rng.next_below(8),
                    skew_resume,
                }
            }
            PolicyKind::Credit { .. } => PolicyKind::Credit {
                refill_period: 10 + rng.next_below(50),
            },
            PolicyKind::Sedf { .. } => PolicyKind::Sedf {
                period: 20 + rng.next_below(180),
            },
            PolicyKind::Bvt { .. } => PolicyKind::Bvt {
                max_lag: 500 + rng.next_below(5_000),
            },
            fixed => fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_independent() {
        let a = CaseGen::new(42);
        let b = CaseGen::new(42);
        for i in [0u64, 1, 7, 199] {
            assert_eq!(a.case(i), b.case(i));
        }
        // Different indices and different seeds decorrelate.
        assert_ne!(a.case(0), a.case(1));
        assert_ne!(CaseGen::new(42).case(3), CaseGen::new(43).case(3));
    }

    #[test]
    fn generated_cases_respect_the_envelope_and_build() {
        let g = CaseGen::new(7);
        for i in 0..100 {
            let case = g.case(i);
            assert!((1..=4).contains(&case.pcpus), "case {i}: pcpus");
            assert!((1..=3).contains(&case.vms.len()), "case {i}: vms");
            let total: usize = case.vms.iter().map(|v| v.vcpus).sum();
            assert!(total <= 6, "case {i}: total vcpus");
            for vm in &case.vms {
                assert!(
                    vm.vcpus <= case.pcpus,
                    "case {i}: gang wider than the machine"
                );
            }
            if let PolicyKind::RelaxedCo {
                skew_threshold,
                skew_resume,
            } = case.policy
            {
                assert!(skew_resume < skew_threshold, "case {i}: RCS params");
            }
            let config = case.system_config().unwrap();
            assert_eq!(config.pcpus(), case.pcpus);
        }
    }
}
