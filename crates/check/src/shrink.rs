//! Greedy reproducer shrinking.
//!
//! Fuzz failures arrive wrapped in whatever topology and workload the
//! generator happened to draw. Before writing a reproducer, the driver
//! shrinks the case by trying a fixed family of simplifications — drop a
//! VM, shed a sibling VCPU, remove synchronization, flatten the load
//! distribution, halve the horizon, thin out the churn scenario one
//! trace event at a time — and greedily adopting any candidate
//! that still fails the oracle *with the same failure kinds*. The result
//! is the smallest case this family reaches, typically one or two VMs
//! with a deterministic workload, which is what a human wants to stare
//! at.
//!
//! Shrinking re-runs the oracle once per candidate, so the driver bounds
//! the effort with [`MAX_SHRINK_ROUNDS`].

use crate::case::{FuzzCase, LoadSpec, SyncSpec};
use crate::oracle::{run_case, CaseOutcome, FailureKind, OracleOpts};

/// Upper bound on greedy adoption rounds (each round tries every
/// candidate once; one round is usually enough, two catches cascades).
pub const MAX_SHRINK_ROUNDS: usize = 3;

/// Shrinks `case`, which must already fail the oracle with `original`'s
/// failures. Returns the smallest still-failing case found together with
/// its outcome; returns the input unchanged if no simplification
/// preserves the failure.
#[must_use]
pub fn shrink(
    case: &FuzzCase,
    original: &CaseOutcome,
    opts: &OracleOpts,
) -> (FuzzCase, CaseOutcome) {
    let target: Vec<FailureKind> = kinds(original);
    let mut best = case.clone();
    let mut best_outcome = original.clone();
    for _ in 0..MAX_SHRINK_ROUNDS {
        let mut improved = false;
        for candidate in candidates(&best) {
            let outcome = run_case(&candidate, opts);
            if !outcome.failures.is_empty() && kinds(&outcome) == target {
                best = candidate;
                best_outcome = outcome;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (best, best_outcome)
}

/// Sorted, deduplicated failure kinds — the shrinker's notion of "the
/// same bug" (details like tick numbers legitimately shift as the case
/// shrinks).
fn kinds(outcome: &CaseOutcome) -> Vec<FailureKind> {
    let mut ks: Vec<FailureKind> = outcome.failures.iter().map(|f| f.kind).collect();
    ks.sort_by_key(|k| *k as u8);
    ks.dedup();
    ks
}

/// Simplification candidates in decreasing order of aggressiveness.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // Drop whole VMs (keep at least one). Trace events referencing the
    // dropped VM go with it; later indices shift down to stay valid.
    if case.vms.len() > 1 {
        for drop in 0..case.vms.len() {
            let mut c = case.clone();
            c.vms.remove(drop);
            c.trace.retain(|e| e.vm != drop);
            for e in &mut c.trace {
                if e.vm > drop {
                    e.vm -= 1;
                }
            }
            out.push(c);
        }
    }

    // Shed one sibling VCPU from the widest VM.
    if let Some((widest, _)) = case
        .vms
        .iter()
        .enumerate()
        .filter(|(_, vm)| vm.vcpus > 1)
        .max_by_key(|(_, vm)| vm.vcpus)
    {
        let mut c = case.clone();
        c.vms[widest].vcpus -= 1;
        out.push(c);
    }

    // Fewer PCPUs, but never fewer than the widest gang (a gang wider
    // than the machine is outside the generated envelope).
    let widest_gang = case.vms.iter().map(|vm| vm.vcpus).max().unwrap_or(1);
    if case.pcpus > widest_gang.max(1) {
        let mut c = case.clone();
        c.pcpus -= 1;
        out.push(c);
    }

    // Flatten weights.
    if case.vms.iter().any(|vm| vm.weight != 1) {
        let mut c = case.clone();
        for vm in &mut c.vms {
            vm.weight = 1;
        }
        out.push(c);
    }

    // Remove synchronization entirely.
    if case.sync.probability > 0.0 || case.sync.every.is_some() {
        let mut c = case.clone();
        c.sync = SyncSpec {
            probability: 0.0,
            every: None,
            mechanism: case.sync.mechanism,
        };
        out.push(c);
    }

    // Spinlock -> barrier (the simpler mechanism).
    if case.sync.mechanism == vsched_core::SyncMechanism::SpinLock {
        let mut c = case.clone();
        c.sync.mechanism = vsched_core::SyncMechanism::Barrier;
        out.push(c);
    }

    // Deterministic load at the distribution's center.
    if !matches!(case.load, LoadSpec::Deterministic { .. }) {
        let central = match case.load {
            LoadSpec::Deterministic { value } => value,
            LoadSpec::Uniform { low, high } => (low + high) / 2.0,
            LoadSpec::Exponential { mean } => mean,
        };
        let mut c = case.clone();
        c.load = LoadSpec::Deterministic {
            value: central.round().max(1.0),
        };
        out.push(c);
    }

    // Smaller timeslice (faster rotations surface ordering bugs sooner).
    if case.timeslice > 2 {
        let mut c = case.clone();
        c.timeslice = 2;
        out.push(c);
    }

    // Halve the horizon (keep enough ticks for meaningful statistics).
    if case.horizon >= 400 {
        let mut c = case.clone();
        c.horizon /= 2;
        out.push(c);
    }

    // Drop the whole churn scenario (adopted when the failure was never
    // about churn), then single trace events back to front — a dropped
    // event that breaks the sequence (e.g. a departure whose re-arrival
    // remains) just fails compilation with a different failure kind and
    // is rejected by the greedy loop, never adopted.
    if !case.trace.is_empty() {
        let mut c = case.clone();
        c.trace.clear();
        out.push(c);
        for drop in (0..case.trace.len()).rev() {
            let mut c = case.clone();
            c.trace.remove(drop);
            out.push(c);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseGen;

    #[test]
    fn candidates_stay_inside_the_envelope() {
        let g = CaseGen::new(1);
        for i in 0..30 {
            let case = g.case(i);
            for c in candidates(&case) {
                assert!(!c.vms.is_empty());
                assert!(c.pcpus >= 1);
                let widest = c.vms.iter().map(|vm| vm.vcpus).max().unwrap();
                assert!(widest <= c.pcpus, "case {i}: gang wider than machine");
                assert!(c.system_config().is_ok(), "case {i}: candidate must build");
                // VM-index remapping must keep trace events in range.
                assert!(
                    c.trace.iter().all(|e| e.vm < c.vms.len()),
                    "case {i}: dangling trace VM index"
                );
            }
        }
    }

    #[test]
    fn shrink_keeps_a_passing_case_unchanged() {
        // A passing outcome has no failure kinds; every candidate that
        // also passes has the same (empty) kind set but empty failures,
        // so nothing is adopted.
        let case = CaseGen::new(1).case(0);
        let opts = OracleOpts {
            check_invariants: false,
            check_parallel_determinism: false,
            check_metamorphic: false,
            ..OracleOpts::default()
        };
        let outcome = run_case(&case, &opts);
        assert!(outcome.passed());
        let (shrunk, _) = shrink(&case, &outcome, &opts);
        assert_eq!(shrunk, case);
    }
}
