//! The `vsched fuzz` driver: generate → oracle → shrink → reproduce.
//!
//! Cases are independent, so the sweep fans out on the shared
//! `vsched-exec` work-stealing pool (`--jobs`); results come back in
//! case order regardless of scheduling, keeping the whole run — counts,
//! failure order, reproducer contents — deterministic for a given
//! `(seed, cases)` pair. Failures are shrunk sequentially afterwards
//! (there are normally zero) and each one is written as a replayable
//! JSON reproducer named `case-<index>.json`.

use std::path::{Path, PathBuf};

use vsched_core::CoreError;

use crate::case::Reproducer;
use crate::gen::CaseGen;
use crate::oracle::{run_case, CaseOutcome, FailureKind, OracleOpts};
use crate::shrink::shrink;
use crate::CheckError;

/// Knobs of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Number of cases to generate and judge.
    pub cases: u64,
    /// Master seed: case `i` is fully determined by `(seed, i)`.
    pub seed: u64,
    /// Worker threads (`None` = one per available core).
    pub jobs: Option<usize>,
    /// Where to write reproducers for failing cases (`None` = don't).
    pub reproducer_dir: Option<PathBuf>,
    /// Oracle tolerances and verdict toggles.
    pub oracle: OracleOpts,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            cases: 200,
            seed: 42,
            jobs: None,
            reproducer_dir: None,
            oracle: OracleOpts::default(),
        }
    }
}

/// One failing case, post-shrink.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the originally generated case.
    pub case_index: u64,
    /// The shrunk case's oracle outcome.
    pub outcome: CaseOutcome,
    /// Where the reproducer was written, if a directory was given.
    pub reproducer: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases judged.
    pub cases: u64,
    /// Static-analysis rejections (pre-simulation) across failing cases.
    pub lint_findings: usize,
    /// Invariant-checker vetoes across all failing cases.
    pub invariant_violations: usize,
    /// Engine-vs-engine disagreements.
    pub differential_mismatches: usize,
    /// Broken metamorphic relations (rotation, co-scaling, parallel
    /// determinism).
    pub metamorphic_mismatches: usize,
    /// SAN incremental-vs-full-rescan divergences.
    pub incremental_divergences: usize,
    /// SAN sequential-vs-sharded divergences.
    pub sharded_divergences: usize,
    /// Env episode-vs-monolithic or episode-vs-replay divergences.
    pub env_divergences: usize,
    /// Traced-replay divergences (invariants under churn, engine
    /// disagreement on traced metrics, jobs/shard fingerprint drift).
    pub trace_divergences: usize,
    /// Outright run errors.
    pub errors: usize,
    /// The shrunk failures, in case order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether every case passed every verdict.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The one-line summary the CLI prints (and CI greps).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "fuzz: {} cases, {} lint findings, {} invariant violations, \
             {} differential mismatches, {} metamorphic mismatches, \
             {} incremental divergences, {} sharded divergences, \
             {} env divergences, {} trace divergences, {} errors",
            self.cases,
            self.lint_findings,
            self.invariant_violations,
            self.differential_mismatches,
            self.metamorphic_mismatches,
            self.incremental_divergences,
            self.sharded_divergences,
            self.env_divergences,
            self.trace_divergences,
            self.errors
        )
    }
}

/// Runs a full fuzz sweep.
///
/// # Errors
///
/// [`CheckError::Io`] if a reproducer cannot be written. Failing *cases*
/// are not errors — they are reported in the returned [`FuzzReport`].
pub fn run_fuzz(opts: &FuzzOpts) -> Result<FuzzReport, CheckError> {
    let generator = CaseGen::new(opts.seed);
    let jobs = vsched_exec::resolve_jobs(opts.jobs);
    let outcomes: Vec<CaseOutcome> = vsched_exec::run_indexed(
        jobs,
        0,
        opts.cases as usize,
        |i| -> Result<CaseOutcome, CoreError> { Ok(run_case(&generator.case(i), &opts.oracle)) },
    )
    .expect("fuzz tasks are infallible");

    let mut report = FuzzReport {
        cases: opts.cases,
        lint_findings: 0,
        invariant_violations: 0,
        differential_mismatches: 0,
        metamorphic_mismatches: 0,
        incremental_divergences: 0,
        sharded_divergences: 0,
        env_divergences: 0,
        trace_divergences: 0,
        errors: 0,
        failures: Vec::new(),
    };

    for outcome in outcomes {
        if outcome.passed() {
            continue;
        }
        for f in &outcome.failures {
            match f.kind {
                FailureKind::Lint => report.lint_findings += 1,
                FailureKind::Invariant => report.invariant_violations += 1,
                FailureKind::Differential => report.differential_mismatches += 1,
                FailureKind::Metamorphic => report.metamorphic_mismatches += 1,
                FailureKind::Incremental => report.incremental_divergences += 1,
                FailureKind::Sharded => report.sharded_divergences += 1,
                FailureKind::Env => report.env_divergences += 1,
                FailureKind::Trace => report.trace_divergences += 1,
                FailureKind::Error => report.errors += 1,
            }
        }
        let case = generator.case(outcome.case_index);
        let (shrunk, shrunk_outcome) = shrink(&case, &outcome, &opts.oracle);
        let reproducer = match &opts.reproducer_dir {
            Some(dir) => Some(write_reproducer(dir, &shrunk, &shrunk_outcome)?),
            None => None,
        };
        report.failures.push(FuzzFailure {
            case_index: outcome.case_index,
            outcome: shrunk_outcome,
            reproducer,
        });
    }
    Ok(report)
}

fn write_reproducer(
    dir: &Path,
    case: &crate::case::FuzzCase,
    outcome: &CaseOutcome,
) -> Result<PathBuf, CheckError> {
    std::fs::create_dir_all(dir).map_err(|e| CheckError::io(dir, e))?;
    let path = dir.join(format!("case-{}.json", case.case_index));
    let reproducer = Reproducer {
        case: case.clone(),
        failures: outcome.failures.iter().map(ToString::to_string).collect(),
        verify: None,
    };
    reproducer.store(&path)?;
    Ok(path)
}

/// Replays a reproducer file: re-runs its case through the oracle and
/// returns the fresh outcome. Two replays of the same file produce equal
/// outcomes (including the report digest) — this is the determinism
/// check CI performs.
///
/// # Errors
///
/// [`CheckError`] if the file cannot be read or parsed.
pub fn replay(path: &Path, opts: &OracleOpts) -> Result<CaseOutcome, CheckError> {
    let reproducer = Reproducer::load(path)?;
    Ok(run_case(&reproducer.case, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(cases: u64) -> FuzzOpts {
        FuzzOpts {
            cases,
            seed: 42,
            jobs: Some(2),
            reproducer_dir: None,
            // The full oracle runs in the dedicated fuzz test tier; unit
            // tests keep to the cheap differential verdict.
            oracle: OracleOpts {
                check_invariants: false,
                check_parallel_determinism: false,
                check_metamorphic: false,
                ..OracleOpts::default()
            },
        }
    }

    #[test]
    fn a_small_sweep_is_clean_and_deterministic() {
        let a = run_fuzz(&quick_opts(6)).unwrap();
        assert!(a.clean(), "{:?}", a.failures);
        assert!(a.summary().contains("6 cases"));
        assert!(a.summary().contains("0 invariant violations"));
        assert!(a.summary().contains("0 trace divergences"));
        let b = run_fuzz(&quick_opts(6)).unwrap();
        assert_eq!(a.cases, b.cases);
        assert!(b.clean());
    }
}
